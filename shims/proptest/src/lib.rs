//! Offline shim for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate vendors
//! the proptest surface TierBase's property tests use: the `proptest!`
//! macro, `prop_assert*`/`prop_assume!`, strategies for ranges, tuples,
//! collections, options, `Just`, weighted `prop_oneof!`, `prop_map`,
//! simple regex string strategies, and a `TestRunner` that drives a
//! configurable number of random cases.
//!
//! The one deliberate omission is **shrinking**: a failing case reports
//! the generated input verbatim instead of a minimized one. Failures
//! print the case's seed so they can be re-run deterministically.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Supports the standard grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in proptest::collection::vec(any::<u8>(), 0..32)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                let outcome = runner.run(&strategy, |($($pat,)+)| {
                    $body
                    Ok(())
                });
                if let Err(e) = outcome {
                    panic!("{}", e);
                }
            }
        )*
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Weighted (or unweighted) union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
