//! The [`Strategy`] trait and core combinators.
//!
//! A strategy deterministically maps an RNG state to a generated value.
//! Unlike real proptest there is no value tree and no shrinking.

use rand::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Generates random values of an associated type. Object safe.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`]'s return type.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union over same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
