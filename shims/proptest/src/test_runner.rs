//! The case-driving runner: config, case errors, and [`TestRunner`].

use crate::strategy::{Strategy, TestRng};
use rand::{RngCore, SeedableRng};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration. Field names match real proptest so struct
/// literals with `..Config::default()` keep working; fields irrelevant
/// to this shim (shrinking) are accepted and ignored.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Upper bound on rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    /// A default config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy the property's assumptions.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// A failed property: the case number, seed, and reason.
#[derive(Debug, Clone)]
pub struct TestError {
    pub case: u32,
    pub seed: u64,
    pub reason: String,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property failed at case {} (re-run with PROPTEST_SEED={}): {}",
            self.case, self.seed, self.reason
        )
    }
}

impl std::error::Error for TestError {}

/// Drives a strategy through `config.cases` random cases.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
    /// `PROPTEST_SEED` replay: used verbatim for the first case.
    forced_case_seed: Option<u64>,
}

impl TestRunner {
    /// When `PROPTEST_SEED` is set, the *first case* runs with exactly
    /// that per-case seed, so the seed printed by a failure replays the
    /// failing input. Otherwise seeds from the system clock.
    pub fn new(config: Config) -> Self {
        let forced_case_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok());
        Self {
            config,
            rng: TestRng::seed_from_u64(rand::random::<u64>()),
            forced_case_seed,
        }
    }

    /// Runs the property once per case. Returns the first failure
    /// (assertion, panic) without shrinking. `prop_assume!` rejections
    /// retry with fresh input and do not count toward the case budget.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) -> Result<(), TestError> {
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < self.config.cases {
            // Each case's input depends only on its own seed, so the
            // seed reported on failure replays that exact input via
            // PROPTEST_SEED.
            let case_seed = self
                .forced_case_seed
                .take()
                .unwrap_or_else(|| self.rng.next_u64());
            let mut case_rng = TestRng::seed_from_u64(case_seed);
            let value = strategy.generate(&mut case_rng);
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => case += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        return Err(TestError {
                            case,
                            seed: case_seed,
                            reason: format!(
                                "too many prop_assume! rejections ({rejects}); \
                                 property never satisfied its assumptions"
                            ),
                        });
                    }
                }
                Ok(Err(TestCaseError::Fail(reason))) => {
                    return Err(TestError {
                        case,
                        seed: case_seed,
                        reason,
                    })
                }
                Err(panic) => {
                    let reason = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "test panicked".into());
                    return Err(TestError {
                        case,
                        seed: case_seed,
                        reason: format!("panic: {reason}"),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn passing_property_passes() {
        let mut runner = TestRunner::new(Config::with_cases(32));
        runner
            .run(&(0u8..10), |v| {
                if v < 10 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("out of range"))
                }
            })
            .unwrap();
    }

    #[test]
    fn failing_property_reports() {
        let mut runner = TestRunner::new(Config::with_cases(64));
        let err = runner
            .run(&any::<u8>(), |v| {
                if v < 200 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("big"))
                }
            })
            .unwrap_err();
        assert!(err.reason.contains("big"));
    }

    #[test]
    fn rejections_do_not_fail() {
        let mut runner = TestRunner::new(Config::with_cases(8));
        runner
            .run(&any::<u8>(), |v| {
                if v % 2 == 0 {
                    Err(TestCaseError::reject("odd only"))
                } else {
                    Ok(())
                }
            })
            .unwrap();
    }

    #[test]
    fn panics_are_captured() {
        let mut runner = TestRunner::new(Config::with_cases(4));
        let err = runner
            .run(&any::<u8>(), |_| -> Result<(), TestCaseError> {
                panic!("boom");
            })
            .unwrap_err();
        assert!(err.reason.contains("boom"));
    }
}
