//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::{Strategy, TestRng};
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// [`any`]'s return type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf so
        // arithmetic-heavy properties stay meaningful.
        let mantissa: f64 = rng.gen();
        let exp = rng.gen_range(-64i32..64);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII with occasional wider code points.
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0u32..0xD800)).unwrap_or('\u{FFFD}')
        }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}
