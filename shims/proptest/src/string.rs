//! String strategies from regex-like patterns.
//!
//! Real proptest implements `Strategy` for `&str` by interpreting the
//! string as a regex and generating matching strings. This shim
//! supports the pragmatic subset used in practice: literal characters,
//! character classes (`[a-z0-9|:=/ ]`, with `-` ranges, a leading `^`
//! is rejected), `.`, and the repetitions `{m,n}`, `{m,}`, `{m}`, `*`,
//! `+`, `?` applied to the preceding atom. Unsupported syntax panics
//! with a clear message rather than silently generating garbage.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.reps.sample(rng);
            for _ in 0..n {
                out.push(atom.chars.sample(rng));
            }
        }
        out
    }
}

struct Atom {
    chars: CharSet,
    reps: Reps,
}

enum CharSet {
    One(char),
    Set(Vec<(char, char)>),
    AnyPrintable,
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::One(c) => *c,
            CharSet::AnyPrintable => rng.gen_range(0x20u32..0x7f) as u8 as char,
            CharSet::Set(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if pick < span {
                        return char::from_u32(*a as u32 + pick).unwrap();
                    }
                    pick -= span;
                }
                unreachable!("weighted pick within total")
            }
        }
    }
}

struct Reps {
    min: u32,
    max: u32,
}

impl Reps {
    fn sample(&self, rng: &mut TestRng) -> u32 {
        rng.gen_range(self.min..=self.max)
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                let mut pending_range = false;
                if chars.peek() == Some(&'^') {
                    panic!("regex shim: negated classes unsupported in {pattern:?}");
                }
                loop {
                    let Some(c) = chars.next() else {
                        panic!("regex shim: unterminated class in {pattern:?}")
                    };
                    match c {
                        ']' => {
                            if let Some(p) = prev.take() {
                                ranges.push((p, p));
                            }
                            if pending_range {
                                ranges.push(('-', '-'));
                            }
                            break;
                        }
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            pending_range = true;
                        }
                        '\\' => {
                            let e = chars
                                .next()
                                .unwrap_or_else(|| panic!("regex shim: dangling escape"));
                            push_class_char(&mut ranges, &mut prev, &mut pending_range, e);
                        }
                        c => push_class_char(&mut ranges, &mut prev, &mut pending_range, c),
                    }
                }
                assert!(!ranges.is_empty(), "regex shim: empty class in {pattern:?}");
                CharSet::Set(ranges)
            }
            '.' => CharSet::AnyPrintable,
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("regex shim: dangling escape in {pattern:?}"));
                CharSet::One(e)
            }
            '(' | ')' | '|' => {
                panic!("regex shim: groups/alternation unsupported in {pattern:?}")
            }
            c => CharSet::One(c),
        };
        let reps = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                parse_reps(&spec, pattern)
            }
            Some('*') => {
                chars.next();
                Reps { min: 0, max: 16 }
            }
            Some('+') => {
                chars.next();
                Reps { min: 1, max: 16 }
            }
            Some('?') => {
                chars.next();
                Reps { min: 0, max: 1 }
            }
            _ => Reps { min: 1, max: 1 },
        };
        atoms.push(Atom { chars: set, reps });
    }
    atoms
}

fn push_class_char(
    ranges: &mut Vec<(char, char)>,
    prev: &mut Option<char>,
    pending_range: &mut bool,
    c: char,
) {
    if *pending_range {
        let lo = prev.take().expect("range start");
        assert!(lo <= c, "regex shim: inverted class range");
        ranges.push((lo, c));
        *pending_range = false;
    } else {
        if let Some(p) = prev.take() {
            ranges.push((p, p));
        }
        *prev = Some(c);
    }
}

fn parse_reps(spec: &str, pattern: &str) -> Reps {
    let parse = |s: &str| -> u32 {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("regex shim: bad repetition {spec:?} in {pattern:?}"))
    };
    match spec.split_once(',') {
        None => {
            let n = parse(spec);
            Reps { min: n, max: n }
        }
        Some((m, "")) => Reps {
            min: parse(m),
            max: parse(m).saturating_add(16),
        },
        Some((m, n)) => Reps {
            min: parse(m),
            max: parse(n),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = "[a-z0-9|:=/ ]{0,1500}".generate(&mut rng);
            assert!(s.len() <= 1500);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "|:=/ ".contains(c)));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = "ab?c+".generate(&mut rng);
        assert!(s.starts_with('a'));
        assert!(s.contains('c'));
    }
}
