//! Option strategies (`proptest::option::of`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// Yields `None` about a quarter of the time, `Some` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// [`of`]'s return type.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
