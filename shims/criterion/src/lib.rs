//! Offline shim for `criterion`.
//!
//! Provides the API subset the `tb-bench` micro benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize` — with a simple calibrated wall-clock measurement and a
//! text report instead of criterion's statistical machinery. Good
//! enough to rank implementations and spot order-of-magnitude
//! regressions; not a replacement for real criterion statistics.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-iteration work amount, for deriving rate units in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Top-level benchmark context.
pub struct Criterion {
    /// Target wall-clock time per benchmark measurement.
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // TB_BENCH_MS overrides the per-benchmark measurement window.
        let ms = std::env::var("TB_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Self {
            measurement_time: Duration::from_millis(ms),
            warm_up_time: Duration::from_millis(ms / 4 + 1),
        }
    }
}

impl Criterion {
    /// Accepts CLI args cargo passes (`--bench`, filters); this shim
    /// ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            measurement_time: None,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let report = run_bench(self.warm_up_time, self.measurement_time, &mut f);
        print_line(&id, &report, None);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped override, like real criterion — it must not leak
    /// into later groups.
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let measure = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        let report = run_bench(self.criterion.warm_up_time, measure, &mut f);
        print_line(&id, &report, self.throughput);
    }

    pub fn finish(self) {}
}

struct Report {
    ns_per_iter: f64,
    iters: u64,
}

fn run_bench(warm_up: Duration, measure: Duration, f: &mut impl FnMut(&mut Bencher)) -> Report {
    // Warm-up pass: also calibrates how many iterations fit the window.
    let mut b = Bencher {
        mode: Mode::Timed(warm_up),
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mut b = Bencher {
        mode: Mode::Timed(measure),
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    Report {
        ns_per_iter: if b.iters == 0 {
            f64::NAN
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        },
        iters: b.iters,
    }
}

fn print_line(id: &str, report: &Report, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            let per_sec = n as f64 * 1e9 / report.ns_per_iter;
            format!("  {:>12.0} elem/s", per_sec)
        }
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            let per_sec = n as f64 * 1e9 / report.ns_per_iter;
            format!("  {:>12.1} MiB/s", per_sec / (1 << 20) as f64)
        }
    });
    println!(
        "{id:<40} {:>12.1} ns/iter  ({} iters){}",
        report.ns_per_iter,
        report.iters,
        rate.unwrap_or_default()
    );
}

enum Mode {
    Timed(Duration),
}

/// Handed to each benchmark closure; measures the routine it is given.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly until the measurement window closes.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let Mode::Timed(window) = self.mode;
        let start = Instant::now();
        black_box(routine());
        let mut iters = 1u64;
        // Batch clock checks only when the first iteration proves the
        // routine cheap; slow routines check every iteration so they
        // never overshoot the window by more than ~one iteration.
        let batch = if start.elapsed() * 64 >= window {
            1
        } else {
            64
        };
        while start.elapsed() < window {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Runs `routine` on fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let Mode::Timed(window) = self.mode;
        let begin = Instant::now();
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        while begin.elapsed() < window {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.elapsed = timed;
        self.iters = iters;
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a set of [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("TB_BENCH_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        let mut total = 0u64;
        group.bench_function("add", |b| b.iter(|| total = total.wrapping_add(1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(total > 0);
    }
}
