//! Offline shim for the `bytes` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `bytes`:
//! a cheaply-clonable, reference-counted, sliceable immutable byte
//! buffer. Clones and sub-slices share one backing allocation, which
//! is the property `tb-common`'s `Key`/`Value` types rely on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable, sliceable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Copies `data` into a freshly allocated buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted, matching the
    /// real crate's behavior.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range out of bounds: {begin}..{end} of {len}"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self::from(b.into_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn slices_share_and_window() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(unsafe { a.as_ptr().add(2) }, s.as_ptr());
        let t = s.slice(1..);
        assert_eq!(&t[..], &[3, 4]);
    }

    #[test]
    fn ordering_and_eq() {
        assert!(Bytes::from(vec![1u8]) < Bytes::from(vec![1u8, 0]));
        assert_eq!(Bytes::copy_from_slice(b"ab"), Bytes::from(b"ab".to_vec()));
    }
}
