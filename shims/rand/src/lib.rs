//! Offline shim for `rand` (0.8-style API).
//!
//! Implements the subset TierBase uses: `RngCore`, the `Rng` extension
//! trait (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), `SeedableRng`
//! with `seed_from_u64`, `rngs::StdRng`, and the free `random::<T>()`
//! function. The generator is xoshiro256++ seeded via SplitMix64 —
//! statistically strong enough for workload generation and property
//! tests, and fully deterministic for a given seed.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation interface (object safe).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of `T`'s full "standard" domain
    /// (integers: full range; floats: `[0, 1)`; bool: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics on an empty range, like real rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a "standard" uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 holds any difference of 64-bit values (signed or
                // unsigned), so the span is exact even for i64::MIN..0.
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128).wrapping_add(off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128).wrapping_add(off as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                // start + span * unit can round up to exactly `end`
                // (rust-random #494); keep the half-open contract.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// xoshiro256++, seeded from a single `u64` via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// One-off sample from a process-global generator (seeded once from the
/// system clock; every call advances a global counter so concurrent
/// callers never collide).
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    let mut seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        let t = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED)
            | 1;
        let _ = SEED.compare_exchange(0, t, Ordering::Relaxed, Ordering::Relaxed);
        seed = SEED.load(Ordering::Relaxed);
    }
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut rng = StdRng::seed_from_u64(seed ^ n.wrapping_mul(0x9E3779B97F4A7C15));
    T::sample(&mut rng)
}

/// `rand::thread_rng()` stand-in: a fresh generator seeded like
/// [`random`]. Not thread-local, but API-compatible for sampling.
pub fn thread_rng() -> StdRng {
    StdRng::seed_from_u64(random::<u64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-50..4500);
            assert!((-50..4500).contains(&v));
            let u = rng.gen_range(1..=12u32);
            assert!((1..=12).contains(&u));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn huge_signed_spans_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(i64::MIN..0);
            assert!(v < 0);
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-domain sample must not panic
            let u = rng.gen_range(0u64..=u64::MAX);
            let _ = u;
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10u8);
        assert!(v < 10);
    }

    #[test]
    fn random_values_distinct() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }
}
