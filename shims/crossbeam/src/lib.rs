//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel` — multi-producer **multi-consumer**
//! bounded/unbounded channels — implemented with a mutex-protected
//! deque and two condvars. std's `mpsc` cannot back this (its receiver
//! is single-consumer); the elastic runtime hands one receiver to many
//! worker threads.

pub mod channel;
