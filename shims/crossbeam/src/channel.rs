//! MPMC channels with the `crossbeam-channel` API subset TierBase uses:
//! `bounded`, `unbounded`, blocking `send`/`recv`, `recv_timeout`,
//! `try_recv`, `len`, and cloneable senders *and* receivers.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Sending half; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half; cloneable (every message goes to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `usize::MAX` means unbounded.
    cap: usize,
}

/// Creates a channel holding at most `cap` in-flight messages; `send`
/// blocks while full.
///
/// Unlike real crossbeam this shim has no rendezvous mode, so a
/// zero-capacity channel would deadlock the first `send`; fail loudly
/// instead.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        cap > 0,
        "channel shim does not support bounded(0) rendezvous"
    );
    new_chan(cap)
}

/// Creates a channel with no capacity limit.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_chan(usize::MAX)
}

fn new_chan<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Sender<T> {
    /// Blocks while the channel is full; fails once every receiver is
    /// dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut s = self.chan.lock();
        loop {
            if s.receivers == 0 {
                return Err(SendError(value));
            }
            if s.queue.len() < self.chan.cap {
                s.queue.push_back(value);
                drop(s);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            s = self
                .chan
                .not_full
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; fails once the channel is empty
    /// and every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut s = self.chan.lock();
        loop {
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvError);
            }
            s = self
                .chan
                .not_empty
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`Receiver::recv`] with an upper bound on the wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.chan.lock();
        loop {
            if let Some(v) = s.queue.pop_front() {
                drop(s);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if s.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut s = self.chan.lock();
        if let Some(v) = s.queue.pop_front() {
            drop(s);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if s.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut s = self.chan.lock();
            s.senders -= 1;
            s.senders
        };
        if remaining == 0 {
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut s = self.chan.lock();
            s.receivers -= 1;
            s.receivers
        };
        if remaining == 0 {
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on receive"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for RecvTimeoutError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded::<usize>(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    while rx.recv().is_ok() {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
