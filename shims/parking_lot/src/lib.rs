//! Offline shim for `parking_lot`.
//!
//! The build container has no network access, so this crate provides
//! the `parking_lot` lock API (guards returned directly, no poison
//! `Result`s) as thin wrappers over `std::sync`. Poisoning is
//! deliberately swallowed — like real parking_lot, a panic while a
//! lock is held does not poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive; `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock; `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`] held by `&mut`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while parked.
    ///
    /// std's `wait` consumes the guard and returns a new one; parking_lot
    /// takes `&mut`. Bridging the two moves the inner guard out and back
    /// with raw pointer reads. Poison errors are mapped, not unwrapped,
    /// but std's `wait` itself can still panic (a condvar used with two
    /// different mutexes); unwinding past the moved-out guard would
    /// double-unlock the mutex, so that path aborts instead.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let bomb = AbortOnDrop;
            let inner = self
                .inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::forget(bomb);
            std::ptr::write(&mut guard.inner, inner);
        }
    }

    /// Timed variant of [`Condvar::wait`]; aborts rather than unwinding
    /// for the same reason.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let bomb = AbortOnDrop;
            let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r)
                }
            };
            std::mem::forget(bomb);
            std::ptr::write(&mut guard.inner, inner);
            WaitTimeoutResult(res.timed_out())
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Dropped only while unwinding out of a condvar wait whose guard has
/// been bitwise-duplicated; continuing would be a double unlock, so
/// stop the process instead.
struct AbortOnDrop;

impl Drop for AbortOnDrop {
    fn drop(&mut self) {
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
