//! Case study 1 (§6.5): the User Info Service.
//!
//! A read-heavy (~32:1), highly skewed, availability-critical workload
//! over machine-generated profile records. This example walks the
//! paper's decision process end to end:
//!
//! 1. record a representative trace,
//! 2. replay it against candidate configurations (Raw, PMem, PBC),
//! 3. compute each configuration's cost under the model,
//! 4. compute break-even access intervals (Table 3) and check them
//!    against the workload's observed mean access interval,
//! 5. pick the cost-optimal configuration.
//!
//! ```sh
//! cargo run --release --example user_info_service
//! ```

use tierbase::costmodel::{BreakEvenTable, CostEvaluator, InstanceSpec, WorkloadDemand};
use tierbase::prelude::*;
use tierbase::workload::DatasetKind;

fn open_variant(
    name: &str,
    f: impl FnOnce(tierbase::store::TierBaseConfigBuilder) -> tierbase::store::TierBaseConfigBuilder,
) -> TierBase {
    let dir = std::env::temp_dir().join(format!("tb-example-uis-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    TierBase::open(f(TierBaseConfig::builder(dir).cache_capacity(256 << 20)).build())
        .expect("open store")
}

fn main() -> Result<()> {
    // 1. Sample the workload (the paper replays a real business trace;
    //    we generate the synthetic equivalent with the same statistics).
    let mut workload = Workload::new(WorkloadSpec::case1_user_info(10_000, 30_000));
    let load = Trace::new(workload.load_ops());
    let run = workload.run_trace();
    let stats = run.stats();
    println!(
        "trace: {} ops, {:.1}:1 read:write, top-1% keys serve {:.0}% of accesses",
        stats.op_count,
        stats.read_count as f64 / stats.write_count.max(1) as f64,
        stats.top1pct_share * 100.0,
    );

    // 2-3. Replay against candidates and compute costs.
    //    Peak demand from production: hundreds of kQPS per tenant and
    //    ~10 GB per shard group; read-heavy so performance cost is low.
    let demand = WorkloadDemand::new(80_000.0, 10.0);
    let evaluator = CostEvaluator::new(InstanceSpec::standard(), demand);

    let dataset = DatasetKind::Kv1.build(0xca5e1);
    let samples: Vec<Vec<u8>> = (0..512u64).map(|i| dataset.record(i)).collect();

    let raw = open_variant("raw", |b| b);
    let pmem = open_variant("pmem", |b| b.pmem(PmemTuning::default()));
    let pbc = open_variant("pbc", |b| b.compression(CompressionChoice::Pbc));
    pbc.train_compression(&samples); // offline pre-training (§4.2)

    let measured = vec![
        evaluator.measure("TierBase-Raw", &raw, &load, &run)?,
        evaluator.measure("TierBase-PMem", &pmem, &load, &run)?,
        evaluator.measure("TierBase-PBC", &pbc, &load, &run)?,
    ];

    // 4. Break-even intervals between the configurations (Table 3).
    let avg_record = samples.iter().map(|s| s.len()).sum::<usize>() as f64 / samples.len() as f64;
    let configs: Vec<(String, _)> = measured
        .iter()
        .map(|m| (m.name.clone(), m.metrics.clone()))
        .collect();
    let table = BreakEvenTable::build(&configs, avg_record);
    println!("\nbreak-even intervals:");
    for row in &table.rows {
        println!(
            "  {:>14} -> {:<14} {:>8.0} s",
            row.fast, row.slow, row.interval_seconds
        );
    }
    // The paper observed a mean access interval > 1018 s — far beyond
    // every break-even — so the space-optimized config wins.
    let observed_interval_s = 1018.0;
    println!(
        "observed mean access interval {observed_interval_s:.0}s -> rule recommends: {}",
        table.recommend(observed_interval_s).unwrap_or("n/a")
    );

    // 5. The full cost report agrees.
    let report = evaluator.report(measured);
    println!("\ncost report:");
    for c in &report.costs {
        println!(
            "  {:>14}  PC={:<8.3} SC={:<8.3} C={:.3}",
            c.name,
            c.performance_cost,
            c.space_cost,
            c.total()
        );
    }
    let optimal = report.optimal.as_deref().unwrap_or("n/a");
    println!("cost-optimal configuration: {optimal}");

    let raw_total = report.cost_of("TierBase-Raw").expect("measured").total();
    let best_total = report.cost_of(optimal).expect("measured").total();
    println!(
        "savings vs Raw: {:.0}% (paper reports 62% for this scenario)",
        100.0 * (1.0 - best_total / raw_total)
    );
    Ok(())
}
