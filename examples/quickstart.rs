//! Quickstart: open a tiered TierBase store, use strings, data types,
//! CAS, wide columns, and watch the cost-relevant statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tierbase::prelude::*;
use tierbase::store::ListEnd;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("tierbase-example-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // A tiered store: in-memory cache tier in front of an LSM storage
    // tier, synchronized write-through.
    let store = TierBase::open(
        TierBaseConfig::builder(&dir)
            .cache_capacity(16 << 20)
            .policy(SyncPolicy::WriteThrough)
            .build(),
    )?;

    // --- strings -------------------------------------------------------
    store.put(Key::from("user:1:name"), Value::from("alice"))?;
    store.put(Key::from("user:1:city"), Value::from("hangzhou"))?;
    println!("user:1:name = {:?}", store.get(&Key::from("user:1:name"))?);

    // --- compare-and-set ------------------------------------------------
    store.put(Key::from("counter"), Value::from("41"))?;
    store.cas(
        Key::from("counter"),
        Some(&Value::from("41")),
        Value::from("42"),
    )?;
    let stale = store.cas(
        Key::from("counter"),
        Some(&Value::from("41")), // stale expectation
        Value::from("43"),
    );
    println!(
        "counter = {:?}, stale CAS -> {stale:?}",
        store.get(&Key::from("counter"))?
    );

    // --- Redis-style data types -----------------------------------------
    let types = DataTypes::new(&store);
    types.list_push(&Key::from("queue"), b"job-1", ListEnd::Tail)?;
    types.list_push(&Key::from("queue"), b"job-2", ListEnd::Tail)?;
    types.set_add(&Key::from("tags"), b"fintech")?;
    types.set_add(&Key::from("tags"), b"kv-store")?;
    types.zset_add(&Key::from("leaderboard"), b"alice", 97.0)?;
    types.zset_add(&Key::from("leaderboard"), b"bob", 64.0)?;
    println!(
        "queue head = {:?}, tags = {}, top = {:?}",
        types.list_pop(&Key::from("queue"), ListEnd::Head)?,
        types.set_members(&Key::from("tags"))?.len(),
        types.zset_range(&Key::from("leaderboard"), 1, 2)?,
    );

    // --- wide columns ----------------------------------------------------
    let orders = WideColumn::new(&store, "orders");
    orders.put_row(
        b"order-1001",
        &[
            (b"amount".as_slice(), b"128.50".as_slice()),
            (b"currency", b"CNY"),
            (b"status", b"PAID"),
        ],
    )?;
    println!("order-1001 = {:?}", orders.get_row(b"order-1001")?);

    // --- durability ------------------------------------------------------
    store.sync()?;
    drop(store);
    let reopened = TierBase::open(
        TierBaseConfig::builder(&dir)
            .cache_capacity(16 << 20)
            .policy(SyncPolicy::WriteThrough)
            .build(),
    )?;
    assert_eq!(
        reopened.get(&Key::from("user:1:name"))?,
        Some(Value::from("alice")),
        "data must survive restart through the storage tier"
    );
    println!(
        "reopened store serves {} (cache miss ratio so far: {:.2})",
        String::from_utf8_lossy(
            reopened
                .get(&Key::from("user:1:name"))?
                .expect("present")
                .as_slice()
        ),
        reopened.stats().miss_ratio(),
    );
    Ok(())
}
