//! Distributed TierBase (§3): hash-slot sharding, coordinators,
//! transparent failover, and scale-out with live data migration.
//!
//! ```sh
//! cargo run --release --example cluster_failover
//! ```

use std::sync::Arc;
use tierbase::cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore};
use tierbase::prelude::*;

fn tierbase_node(name: &str) -> Arc<dyn KvEngine> {
    let dir = std::env::temp_dir().join(format!("tb-example-cluster-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(
        TierBase::open(
            TierBaseConfig::builder(dir)
                .cache_capacity(64 << 20)
                .build(),
        )
        .expect("open node"),
    )
}

fn main() -> Result<()> {
    // Three data nodes, each a full TierBase instance with a replica.
    let nodes: Vec<NodeStore> = (0..3)
        .map(|i| {
            NodeStore::new(NodeId(i), tierbase_node(&format!("n{i}-primary")))
                .with_replica(tierbase_node(&format!("n{i}-replica")))
        })
        .collect();
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(3, nodes)?);
    println!(
        "cluster up: leader coordinator = c{}, slots = {:?}",
        coordinators.leader()?,
        coordinators
            .routing()
            .distribution()
            .iter()
            .map(|(n, c)| format!("{n:?}:{c}"))
            .collect::<Vec<_>>()
    );

    // Smart client writes through slot routing.
    let client = ClusterClient::connect(coordinators.clone());
    for i in 0..3000 {
        client.put(
            Key::from(format!("user:{i}")),
            Value::from(format!("profile-{i}")),
        )?;
    }
    println!("loaded 3000 keys across the cluster");

    // Kill a data node. The next reads trigger failover (replica
    // promotion) transparently inside the client.
    coordinators.node(NodeId(1))?.read().crash();
    println!("node 1 crashed; reading everything back...");
    let mut recovered = 0;
    for i in 0..3000 {
        if client.get(&Key::from(format!("user:{i}")))?.is_some() {
            recovered += 1;
        }
    }
    println!("{recovered}/3000 keys readable after failover");
    assert_eq!(recovered, 3000);

    // Coordinator leader failure: the group re-elects.
    coordinators.kill_coordinator(0);
    println!(
        "coordinator 0 killed; new leader = c{}",
        coordinators.leader()?
    );

    // Scale out: add a node, migrate slots + data.
    let new_node = NodeStore::new(NodeId(3), tierbase_node("n3-primary"))
        .with_replica(tierbase_node("n3-replica"));
    let moved = coordinators.add_node_and_rebalance(new_node)?;
    println!(
        "added node 3; migrated {moved} keys; new distribution: {:?}",
        coordinators
            .routing()
            .distribution()
            .iter()
            .map(|(n, c)| format!("{n:?}:{c}"))
            .collect::<Vec<_>>()
    );

    // Everything still readable after rebalance (client refreshes
    // routing on demand; force a refresh by reconnecting).
    let client = ClusterClient::connect(coordinators.clone());
    for i in 0..3000 {
        assert!(
            client.get(&Key::from(format!("user:{i}")))?.is_some(),
            "user:{i} lost in migration"
        );
    }
    println!("all keys survive the rebalance");
    Ok(())
}
