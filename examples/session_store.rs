//! Session store: TTLs, batch reads, prefix scans, and snapshot warm
//! restarts on a tiered TierBase deployment.
//!
//! The scenario is the bread-and-butter workload of an online platform:
//! login sessions that must expire, profile lookups that arrive in
//! bursts (batched by the API gateway), operational scans over a key
//! namespace, and rolling restarts that must not stampede the storage
//! tier with a cold cache.
//!
//! ```sh
//! cargo run --release --example session_store
//! ```

use std::sync::Arc;
use std::time::Duration;
use tierbase::common::ManualClock;
use tierbase::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("tb-example-session-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A manual clock makes the TTL walkthrough deterministic; drop the
    // `.clock(...)` line to run on wall time.
    let clock = ManualClock::new();
    let open = |clock: Arc<ManualClock>| {
        TierBase::open(
            TierBaseConfig::builder(&dir)
                .cache_capacity(64 << 20)
                .policy(SyncPolicy::WriteThrough)
                .clock(clock)
                .build(),
        )
    };
    let store = open(clock.clone())?;

    // --- 1. Sessions with TTLs -----------------------------------------
    println!("== sessions with TTLs ==");
    for user in 0..1000 {
        // 30-minute sessions; profile records live forever.
        store.put_with_ttl(
            Key::from(format!("sess:{user:04}")),
            Value::from(format!("token-{user:08x}")),
            Duration::from_secs(30 * 60),
        )?;
        store.put(
            Key::from(format!("prof:{user:04}")),
            Value::from(format!("{{\"user\":{user},\"plan\":\"premium\"}}")),
        )?;
    }
    println!(
        "  session TTL state: {:?}",
        store.ttl(&Key::from("sess:0000"))?
    );
    println!(
        "  profile TTL state: {:?}",
        store.ttl(&Key::from("prof:0000"))?
    );

    // A privileged session gets extended; a compromised one is killed
    // by expiring it immediately-ish.
    store.expire(&Key::from("sess:0001"), Duration::from_secs(24 * 3600))?;
    store.expire(&Key::from("sess:0002"), Duration::from_secs(1))?;

    // --- 2. Time passes -------------------------------------------------
    clock.advance(Duration::from_secs(31 * 60));
    println!("\n== 31 minutes later ==");
    println!(
        "  sess:0000 -> {:?} (expired)",
        store.get(&Key::from("sess:0000"))?
    );
    println!(
        "  sess:0001 -> {} (extended, still live)",
        store.get(&Key::from("sess:0001"))?.is_some()
    );
    println!(
        "  prof:0000 -> {} (no TTL)",
        store.get(&Key::from("prof:0000"))?.is_some()
    );

    // Active expiration reclaims the rest without waiting for reads.
    let swept = store.sweep_expired()?;
    println!("  sweep reclaimed {swept} expired sessions");

    // --- 3. Batched reads (deferred cache-fetching, §4.1.2) ------------
    println!("\n== batched profile reads ==");
    let keys: Vec<Key> = (0..64).map(|u| Key::from(format!("prof:{u:04}"))).collect();
    let fetched = store.multi_get(&keys)?;
    println!(
        "  multi_get(64 keys) -> {} hits (one storage round-trip for all misses)",
        fetched.iter().filter(|v| v.is_some()).count()
    );

    // --- 4. Prefix scan --------------------------------------------------
    let live_sessions = store.scan_prefix(b"sess:")?;
    println!("\n== namespace scan ==");
    println!(
        "  scan_prefix(\"sess:\") -> {} live sessions (was 1000)",
        live_sessions.len()
    );

    // --- 5. Snapshot + warm restart --------------------------------------
    let entries = store.save_cache_snapshot()?;
    println!("\n== rolling restart ==");
    println!("  snapshot wrote {entries} cache entries");
    drop(store);

    let store = open(clock.clone())?;
    let before = store
        .stats()
        .storage_fetches
        .load(std::sync::atomic::Ordering::Relaxed);
    for u in 0..1000 {
        store.get(&Key::from(format!("prof:{u:04}")))?;
    }
    let after = store
        .stats()
        .storage_fetches
        .load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "  1000 profile reads after restart -> {} storage fetches (warm cache)",
        after - before
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
