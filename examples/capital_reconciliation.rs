//! Case study 2 (§6.5): Capital Reconciliation.
//!
//! A cost-sensitive risk-control workload: ~1:1 read:write with strong
//! temporal skew — recent transactions are verified shortly after being
//! written, old ones almost never. This example shows why the tiered
//! write-back configuration wins: the small cache absorbs the hot
//! recent window while the LSM storage tier holds the long tail, and
//! batched dirty flushes amortize the storage round-trips.
//!
//! ```sh
//! cargo run --release --example capital_reconciliation
//! ```

use std::sync::atomic::Ordering;
use tierbase::costmodel::{CostEvaluator, InstanceSpec, WorkloadDemand};
use tierbase::prelude::*;

fn open_variant(
    name: &str,
    f: impl FnOnce(tierbase::store::TierBaseConfigBuilder) -> tierbase::store::TierBaseConfigBuilder,
) -> TierBase {
    let dir = std::env::temp_dir().join(format!("tb-example-recon-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    TierBase::open(f(TierBaseConfig::builder(dir)).build()).expect("open store")
}

fn main() -> Result<()> {
    let records = 10_000u64;
    let ops = 30_000u64;
    let logical_estimate = records as usize * 120;

    let mut workload = Workload::new(WorkloadSpec::case2_reconciliation(records, ops));
    let load = Trace::new(workload.load_ops());
    let run = workload.run_trace();
    let stats = run.stats();
    println!(
        "trace: {} ops, reads {} / writes {}, mean re-access distance {:.0} ops",
        stats.op_count, stats.read_count, stats.write_count, stats.mean_access_interval_ops
    );

    // Candidates: everything in memory vs. tiered at a 4X cache ratio
    // with each synchronization policy.
    let in_mem = open_variant("mem", |b| b.cache_capacity(256 << 20));
    let wt = open_variant("wt", |b| {
        b.cache_capacity(logical_estimate / 4)
            .policy(SyncPolicy::WriteThrough)
            .storage_rtt_us(200)
    });
    let wb = open_variant("wb", |b| {
        b.cache_capacity(logical_estimate / 4)
            .policy(SyncPolicy::WriteBack)
            .storage_rtt_us(200)
    });

    let demand = WorkloadDemand::new(40_000.0, 10.0);
    let evaluator = CostEvaluator::new(InstanceSpec::standard(), demand);
    let measured = vec![
        evaluator.measure("TierBase-InMem", &in_mem, &load, &run)?,
        evaluator.measure("TierBase-wt-4X", &wt, &load, &run)?,
        evaluator.measure("TierBase-wb-4X", &wb, &load, &run)?,
    ];

    let report = evaluator.report(measured);
    println!("\ncost report (1:1 read/write, temporal skew):");
    for c in &report.costs {
        println!(
            "  {:>15}  PC={:<8.3} SC={:<8.3} C={:.3}",
            c.name,
            c.performance_cost,
            c.space_cost,
            c.total()
        );
    }
    println!(
        "cost-optimal: {}",
        report.optimal.as_deref().unwrap_or("n/a")
    );

    // The §6.5 observation: the cache absorbs most reads even at a
    // small cache ratio because access is temporally skewed.
    println!(
        "\nwrite-back cache hit rate: {:.0}% (paper observed ~80% with 1% of data cached)",
        (1.0 - wb.stats().miss_ratio()) * 100.0
    );
    println!(
        "write-back dirty flushes: {} batches for {} flushed entries",
        wb.stats().dirty_flushes.load(Ordering::Relaxed),
        wb.stats().flushed_entries.load(Ordering::Relaxed),
    );
    Ok(())
}
