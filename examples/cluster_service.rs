//! Multi-process TierBase cluster: three `tb-server` node processes on
//! Unix sockets, a slot-routed `ClusterClient` in the parent driving
//! YCSB mixes over real sockets, and replica promotion when one node
//! *process* is killed mid-run.
//!
//! The binary re-executes itself as the node processes: with
//! `TB_CLUSTER_NODE` set it serves a pipelined `Frontend` over an
//! `LsmDb` on the socket named by `TB_CLUSTER_SOCK` until its stdin
//! closes (so nodes can never outlive the parent).
//!
//! ```sh
//! cargo run --release --example cluster_service
//! ```

use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tierbase::cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore};
use tierbase::lsm::{LsmConfig, LsmDb};
use tierbase::prelude::*;
use tierbase::server::{Server, ServerClient};

/// Node-process mode: serve one engine on the given socket until the
/// parent goes away.
fn serve_node(idx: &str, sock: &str) -> Result<()> {
    let dir = std::env::temp_dir().join(format!("tb-cluster-node-{}-{idx}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(LsmDb::open(LsmConfig::new(&dir))?);
    let fe = Arc::new(Frontend::start(db, FrontendConfig::with_shards(2)));
    let server = Server::bind_unix(sock, fe.clone())?;
    eprintln!("[node {idx}] serving on {}", server.addr());
    // Block until the parent closes our stdin (exit or kill).
    let mut sink = String::new();
    let _ = std::io::stdin().read_line(&mut sink);
    server.stop();
    fe.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn spawn_node(idx: u32, sock: &std::path::Path) -> std::io::Result<Child> {
    Command::new(std::env::current_exe()?)
        .env("TB_CLUSTER_NODE", idx.to_string())
        .env("TB_CLUSTER_SOCK", sock)
        .stdin(Stdio::piped())
        .spawn()
}

/// Dials until the node process has bound its socket.
fn await_ready(sock: &std::path::Path) -> Result<ServerClient> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(client) = ServerClient::connect_unix(sock) {
            if client.ping().is_ok() {
                return Ok(client);
            }
        }
        if Instant::now() > deadline {
            return Err(Error::Unavailable(format!(
                "{} never came up",
                sock.display()
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Replays a trace through the cluster client; returns ops applied.
fn drive(client: &ClusterClient, trace: &tierbase::workload::Trace) -> Result<u64> {
    let mut applied = 0;
    for op in trace.ops() {
        match op {
            Op::Read { key } => {
                client.get(key)?;
            }
            Op::Insert { key, value } | Op::Update { key, value } => {
                client.put(key.clone(), value.clone())?;
            }
            Op::Delete { key } => {
                client.delete(key)?;
            }
            Op::ReadModifyWrite { key, value } => {
                client.get(key)?;
                client.put(key.clone(), value.clone())?;
            }
            Op::Scan { start, end, limit } => {
                client.scan(start, Some(end), *limit as usize)?;
            }
        }
        applied += 1;
    }
    Ok(applied)
}

fn main() -> Result<()> {
    if let (Ok(idx), Ok(sock)) = (
        std::env::var("TB_CLUSTER_NODE"),
        std::env::var("TB_CLUSTER_SOCK"),
    ) {
        return serve_node(&idx, &sock);
    }

    let dir = std::env::temp_dir().join(format!("tb-cluster-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| Error::Io(e.to_string()))?;

    // --- three node processes, one socket each ------------------------
    let socks: Vec<_> = (0..3).map(|i| dir.join(format!("node{i}.sock"))).collect();
    let mut children: Vec<Child> = Vec::new();
    for (i, sock) in socks.iter().enumerate() {
        children.push(spawn_node(i as u32, sock).map_err(|e| Error::Io(e.to_string()))?);
    }
    let clients: Vec<ServerClient> = socks
        .iter()
        .map(|s| await_ready(s))
        .collect::<Result<_>>()?;
    println!(
        "3 node processes up: {:?}",
        children.iter().map(|c| c.id()).collect::<Vec<_>>()
    );

    // Each NodeStore fronts a socket-backed primary (the remote
    // process) and ships every write to an in-parent replica — the
    // promotion target once the process dies.
    drop(clients); // NodeStore owns fresh connections
    let nodes: Vec<NodeStore> = socks
        .iter()
        .enumerate()
        .map(|(i, sock)| {
            let primary: Arc<dyn KvEngine> = Arc::new(ServerClient::connect_unix(sock)?);
            let replica: Arc<dyn KvEngine> = Arc::new(LsmDb::open(LsmConfig::new(
                dir.join(format!("replica{i}")),
            ))?);
            Ok(NodeStore::new(NodeId(i as u32), primary).with_replica(replica))
        })
        .collect::<Result<_>>()?;
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(3, nodes)?);
    let client = ClusterClient::connect(coordinators.clone());

    // --- YCSB over real sockets ---------------------------------------
    let scale: u64 = std::env::var("TB_SMOKE").map(|_| 1).unwrap_or(10);
    let (load, run_a) = Workload::new(WorkloadSpec::ycsb_a(200 * scale, 500 * scale)).generate();
    let (_, run_b) = Workload::new(WorkloadSpec::ycsb_b(200 * scale, 500 * scale)).generate();
    let t0 = Instant::now();
    let mut ops = drive(&client, &load)?;
    ops += drive(&client, &run_a)?;
    ops += drive(&client, &run_b)?;
    let healthy_secs = t0.elapsed().as_secs_f64();
    println!(
        "YCSB-A + YCSB-B over sockets: {ops} ops in {healthy_secs:.2}s ({:.0} op/s)",
        ops as f64 / healthy_secs
    );

    // A node's own telemetry, fetched over the wire via STATS.
    let probe = ServerClient::connect_unix(&socks[0])?;
    let exposition = probe.stats_text()?;
    println!("\n# node 0 STATS excerpt (Prometheus exposition over the wire)");
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("server_") || l.starts_with("frontend_batches"))
        .take(8)
    {
        println!("{line}");
    }

    // --- kill a node process mid-load ---------------------------------
    let victim = &mut children[1];
    victim.kill().map_err(|e| Error::Io(e.to_string()))?;
    victim.wait().map_err(|e| Error::Io(e.to_string()))?;
    println!(
        "\nkilled node 1 (pid {}); continuing the run...",
        victim.id()
    );

    // The next op on a node-1 slot sees Unavailable over the socket;
    // the client runs failover, the coordinator's probe confirms the
    // process is gone, and the shipped in-parent replica is promoted.
    let t1 = Instant::now();
    let ops_after = drive(&client, &run_a)?;
    println!(
        "{ops_after} ops after the kill in {:.2}s — failover was transparent",
        t1.elapsed().as_secs_f64()
    );

    // Every loaded key must still be readable through the promoted
    // replica (replication shipped every acked write before the kill).
    let mut present = 0;
    let mut keys_checked = 0;
    for op in load.ops() {
        if let Op::Insert { key, .. } = op {
            keys_checked += 1;
            if client.get(key)?.is_some() {
                present += 1;
            }
        }
    }
    println!("{present}/{keys_checked} loaded keys readable after promotion");
    let metrics = tierbase::obs::global().snapshot();
    if let Some(failovers) = metrics.counters.get("cluster_failovers") {
        println!("cluster_failovers = {failovers}");
    }
    assert_eq!(present, keys_checked, "promotion lost acked writes");

    // --- clean shutdown ------------------------------------------------
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nall node processes reaped; done");
    Ok(())
}
