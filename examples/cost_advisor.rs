//! Cost advisor: the §5.3 optimization framework plus the §4.2
//! compressor recommender, driven by *your* workload description.
//!
//! Give it a rough workload shape on the command line and it recommends
//! a TierBase configuration:
//!
//! ```sh
//! cargo run --release --example cost_advisor -- --qps 50000 --gb 40 --read-pct 90 --skew 0.99
//! ```

use tierbase::compress::CompressorRecommender;
use tierbase::costmodel::{
    zipfian_miss_ratio_curve, CostEvaluator, InstanceSpec, TieredCostModel, TieredCostParams,
    WorkloadDemand,
};
use tierbase::prelude::*;
use tierbase::workload::ycsb::Distribution;
use tierbase::workload::DatasetKind;

struct Args {
    qps: f64,
    gb: f64,
    read_pct: f64,
    skew: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        qps: 50_000.0,
        gb: 40.0,
        read_pct: 90.0,
        skew: 0.99,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--qps" => args.qps = argv[i + 1].parse().expect("--qps takes a number"),
            "--gb" => args.gb = argv[i + 1].parse().expect("--gb takes a number"),
            "--read-pct" => args.read_pct = argv[i + 1].parse().expect("--read-pct takes a number"),
            "--skew" => args.skew = argv[i + 1].parse().expect("--skew takes a number"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args
}

fn main() -> Result<()> {
    let args = parse_args();
    println!(
        "workload: {} QPS, {} GB, {}% reads, zipf({})",
        args.qps, args.gb, args.read_pct, args.skew
    );

    // --- 1. Analytic screen: is tiering even worth it? -----------------
    // Representative per-workload costs from the standard container's
    // price book (cache $/GB vs disk $/GB ≈ 20:1; miss penalty ≈ 4x).
    let demand = WorkloadDemand::new(args.qps, args.gb);
    let params = TieredCostParams {
        pc_cache: demand.qps / 100_000.0,
        pc_miss: 4.0 * demand.qps / 100_000.0,
        sc_cache: demand.data_size_gb / 4.0,
        pc_storage: 30.0 * demand.qps / 100_000.0,
        sc_storage: demand.data_size_gb / 80.0,
    };
    let model = TieredCostModel::new(params, zipfian_miss_ratio_curve(args.skew.min(0.999)));
    let opt = model.optimal_cache_ratio();
    println!(
        "\nanalytic screen (Theorem 5.1): optimal cache ratio CR*={:.3}, miss ratio {:.3}",
        opt.cache_ratio, opt.miss_ratio
    );
    println!(
        "tiered C={:.2} vs cache-only C={:.2} vs storage-only C={:.2} -> tiering wins: {}",
        model.total_cost(opt.cache_ratio),
        params.pc_cache.max(params.sc_cache),
        params.pc_storage.max(params.sc_storage),
        model.tiered_wins(),
    );

    // --- 2. Compressor recommendation on sampled records ---------------
    let dataset = DatasetKind::Kv1.build(99);
    let samples: Vec<Vec<u8>> = (0..400u64).map(|i| dataset.record(i)).collect();
    let (choice, reports) = CompressorRecommender::default().recommend(&samples);
    println!("\ncompressor candidates:");
    for r in &reports {
        println!(
            "  {:?}: ratio {:.3}, speed {:.2}x raw",
            r.choice, r.ratio, r.speed_fraction
        );
    }
    println!("recommended compressor: {choice:?}");

    // --- 3. Empirical confirmation: replay a scaled trace --------------
    let read_prop = (args.read_pct / 100.0).clamp(0.0, 1.0);
    let spec = WorkloadSpec {
        record_count: 5_000,
        operation_count: 15_000,
        read_proportion: read_prop,
        update_proportion: 1.0 - read_prop,
        insert_proportion: 0.0,
        rmw_proportion: 0.0,
        scan_proportion: 0.0,
        max_scan_length: 0,
        distribution: Distribution::Zipfian(args.skew.min(0.999)),
        dataset: DatasetKind::Kv1,
        seed: 0xad01,
    };
    let mut w = Workload::new(spec);
    let load = Trace::new(w.load_ops());
    let run = w.run_trace();

    let open = |name: &str,
                f: &dyn Fn(
        tierbase::store::TierBaseConfigBuilder,
    ) -> tierbase::store::TierBaseConfigBuilder| {
        let dir = std::env::temp_dir().join(format!("tb-example-advisor-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        TierBase::open(f(TierBaseConfig::builder(dir).cache_capacity(128 << 20)).build()).unwrap()
    };
    let raw = open("raw", &|b| b);
    let compressed = open("pbc", &|b| b.compression(CompressionChoice::Pbc));
    compressed.train_compression(&samples);
    let tiered = open("tiered", &|b| {
        b.cache_capacity(2 << 20)
            .policy(SyncPolicy::WriteBack)
            .storage_rtt_us(200)
    });

    let evaluator = CostEvaluator::new(InstanceSpec::standard(), demand);
    let report = evaluator.report(vec![
        evaluator.measure("in-memory-raw", &raw, &load, &run)?,
        evaluator.measure("in-memory-pbc", &compressed, &load, &run)?,
        evaluator.measure("tiered-wb", &tiered, &load, &run)?,
    ]);
    println!("\nempirical replay (scaled):");
    for c in &report.costs {
        println!(
            "  {:>15}  PC={:<9.3} SC={:<9.3} C={:.3}",
            c.name,
            c.performance_cost,
            c.space_cost,
            c.total()
        );
    }
    println!(
        "==> recommended configuration: {}",
        report.optimal.as_deref().unwrap_or("n/a")
    );
    Ok(())
}
