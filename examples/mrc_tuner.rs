//! MRC-driven cache sizing: estimate a workload's miss-ratio curve
//! cheaply with SHARDS sampling, solve Theorem 5.1 for the optimal
//! cache ratio, then prove the prediction on a real TierBase instance.
//!
//! This is the §5.2/§5.3 loop an operator actually runs: you cannot
//! afford to replay production traffic against every candidate cache
//! size, but you *can* afford a sampled MRC — and the cost model turns
//! that one curve into the optimal cache ratio directly.
//!
//! ```sh
//! cargo run --release --example mrc_tuner
//! ```

use rand::SeedableRng;
use tierbase::costmodel::{
    lru_miss_ratio_curve, shards_miss_ratio_curve, MissRatioCurve, ShardsConfig, TieredCostModel,
    TieredCostParams,
};
use tierbase::prelude::*;
use tierbase::workload::{KeyChooser, ScrambledZipfian};

fn main() -> Result<()> {
    // --- 1. Record a skewed read trace ----------------------------------
    let n_keys: u64 = 20_000;
    let n_refs: usize = 200_000;
    let record_bytes = 120usize;
    let mut chooser = ScrambledZipfian::with_theta(n_keys, 0.9);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let ops: Vec<Op> = (0..n_refs)
        .map(|_| Op::Read {
            key: Key::from(format!("k{:08}", chooser.next_index(&mut rng))),
        })
        .collect();
    let trace = Trace::new(ops.clone());
    println!("trace: {n_refs} refs over {n_keys} keys, zipf(0.9)");

    // --- 2. Build the MRC: exact vs sampled -----------------------------
    let t0 = std::time::Instant::now();
    let exact = lru_miss_ratio_curve(&trace);
    let exact_ms = t0.elapsed().as_millis();
    let t1 = std::time::Instant::now();
    let sampled = shards_miss_ratio_curve(
        &trace,
        ShardsConfig {
            sampling_rate: 0.05,
        },
    );
    let sampled_ms = t1.elapsed().as_millis();
    println!("\nMRC construction: exact {exact_ms} ms, SHARDS(R=0.05) {sampled_ms} ms");
    println!("  CR    exact MR   sampled MR");
    for cr in [0.01, 0.05, 0.1, 0.2, 0.5] {
        println!(
            "  {cr:<5} {:<10.4} {:<10.4}",
            exact.miss_ratio(cr),
            sampled.miss_ratio(cr)
        );
    }

    // --- 3. Theorem 5.1: the optimal cache ratio -------------------------
    // Cache 20x pricier per byte than storage; miss penalty 4x the
    // cache-hit cost (per-workload units as in §5.2).
    let params = TieredCostParams {
        pc_cache: 1.0,
        pc_miss: 4.0,
        sc_cache: 20.0,
        pc_storage: 30.0,
        sc_storage: 2.0,
    };
    let model = TieredCostModel::new(params, sampled);
    let opt = model.optimal_cache_ratio();
    println!(
        "\nTheorem 5.1 on the sampled curve: CR* = {:.4} (predicted MR {:.4})",
        opt.cache_ratio, opt.miss_ratio
    );
    println!(
        "  balance check: PC {:.3} vs SC {:.3}  (equal at the optimum)",
        opt.performance_cost, opt.space_cost
    );

    // --- 4. Validate on a real store -------------------------------------
    // Size the cache tier to CR* of the dataset footprint and replay.
    let dir = std::env::temp_dir().join(format!("tb-example-mrc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let per_entry = record_bytes + 11 + 64; // value + envelope + index overhead
    let footprint = n_keys as usize * per_entry;
    let cache_bytes = (footprint as f64 * opt.cache_ratio) as usize;
    let store = TierBase::open(
        TierBaseConfig::builder(&dir)
            .cache_capacity(cache_bytes)
            .policy(SyncPolicy::WriteThrough)
            .build(),
    )?;
    for i in 0..n_keys {
        store.put(
            Key::from(format!("k{i:08}")),
            Value::from(vec![b'v'; record_bytes]),
        )?;
    }
    // Warm pass so the cache reflects steady state, then measure.
    for op in &ops[..n_refs / 2] {
        if let Op::Read { key } = op {
            store.get(key)?;
        }
    }
    let h0 = store
        .stats()
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let m0 = store
        .stats()
        .cache_misses
        .load(std::sync::atomic::Ordering::Relaxed);
    for op in &ops[n_refs / 2..] {
        if let Op::Read { key } = op {
            store.get(key)?;
        }
    }
    let h1 = store
        .stats()
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let m1 = store
        .stats()
        .cache_misses
        .load(std::sync::atomic::Ordering::Relaxed);
    let measured_mr = (m1 - m0) as f64 / ((h1 - h0) + (m1 - m0)) as f64;
    println!(
        "\nreal store at CR*: measured MR {:.4} vs predicted {:.4}",
        measured_mr, opt.miss_ratio
    );
    println!(
        "  (cache {} KiB of a {} KiB footprint)",
        cache_bytes / 1024,
        footprint / 1024
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
