//! Pipelined service: the `tb-frontend` serving layer under mixed
//! readers and writers, with visible backpressure.
//!
//! The scenario: a durable LSM store behind the front-end serves an
//! API fleet. Write-heavy ingest threads pipeline puts (acknowledged
//! after each batch's group commit), read threads issue point and
//! batched lookups, and one best-effort telemetry thread uses
//! `try_submit`, shedding load whenever its shard queue saturates
//! instead of stalling the caller.
//!
//! ```sh
//! cargo run --release --example pipelined_service
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tierbase::frontend::{ElasticConfig, Request};
use tierbase::lsm::{LsmConfig, LsmDb};
use tierbase::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("tb-example-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A durable engine: every acknowledged write has been fsync'd by
    // the batch's group commit.
    let db: Arc<dyn KvEngine> = Arc::new(LsmDb::open(LsmConfig::new(&dir))?);
    let fe = Arc::new(Frontend::start(
        db,
        FrontendConfig {
            shards: 4,
            // Small queues so the telemetry thread actually sees
            // backpressure in a few seconds of runtime.
            queue_capacity: 256,
            max_batch: 64,
            group_commit: true,
            max_workers_per_shard: 4,
            elastic: ElasticConfig::default(),
        },
    ));

    let writes = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Ingest: four writers pipeline a burst each, then await the
        // tickets — deep batches for the group commit.
        for w in 0..4 {
            let fe = fe.clone();
            let writes = writes.clone();
            s.spawn(move || {
                for chunk in 0..20 {
                    let tickets: Vec<_> = (0..250)
                        .map(|i| {
                            let key = Key::from(format!("user:{w}:{}", chunk * 250 + i));
                            fe.submit(Request::Put(key, Value::from(format!("profile-{i}"))))
                        })
                        .collect();
                    for t in tickets {
                        if t.wait().is_ok() {
                            writes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // Readers: point gets plus gateway-style batched lookups.
        for r in 0..2 {
            let fe = fe.clone();
            let reads = reads.clone();
            s.spawn(move || {
                for round in 0..500 {
                    let key = Key::from(format!("user:{}:{}", r, round % 1000));
                    let _ = fe.get(&key);
                    let batch: Vec<Key> = (0..16)
                        .map(|i| Key::from(format!("user:{r}:{}", (round + i) % 1000)))
                        .collect();
                    let _ = fe.multi_get(&batch);
                    reads.fetch_add(17, Ordering::Relaxed);
                }
            });
        }

        // Telemetry: best-effort counters that must never block the
        // hot path — try_submit sheds on a saturated shard.
        {
            let fe = fe.clone();
            let shed = shed.clone();
            s.spawn(move || {
                for i in 0..5000 {
                    let key = Key::from(format!("telemetry:{}", i % 64));
                    match fe.try_submit(Request::Put(key, Value::from("tick"))) {
                        Ok(_) => {}
                        Err(Error::Backpressure { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });

    fe.barrier();

    // A feed-style fetch through the batched submission/completion API:
    // one heterogeneous op batch, one overlapped storage pass. The
    // shard workers lower it onto `LsmDb::apply_batch`, which dedups
    // the SSTable block reads behind the keys.
    let feed: Vec<Key> = (0..64).map(|i| Key::from(format!("user:0:{i}"))).collect();
    let outcomes = fe.apply_batch(vec![
        EngineOp::MultiGet(feed),
        EngineOp::Put(Key::from("feed:cursor"), Value::from("64")),
        EngineOp::Get(Key::from("feed:cursor")),
    ]);
    let feed_hits = match &outcomes[0] {
        Ok(OpOutcome::Values(values)) => values.iter().flatten().count(),
        other => panic!("feed fetch failed: {other:?}"),
    };
    assert_eq!(
        outcomes[2],
        Ok(OpOutcome::Value(Some(Value::from("64")))),
        "the batched get must see the batched put before it"
    );

    let snap = fe.stats_snapshot();
    println!("pipelined service over {}:", fe.label());
    println!("  feed batch          : {feed_hits}/64 hits in one apply_batch submission");
    println!(
        "  engine batch reads  : {} blocks ({} deduped, {} memtable hits)",
        snap.engine_batch.blocks_read,
        snap.engine_batch.block_dedup_hits,
        snap.engine_batch.memtable_hits
    );
    println!("  acknowledged writes : {}", writes.load(Ordering::Relaxed));
    println!("  reads served        : {}", reads.load(Ordering::Relaxed));
    println!(
        "  telemetry shed      : {} (backpressure rejections: {})",
        shed.load(Ordering::Relaxed),
        snap.backpressure_rejections
    );
    println!(
        "  batches drained     : {} ({:.1} ops/batch)",
        snap.batches,
        snap.mean_batch()
    );
    println!(
        "  group commits       : {} fsyncs for {} submitted ops",
        snap.group_syncs, snap.submitted
    );
    println!(
        "  elastic boosts      : {} (shrinks: {})",
        snap.boosts, snap.shrinks
    );

    // One unified telemetry snapshot covers the front-end and the LSM
    // engine behind it. Both renderings are self-validated: the
    // Prometheus text must pass the exposition linter and the JSON
    // must round-trip through the parser.
    let metrics = tierbase::obs::global().snapshot();
    let exposition = metrics.to_prometheus();
    tierbase::obs::validate_exposition(&exposition).expect("well-formed exposition");
    tierbase::obs::json::parse(&metrics.to_json()).expect("well-formed json");
    println!("\n# telemetry snapshot (Prometheus exposition, frontend_* excerpt)");
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("frontend_") && !l.contains("_ns"))
        .take(12)
    {
        println!("{line}");
    }
    println!(
        "# ... {} counters, {} gauges, {} histograms in the full snapshot",
        metrics.counters.len(),
        metrics.gauges.len(),
        metrics.histograms.len()
    );
    if let Some(h) = metrics.histograms.get("frontend_e2e_ns") {
        println!(
            "frontend e2e latency: p50 {:.1}us p99 {:.1}us ({} ops)",
            h.p50 as f64 / 1000.0,
            h.p99 as f64 / 1000.0,
            h.count
        );
    }

    fe.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
