//! Vector search (§3): ANN queries next to key-value data.
//!
//! TierBase integrates a vector index (VSAG in the paper; an HNSW graph
//! here) so applications can store items in the KV tiers and retrieve
//! them by embedding similarity — with real-time inserts and deletes.
//!
//! ```sh
//! cargo run --release --example vector_search
//! ```

use tierbase::prelude::*;
use tierbase::store::{HnswConfig, HnswIndex};

/// Toy deterministic "embedding" of a text: byte histogram projected to
/// a few dimensions. Stands in for a real model's output.
fn embed(text: &str, dim: usize) -> Vec<f32> {
    let mut v = vec![0f32; dim];
    for (i, b) in text.bytes().enumerate() {
        v[i % dim] += (b as f32 - 96.0) / 32.0;
    }
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    v.iter_mut().for_each(|x| *x /= norm);
    v
}

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("tierbase-example-vector");
    let _ = std::fs::remove_dir_all(&dir);
    let store = TierBase::open(TierBaseConfig::builder(dir).build())?;

    const DIM: usize = 16;
    let index = HnswIndex::new(DIM, HnswConfig::default());

    // Store documents in the KV store; index their embeddings.
    let docs = [
        "tiered storage balances performance and capacity",
        "write back caching defers storage updates in batches",
        "write through caching synchronizes storage before acking",
        "persistent memory extends dram at lower cost",
        "pattern based compression extracts templates from records",
        "elastic threading boosts hot shards with idle cores",
        "zipfian workloads concentrate accesses on hot keys",
        "bloom filters skip sstables that cannot hold a key",
        "the five minute rule prices memory against disk accesses",
        "cost optimal configurations balance space and performance",
    ];
    for (i, doc) in docs.iter().enumerate() {
        store.put(Key::from(format!("doc:{i}")), Value::from(*doc))?;
        index.insert(i as u64, embed(doc, DIM));
    }
    println!("indexed {} documents", index.len());

    // Similarity query.
    let query = "how does caching defer writes to storage";
    let hits = index.search(&embed(query, DIM), 3);
    println!("\nquery: {query:?}");
    for (id, dist) in &hits {
        let doc = store
            .get(&Key::from(format!("doc:{id}")))?
            .expect("doc exists");
        println!(
            "  d2={dist:.3}  {}",
            String::from_utf8_lossy(doc.as_slice())
        );
    }

    // Real-time deletion: remove the top hit and re-query.
    let top = hits[0].0;
    index.delete(top);
    store.delete(&Key::from(format!("doc:{top}")))?;
    let hits = index.search(&embed(query, DIM), 3);
    println!("\nafter deleting doc {top}:");
    for (id, dist) in &hits {
        assert_ne!(*id, top, "deleted vector must not surface");
        let doc = store
            .get(&Key::from(format!("doc:{id}")))?
            .expect("doc exists");
        println!(
            "  d2={dist:.3}  {}",
            String::from_utf8_lossy(doc.as_slice())
        );
    }

    // Real-time insertion.
    let new_doc = "deferred batched updates amortize remote round trips";
    store.put(Key::from("doc:new"), Value::from(new_doc))?;
    index.insert(999, embed(new_doc, DIM));
    println!("\nindex now holds {} live vectors", index.len());
    Ok(())
}
