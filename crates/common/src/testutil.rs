//! Shared test-directory helper.
//!
//! Every crate in the workspace used to roll its own pid-keyed temp-dir
//! scheme (`tb-foo-{pid}`), which collides when two tests in one binary
//! pick the same name and leaks the directory when a test panics before
//! its trailing `remove_dir_all`. [`test_dir`] fixes both: the path is
//! unique per *call* (pid + a process-wide counter), and the returned
//! [`TestDir`] guard removes the directory on drop — including the
//! unwind of a failing assertion.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// RAII temporary directory for tests and benches.
///
/// The directory itself is *not* created eagerly — most consumers
/// (`LsmConfig`, `TierBaseConfig`, ...) `create_dir_all` their data dir
/// themselves, and several tests assert on a fresh, absent path. Drop
/// removes whatever ended up on disk.
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// The directory path. `&Path` converts into everything the
    /// workspace's config builders take (`impl Into<PathBuf>`).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Convenience: a path inside the directory.
    pub fn join(&self, name: impl AsRef<Path>) -> PathBuf {
        self.path.join(name)
    }

    /// Creates the directory (some tests want it present before any
    /// store opens, e.g. to plant files) and returns the path.
    pub fn create(&self) -> &Path {
        let _ = std::fs::create_dir_all(&self.path);
        &self.path
    }
}

impl AsRef<Path> for TestDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A fresh, collision-free temp directory: `{tmp}/{tag}-{pid}-{seq}`.
/// Unique per call even when two tests share a tag, and cleaned up when
/// the guard drops (keep the guard alive across any reopen cycles).
pub fn test_dir(tag: &str) -> TestDir {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("{tag}-{}-{seq}", std::process::id()));
    // A stale run (previous pid reuse, crashed process) may have left
    // the path behind; tests expect a fresh tree.
    let _ = std::fs::remove_dir_all(&path);
    TestDir { path }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_per_call_and_cleaned_on_drop() {
        let a = test_dir("tb-testutil");
        let b = test_dir("tb-testutil");
        assert_ne!(a.path(), b.path(), "same tag must still be unique");
        let file = a.join("probe.txt");
        std::fs::create_dir_all(a.path()).unwrap();
        std::fs::write(&file, b"x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "dropping the guard must remove the dir");
        drop(b);
    }

    #[test]
    fn cleaned_on_panic_unwind() {
        let kept = {
            let dir = test_dir("tb-testutil-panic");
            let path = dir.create().to_path_buf();
            std::fs::write(dir.join("probe"), b"x").unwrap();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _moved = dir;
                panic!("boom");
            }));
            assert!(result.is_err());
            path
        };
        assert!(!kept.exists(), "unwind must still clean the dir");
    }
}
