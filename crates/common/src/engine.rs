//! The engine abstraction every storage system in the workspace
//! implements — TierBase itself, the baseline comparators, and the bare
//! cache/LSM tiers. One trait lets a single replay/measurement harness
//! drive every system in the paper's evaluation.

use crate::{Key, Result, Value};

/// A key-value engine under test.
pub trait KvEngine: Send + Sync {
    /// Point lookup.
    fn get(&self, key: &Key) -> Result<Option<Value>>;

    /// Insert or overwrite.
    fn put(&self, key: Key, value: Value) -> Result<()>;

    /// Delete (absent keys are not an error).
    fn delete(&self, key: &Key) -> Result<()>;

    /// Bytes of the *expensive* resource this engine consumes for data at
    /// rest — memory for caching systems, memory + amortized disk for
    /// persistent ones. Drives `MaxSpace` measurement in the cost model.
    fn resident_bytes(&self) -> u64;

    /// Engine label used in reports ("tierbase-s", "redis-like", ...).
    fn label(&self) -> String;

    /// Forces any buffered state down to its durable tier (WAL fsync,
    /// write-back dirty flush, ...). Default: nothing buffered.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Batched point lookups; `result[i]` answers `keys[i]`. The default
    /// is a `get` loop; engines with a remote tier override it to
    /// amortize round-trips (deferred cache-fetching, TierBase §4.1.2).
    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Batched writes. The default is a `put` loop; engines with a
    /// remote tier override it to batch the storage round-trip.
    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        for (k, v) in pairs {
            self.put(k, v)?;
        }
        Ok(())
    }

    /// Compare-and-set: writes `new` only when the current value equals
    /// `expected` (`None` = key must be absent). Default implementation
    /// is unsynchronized read-then-write; engines with concurrency
    /// override it with an atomic version.
    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        let current = self.get(&key)?;
        let matches = match (current.as_ref(), expected) {
            (Some(c), Some(e)) => c == e,
            (None, None) => true,
            _ => false,
        };
        if matches {
            self.put(key, new)
        } else {
            Err(crate::Error::CasMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    struct MapEngine(Mutex<BTreeMap<Key, Value>>);

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        fn resident_bytes(&self) -> u64 {
            self.0
                .lock()
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum()
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    #[test]
    fn default_cas_success_and_mismatch() {
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        let k = Key::from("k");
        // Absent key, expected None → ok.
        e.cas(k.clone(), None, Value::from("v1")).unwrap();
        // Wrong expectation → mismatch.
        let err = e
            .cas(k.clone(), Some(&Value::from("nope")), Value::from("v2"))
            .unwrap_err();
        assert_eq!(err, crate::Error::CasMismatch);
        // Right expectation → ok.
        e.cas(k.clone(), Some(&Value::from("v1")), Value::from("v2"))
            .unwrap();
        assert_eq!(e.get(&k).unwrap(), Some(Value::from("v2")));
    }

    #[test]
    fn resident_bytes_tracks_content() {
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        assert_eq!(e.resident_bytes(), 0);
        e.put(Key::from("ab"), Value::from("cdef")).unwrap();
        assert_eq!(e.resident_bytes(), 6);
        e.delete(&Key::from("ab")).unwrap();
        assert_eq!(e.resident_bytes(), 0);
    }
}
