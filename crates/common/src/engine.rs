//! The engine abstraction every storage system in the workspace
//! implements — TierBase itself, the baseline comparators, and the bare
//! cache/LSM tiers. One trait lets a single replay/measurement harness
//! drive every system in the paper's evaluation.
//!
//! # The LSN / ack contract
//!
//! Engines with a durability log sequence their writes with a monotone
//! [`Lsn`]. The contract, which replication and session guarantees in
//! `tb-cluster` build on:
//!
//! * Every applied write occupies exactly one LSN, assigned in apply
//!   order — LSNs never reorder relative to the engine's write order.
//! * An **acknowledged** write (`Ok` from `put`/`delete`/`cas`/
//!   `multi_put`, or an `Ok(OpOutcome::Done(lsn))` completion slot from
//!   [`KvEngine::apply_batch`]) has been applied at its LSN; once
//!   [`KvEngine::applied_lsn`] reports at least that LSN, the write and
//!   every write sequenced before it are readable.
//! * An **errored** write is *indeterminate*: it may or may not have
//!   applied (a replica-side or post-apply failure does not un-apply the
//!   primary's write), and callers must not assume either state. What
//!   an error does guarantee is that the write was never *reported*
//!   covered: it is not at-or-below any watermark the caller was handed.
//! * Engines without a durability log (pure caches, test maps) report
//!   [`Lsn::NONE`] everywhere; the contract degenerates to plain acks.

use crate::{Key, Result, Value};

/// Log sequence number of an applied write.
///
/// `Lsn(0)` ([`Lsn::NONE`]) is reserved for "no sequence": engines
/// without a durability log, and the state of a log before its first
/// write. Real sequences start at 1 and increase by exactly one per
/// applied write, so `a <= b` means *a is covered whenever b is*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The "no sequence" token (see the type docs).
    pub const NONE: Lsn = Lsn(0);

    /// True for [`Lsn::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The next sequence number.
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One operation in a submitted batch ([`KvEngine::apply_batch`]).
///
/// The variants mirror the point/batch methods of the trait; a batch
/// mixes them freely (an io_uring-style submission queue entry). Ops
/// apply in submission order: a `Get` sees every write that precedes
/// it in the same batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOp {
    /// Point lookup → [`OpOutcome::Value`].
    Get(Key),
    /// Insert or overwrite → [`OpOutcome::Done`].
    Put(Key, Value),
    /// Delete (absent keys are not an error) → [`OpOutcome::Done`].
    Delete(Key),
    /// Compare-and-set → [`OpOutcome::Done`] or `Err(CasMismatch)`.
    Cas {
        key: Key,
        expected: Option<Value>,
        new: Value,
    },
    /// Batched lookups → [`OpOutcome::Values`] aligned with key order.
    MultiGet(Vec<Key>),
    /// Batched writes → [`OpOutcome::Done`].
    MultiPut(Vec<(Key, Value)>),
    /// Ordered range scan → [`OpOutcome::Range`]. See [`KvEngine::scan`]
    /// for the contract (`end` exclusive, `None` = unbounded; at most
    /// `limit` live entries).
    Scan {
        start: Key,
        end: Option<Key>,
        limit: usize,
    },
}

/// Completion of one [`EngineOp`]; `results[i]` answers `ops[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// A `Get` resolved.
    Value(Option<Value>),
    /// A `MultiGet` resolved, aligned with the request's key order.
    Values(Vec<Option<Value>>),
    /// A `Scan` resolved: live `(key, value)` pairs in ascending key
    /// order, truncated to the scan's `limit`.
    Range(Vec<(Key, Value)>),
    /// A write (`Put`/`Delete`/`Cas`/`MultiPut`) applied, carrying the
    /// [`Lsn`] the engine assigned it ([`Lsn::NONE`] for engines
    /// without a durability log; for a `MultiPut`, the LSN of its last
    /// pair — the one that covers the whole op).
    Done(Lsn),
}

/// Read-amplification counters of an engine's batched read path.
/// Engines without a native batch path report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReadStats {
    /// Storage blocks fetched by batched reads.
    pub blocks_read: u64,
    /// Staged block references that were satisfied by a block another
    /// key in the same batch already fetched (the dedup win).
    pub block_dedup_hits: u64,
    /// Batched lookups resolved from the in-memory write buffer without
    /// staging any storage read.
    pub memtable_hits: u64,
    /// Blocks fetched through the engine's parallel read pool (subset
    /// of `blocks_read`; zero when the pool is disabled or absent).
    pub parallel_fetches: u64,
    /// High-water mark of block fetches outstanding in the read pool at
    /// once — how deep the overlapped completion pass actually got.
    pub read_pool_queue_depth: u64,
    /// Block fetches outstanding in the read pool *right now*. The hwm
    /// above can never fall; this can, so a drained pool is visible.
    pub read_pool_depth: u64,
    /// Storage blocks staged on behalf of range scans (pre-dedup: a
    /// block shared with a point lookup in the same batch counts here
    /// *and* toward `block_dedup_hits`). Zero for engines without a
    /// native scan path.
    pub scan_blocks_read: u64,
    /// Range-scan ops served (batched or point `scan` calls).
    pub scans: u64,
    /// Data blocks written with a compressed frame payload (flush and
    /// compaction; blocks that didn't shrink fall back to stored
    /// frames). Zero for engines without block compression.
    pub blocks_compressed: u64,
    /// On-disk data-region bytes written (frames + codec dictionaries).
    pub compressed_bytes_written: u64,
    /// Raw block bytes before framing — against
    /// `compressed_bytes_written`, the store's real compression ratio.
    pub uncompressed_bytes_written: u64,
    /// Block frames whose payload was decompressed on a read (stored
    /// frames and legacy raw blocks don't count).
    pub blocks_decompressed: u64,
    /// Block frames that failed CRC or decode — each surfaced as a
    /// per-slot corruption error, never a torn batch.
    pub block_decode_errors: u64,
}

/// A key-value engine under test.
pub trait KvEngine: Send + Sync {
    /// Point lookup.
    fn get(&self, key: &Key) -> Result<Option<Value>>;

    /// Insert or overwrite.
    fn put(&self, key: Key, value: Value) -> Result<()>;

    /// Delete (absent keys are not an error).
    fn delete(&self, key: &Key) -> Result<()>;

    /// Bytes of the *expensive* resource this engine consumes for data at
    /// rest — memory for caching systems, memory + amortized disk for
    /// persistent ones. Drives `MaxSpace` measurement in the cost model.
    fn resident_bytes(&self) -> u64;

    /// Engine label used in reports ("tierbase-s", "redis-like", ...).
    fn label(&self) -> String;

    /// Forces any buffered state down to its durable tier (WAL fsync,
    /// write-back dirty flush, ...). Default: nothing buffered.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Batched point lookups; `result[i]` answers `keys[i]`. The default
    /// routes through [`KvEngine::apply_batch`] — one canonical batch
    /// path — so an engine with a native batch implementation (staged
    /// block reads, one remote round-trip) serves `multi_get` through it
    /// automatically.
    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        match self
            .apply_batch(vec![EngineOp::MultiGet(keys.to_vec())])
            .pop()
        {
            Some(Ok(OpOutcome::Values(values))) => Ok(values),
            Some(Err(e)) => Err(e),
            other => Err(crate::Error::Internal(format!(
                "multi_get batch resolved to {other:?}"
            ))),
        }
    }

    /// Batched writes. Default: one [`KvEngine::apply_batch`]
    /// submission, same canonical path as `multi_get`.
    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        match self.apply_batch(vec![EngineOp::MultiPut(pairs)]).pop() {
            Some(Ok(OpOutcome::Done(_))) => Ok(()),
            Some(Err(e)) => Err(e),
            other => Err(crate::Error::Internal(format!(
                "multi_put batch resolved to {other:?}"
            ))),
        }
    }

    /// Ordered range scan. Contract (enforced by the conformance
    /// battery): returns live `(key, value)` pairs with
    /// `start <= key < end` (`end = None` = unbounded above) in
    /// ascending key order, at most `limit` of them. Deleted keys
    /// (tombstones) and expired entries (engines with TTL support) are
    /// masked, never returned.
    ///
    /// The default routes through [`KvEngine::apply_batch`] with one
    /// [`EngineOp::Scan`], so a scan is one op in the engine's canonical
    /// batch path. NOTE: an engine must natively handle at least one of
    /// the pair {`scan`, `apply_batch`'s `Scan` arm} — the two defaults
    /// lower onto each other, so overriding neither recurses.
    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        let op = EngineOp::Scan {
            start: start.clone(),
            end: end.cloned(),
            limit,
        };
        match self.apply_batch(vec![op]).pop() {
            Some(Ok(OpOutcome::Range(entries))) => Ok(entries),
            Some(Err(e)) => Err(e),
            other => Err(crate::Error::Internal(format!(
                "scan batch resolved to {other:?}"
            ))),
        }
    }

    /// Submits a heterogeneous op batch and returns one completion per
    /// op, aligned with submission order (`results[i]` answers
    /// `ops[i]`). Per-op failures are per-slot `Err`s; the rest of the
    /// batch still applies — submission/completion semantics, not a
    /// transaction.
    ///
    /// The default lowers each op onto the point methods in order
    /// (`MultiGet`/`MultiPut` become inline point loops rather than
    /// `self.multi_get`/`self.multi_put` calls, because those methods
    /// default to routing back through `apply_batch`; `Scan` lowers onto
    /// `self.scan` — see that method's note on the override contract),
    /// so every engine supports the interface; engines with per-op
    /// storage latency override it to make one overlapped storage pass
    /// per batch (`tb-lsm` stages and dedups SSTable block reads;
    /// remote tiers spend one round-trip).
    fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        ops.into_iter()
            .map(|op| match op {
                EngineOp::Get(key) => self.get(&key).map(OpOutcome::Value),
                // Per-op lowering acks with the engine's applied LSN
                // *after* the write: exact for serialized writers, and
                // always a covering LSN (LSN order = apply order).
                EngineOp::Put(key, value) => self
                    .put(key, value)
                    .map(|_| OpOutcome::Done(self.applied_lsn())),
                EngineOp::Delete(key) => self
                    .delete(&key)
                    .map(|_| OpOutcome::Done(self.applied_lsn())),
                EngineOp::Cas { key, expected, new } => self
                    .cas(key, expected.as_ref(), new)
                    .map(|_| OpOutcome::Done(self.applied_lsn())),
                EngineOp::MultiGet(keys) => keys
                    .iter()
                    .map(|k| self.get(k))
                    .collect::<Result<Vec<_>>>()
                    .map(OpOutcome::Values),
                EngineOp::MultiPut(pairs) => {
                    let mut result = Ok(());
                    for (k, v) in pairs {
                        result = self.put(k, v);
                        if result.is_err() {
                            break;
                        }
                    }
                    result.map(|_| OpOutcome::Done(self.applied_lsn()))
                }
                EngineOp::Scan { start, end, limit } => {
                    self.scan(&start, end.as_ref(), limit).map(OpOutcome::Range)
                }
            })
            .collect()
    }

    /// Counters of the engine's batched read path (zeros when the
    /// engine has no native one). Cumulative over the engine's life.
    fn batch_read_stats(&self) -> BatchReadStats {
        BatchReadStats::default()
    }

    /// [`Lsn`] of the newest write this engine has applied — the head
    /// of its durability log (see the module docs for the full LSN/ack
    /// contract). Monotone non-decreasing over the engine's life.
    /// Default: [`Lsn::NONE`] (no durability log).
    fn applied_lsn(&self) -> Lsn {
        Lsn::NONE
    }

    /// Compare-and-set: writes `new` only when the current value equals
    /// `expected` (`None` = key must be absent). Default implementation
    /// is unsynchronized read-then-write; engines with concurrency
    /// override it with an atomic version.
    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        let current = self.get(&key)?;
        let matches = match (current.as_ref(), expected) {
            (Some(c), Some(e)) => c == e,
            (None, None) => true,
            _ => false,
        };
        if matches {
            self.put(key, new)
        } else {
            Err(crate::Error::CasMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    struct MapEngine(Mutex<BTreeMap<Key, Value>>);

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        fn resident_bytes(&self) -> u64 {
            self.0
                .lock()
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum()
        }
        fn label(&self) -> String {
            "map".into()
        }
        // Native ordered iteration; `apply_batch`'s default Scan arm
        // lowers onto this (the override contract in `KvEngine::scan`).
        fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
            Ok(self
                .0
                .lock()
                .range::<Key, _>((
                    std::ops::Bound::Included(start),
                    end.map_or(std::ops::Bound::Unbounded, std::ops::Bound::Excluded),
                ))
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }
    }

    #[test]
    fn default_cas_success_and_mismatch() {
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        let k = Key::from("k");
        // Absent key, expected None → ok.
        e.cas(k.clone(), None, Value::from("v1")).unwrap();
        // Wrong expectation → mismatch.
        let err = e
            .cas(k.clone(), Some(&Value::from("nope")), Value::from("v2"))
            .unwrap_err();
        assert_eq!(err, crate::Error::CasMismatch);
        // Right expectation → ok.
        e.cas(k.clone(), Some(&Value::from("v1")), Value::from("v2"))
            .unwrap();
        assert_eq!(e.get(&k).unwrap(), Some(Value::from("v2")));
    }

    #[test]
    fn default_apply_batch_applies_in_submission_order() {
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        let k = Key::from("seq");
        let outcomes = e.apply_batch(vec![
            EngineOp::Get(k.clone()),
            EngineOp::Put(k.clone(), Value::from("a")),
            EngineOp::Get(k.clone()),
            EngineOp::Cas {
                key: k.clone(),
                expected: Some(Value::from("a")),
                new: Value::from("b"),
            },
            EngineOp::Cas {
                key: k.clone(),
                expected: Some(Value::from("a")),
                new: Value::from("c"),
            },
            EngineOp::MultiGet(vec![k.clone(), Key::from("miss")]),
            EngineOp::Delete(k.clone()),
            EngineOp::Get(k.clone()),
        ]);
        assert_eq!(outcomes.len(), 8);
        assert_eq!(outcomes[0], Ok(OpOutcome::Value(None)));
        assert_eq!(outcomes[1], Ok(OpOutcome::Done(Lsn::NONE)));
        assert_eq!(
            outcomes[2],
            Ok(OpOutcome::Value(Some(Value::from("a")))),
            "a get must see the put submitted before it"
        );
        assert_eq!(outcomes[3], Ok(OpOutcome::Done(Lsn::NONE)));
        // The second CAS ran *after* the first succeeded: mismatch, and
        // the per-op error does not poison the rest of the batch.
        assert_eq!(outcomes[4], Err(crate::Error::CasMismatch));
        assert_eq!(
            outcomes[5],
            Ok(OpOutcome::Values(vec![Some(Value::from("b")), None]))
        );
        assert_eq!(outcomes[6], Ok(OpOutcome::Done(Lsn::NONE)));
        assert_eq!(outcomes[7], Ok(OpOutcome::Value(None)));
    }

    #[test]
    fn default_batch_methods_route_through_apply_batch() {
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        e.multi_put(vec![
            (Key::from("a"), Value::from("1")),
            (Key::from("b"), Value::from("2")),
        ])
        .unwrap();
        assert_eq!(
            e.multi_get(&[Key::from("b"), Key::from("miss"), Key::from("a")])
                .unwrap(),
            vec![Some(Value::from("2")), None, Some(Value::from("1"))]
        );
    }

    #[test]
    fn scan_in_batch_sees_earlier_writes_and_respects_bounds() {
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        for i in 0..6 {
            e.put(Key::from(format!("s{i}")), Value::from(format!("v{i}")))
                .unwrap();
        }
        // A scan submitted after a put and a delete in the same batch
        // observes both; the end bound is exclusive, the limit caps.
        let outcomes = e.apply_batch(vec![
            EngineOp::Put(Key::from("s2"), Value::from("rewritten")),
            EngineOp::Delete(Key::from("s1")),
            EngineOp::Scan {
                start: Key::from("s0"),
                end: Some(Key::from("s4")),
                limit: 10,
            },
            EngineOp::Scan {
                start: Key::from("s0"),
                end: None,
                limit: 2,
            },
        ]);
        assert_eq!(
            outcomes[2],
            Ok(OpOutcome::Range(vec![
                (Key::from("s0"), Value::from("v0")),
                (Key::from("s2"), Value::from("rewritten")),
                (Key::from("s3"), Value::from("v3")),
            ]))
        );
        assert_eq!(
            outcomes[3],
            Ok(OpOutcome::Range(vec![
                (Key::from("s0"), Value::from("v0")),
                (Key::from("s2"), Value::from("rewritten")),
            ]))
        );
        // The point method and the batch path agree.
        assert_eq!(
            e.scan(&Key::from("s3"), None, 100).unwrap(),
            vec![
                (Key::from("s3"), Value::from("v3")),
                (Key::from("s4"), Value::from("v4")),
                (Key::from("s5"), Value::from("v5")),
            ]
        );
    }

    #[test]
    fn lsn_ordering_and_none() {
        assert!(Lsn::NONE.is_none());
        assert!(!Lsn(1).is_none());
        assert_eq!(Lsn::NONE.next(), Lsn(1));
        assert!(Lsn(3) < Lsn(4), "LSNs order by sequence");
        assert_eq!(format!("{}", Lsn(42)), "42");
        // Engines without a log report NONE and never advance.
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        e.put(Key::from("k"), Value::from("v")).unwrap();
        assert_eq!(e.applied_lsn(), Lsn::NONE);
    }

    #[test]
    fn batch_read_stats_default_to_zero() {
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        assert_eq!(e.batch_read_stats(), BatchReadStats::default());
    }

    #[test]
    fn resident_bytes_tracks_content() {
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        assert_eq!(e.resident_bytes(), 0);
        e.put(Key::from("ab"), Value::from("cdef")).unwrap();
        assert_eq!(e.resident_bytes(), 6);
        e.delete(&Key::from("ab")).unwrap();
        assert_eq!(e.resident_bytes(), 0);
    }
}
