//! Log-bucketed latency histogram.
//!
//! Records nanosecond latencies into logarithmically spaced buckets
//! (HdrHistogram-style: power-of-two magnitude with linear sub-buckets),
//! giving ~3% relative error on percentile queries while using a fixed,
//! small memory footprint. All mutation is atomic so a histogram can be
//! shared across worker threads without locking.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BUCKET_BITS: u32 = 5; // 32 linear sub-buckets per magnitude
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const MAGNITUDES: usize = 40; // covers up to ~2^(40+5) ns ≈ 10 hours
const BUCKETS: usize = MAGNITUDES * SUB_BUCKETS;

/// Concurrent log-bucketed histogram of `u64` samples (typically nanos).
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        // Avoid a huge stack temporary: build on the heap.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let boxed: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().map_err(|_| ()).unwrap();
        Self {
            counts: boxed,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        let v = value.max(1);
        let mag = (63 - v.leading_zeros()) as usize; // floor(log2(v))
        if mag < SUB_BUCKET_BITS as usize {
            // Small values map directly onto the first linear region.
            return v as usize;
        }
        let shift = mag - SUB_BUCKET_BITS as usize;
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        let idx = (mag - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS + sub;
        idx.min(BUCKETS - 1)
    }

    #[inline]
    fn bucket_value(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let mag = idx / SUB_BUCKETS - 1 + SUB_BUCKET_BITS as usize;
        let sub = idx % SUB_BUCKETS;
        let shift = mag - SUB_BUCKET_BITS as usize;
        // Representative value: midpoint of the bucket range.
        let base = (sub as u64 | SUB_BUCKETS as u64) << shift;
        base + (1u64 << shift) / 2
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate value at quantile `q` in `[0, 1]` (0 when empty).
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        self.max()
    }

    /// 99th-percentile convenience accessor (the paper's tail-latency metric).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Resets all counters.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Merges another histogram's counts into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.counts.iter().zip(other.counts.iter()) {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn single_value() {
        let h = Histogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.percentile(0.5);
        assert!((p50 as f64 - 1000.0).abs() / 1000.0 < 0.05, "p50={p50}");
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5) as f64;
        let p99 = h.percentile(0.99) as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05, "p50={p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05, "p99={p99}");
        assert!((h.mean() - 50_000.5).abs() < 1500.0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 1..=31u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0 / 31.0), 1);
        assert_eq!(h.percentile(1.0), 31);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn merge_combines() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=1000u64 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert_eq!(a.max(), 2000);
        let p50 = a.percentile(0.5) as f64;
        assert!((p50 - 1000.0).abs() / 1000.0 < 0.06, "p50={p50}");
    }

    #[test]
    fn reset_clears() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let mut threads = vec![];
        for _ in 0..4 {
            let h = h.clone();
            threads.push(std::thread::spawn(move || {
                for v in 1..=10_000u64 {
                    h.record(v);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        for v in [1u64, 10, 100, 1_000, 123_456, 10_000_000, u32::MAX as u64] {
            let idx = Histogram::bucket_index(v);
            let rep = Histogram::bucket_value(idx);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.05, "v={v} rep={rep} err={err}");
        }
    }
}
