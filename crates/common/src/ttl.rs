//! Key time-to-live state, shared by the cache tier and the tiered
//! store.
//!
//! Semantics follow Redis: a key either does not exist, exists without
//! an expiry, or exists with a remaining lifetime. Expiry timestamps
//! are absolute [`Clock`](crate::Clock) nanoseconds, so deterministic
//! tests drive them with a `ManualClock`.

use std::time::Duration;

/// The TTL of a key, as reported by `ttl`-style queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtlState {
    /// The key does not exist (or has already expired). Redis `TTL` -2.
    Missing,
    /// The key exists and never expires. Redis `TTL` -1.
    NoExpiry,
    /// The key exists and expires after this much more time.
    Remaining(Duration),
}

impl TtlState {
    /// Classifies an expiry timestamp against the current time.
    /// `expires_at` is absolute clock nanoseconds; `None` means the key
    /// has no expiry set.
    pub fn from_deadline(expires_at: Option<u64>, now_nanos: u64) -> Self {
        match expires_at {
            None => TtlState::NoExpiry,
            Some(at) if at <= now_nanos => TtlState::Missing,
            Some(at) => TtlState::Remaining(Duration::from_nanos(at - now_nanos)),
        }
    }

    /// True when the key exists (with or without an expiry).
    pub fn exists(&self) -> bool {
        !matches!(self, TtlState::Missing)
    }
}

/// True when a deadline has passed. `None` never expires.
#[inline]
pub fn is_expired(expires_at: Option<u64>, now_nanos: u64) -> bool {
    matches!(expires_at, Some(at) if at <= now_nanos)
}

/// Converts a relative TTL into an absolute deadline on the caller's
/// clock, saturating instead of overflowing for very long TTLs.
#[inline]
pub fn deadline_after(now_nanos: u64, ttl: Duration) -> u64 {
    now_nanos.saturating_add(ttl.as_nanos().min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_deadline_classifies() {
        assert_eq!(TtlState::from_deadline(None, 100), TtlState::NoExpiry);
        assert_eq!(TtlState::from_deadline(Some(50), 100), TtlState::Missing);
        assert_eq!(TtlState::from_deadline(Some(100), 100), TtlState::Missing);
        assert_eq!(
            TtlState::from_deadline(Some(150), 100),
            TtlState::Remaining(Duration::from_nanos(50))
        );
    }

    #[test]
    fn exists_matches_variants() {
        assert!(!TtlState::Missing.exists());
        assert!(TtlState::NoExpiry.exists());
        assert!(TtlState::Remaining(Duration::from_secs(1)).exists());
    }

    #[test]
    fn is_expired_boundary() {
        assert!(!is_expired(None, u64::MAX));
        assert!(
            is_expired(Some(10), 10),
            "deadline == now counts as expired"
        );
        assert!(!is_expired(Some(11), 10));
    }

    #[test]
    fn deadline_saturates() {
        assert_eq!(
            deadline_after(u64::MAX - 1, Duration::from_secs(5)),
            u64::MAX
        );
        assert_eq!(deadline_after(0, Duration::from_nanos(42)), 42);
    }
}
