//! Real and virtual clocks.
//!
//! Components take a [`Clock`] so tests and simulations can drive time
//! deterministically (e.g. write-back flush intervals, break-even access
//! intervals, elastic-threading watermark windows) while production code
//! uses [`SystemClock`].

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync + 'static {
    /// Nanoseconds since an arbitrary epoch. Monotonic, non-decreasing.
    fn now_nanos(&self) -> u64;

    /// Convenience: current time as a [`Duration`] since the epoch.
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos())
    }
}

/// Wall-clock-backed monotonic clock.
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Manually-advanced clock for deterministic tests and simulations.
#[derive(Default)]
pub struct ManualClock {
    nanos: AtomicU64,
    // Serializes compound advance operations observed by multiple threads.
    advance_lock: Mutex<()>,
}

impl ManualClock {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Starts at the given nanosecond timestamp.
    pub fn starting_at(nanos: u64) -> Arc<Self> {
        let c = Self::default();
        c.nanos.store(nanos, Ordering::SeqCst);
        Arc::new(c)
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        let _g = self.advance_lock.lock();
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute nanosecond value (must not go back).
    pub fn set_nanos(&self, nanos: u64) {
        let _g = self.advance_lock.lock();
        let cur = self.nanos.load(Ordering::SeqCst);
        assert!(nanos >= cur, "ManualClock must not move backwards");
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now_nanos(), 5_000_000);
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_nanos(1_005_000_000));
    }

    #[test]
    fn manual_clock_set_absolute() {
        let c = ManualClock::starting_at(100);
        c.set_nanos(200);
        assert_eq!(c.now_nanos(), 200);
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn manual_clock_rejects_backwards() {
        let c = ManualClock::starting_at(100);
        c.set_nanos(50);
    }

    #[test]
    fn trait_object_usable() {
        let c: Arc<dyn Clock> = ManualClock::starting_at(42);
        assert_eq!(c.now_nanos(), 42);
    }
}
