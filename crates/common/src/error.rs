//! Error type shared across the TierBase workspace.

use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by TierBase components.
///
/// The variants are deliberately coarse: callers branch on the *kind* of
/// failure (not found, corruption, backpressure, ...) rather than on the
/// precise internal cause, which is carried in the message payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested key does not exist.
    NotFound,
    /// A compare-and-set failed because the expected value did not match.
    CasMismatch,
    /// Persistent state failed an integrity check (bad checksum, truncated
    /// record, malformed block, ...).
    Corruption(String),
    /// An I/O operation on the backing medium failed.
    Io(String),
    /// The caller supplied an invalid argument or configuration.
    InvalidArgument(String),
    /// The component is shedding load (e.g. write-back dirty-data threshold
    /// exceeded); the caller should retry later.
    Backpressure(String),
    /// A write to the storage tier failed; in write-through mode the cache
    /// entry has been invalidated.
    StorageWriteFailed(String),
    /// The target node/shard is unavailable (crashed or failing over).
    Unavailable(String),
    /// A simulated fault was injected by a test harness.
    FaultInjected(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound => write!(f, "key not found"),
            Error::CasMismatch => write!(f, "compare-and-set mismatch"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Backpressure(m) => write!(f, "backpressure: {m}"),
            Error::StorageWriteFailed(m) => write!(f, "storage write failed: {m}"),
            Error::Unavailable(m) => write!(f, "unavailable: {m}"),
            Error::FaultInjected(m) => write!(f, "fault injected: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl Error {
    /// True when retrying the operation later may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Backpressure(_) | Error::Unavailable(_) | Error::StorageWriteFailed(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(Error::NotFound.to_string(), "key not found");
        assert_eq!(
            Error::Corruption("bad crc".into()).to_string(),
            "corruption: bad crc"
        );
        assert_eq!(Error::CasMismatch.to_string(), "compare-and-set mismatch");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(ref m) if m.contains("disk gone")));
    }

    #[test]
    fn retryability() {
        assert!(Error::Backpressure("full".into()).is_retryable());
        assert!(Error::Unavailable("node down".into()).is_retryable());
        assert!(!Error::NotFound.is_retryable());
        assert!(!Error::Corruption("x".into()).is_retryable());
    }
}
