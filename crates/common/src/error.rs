//! Error type shared across the TierBase workspace.

use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by TierBase components.
///
/// The variants are deliberately coarse: callers branch on the *kind* of
/// failure (not found, corruption, backpressure, ...) rather than on the
/// precise internal cause, which is carried in the message payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested key does not exist.
    NotFound,
    /// A compare-and-set failed because the expected value did not match.
    CasMismatch,
    /// Persistent state failed an integrity check (bad checksum, truncated
    /// record, malformed block, ...).
    Corruption(String),
    /// An I/O operation on the backing medium failed.
    Io(String),
    /// The caller supplied an invalid argument or configuration.
    InvalidArgument(String),
    /// The component is shedding load (e.g. write-back dirty-data threshold
    /// exceeded or a front-end submission queue at capacity); the caller
    /// should retry later.
    ///
    /// `queue_depth` is a retry-after hint: the depth of the queue that
    /// refused the request at the moment of rejection (0 = unknown). A
    /// caller can use it to scale its backoff — deeper queue, longer wait.
    Backpressure {
        /// Human-readable cause.
        reason: String,
        /// Depth of the refusing queue at rejection time; 0 when the
        /// shedding component has no queue to report.
        queue_depth: u32,
    },
    /// A write to the storage tier failed; in write-through mode the cache
    /// entry has been invalidated.
    StorageWriteFailed(String),
    /// The target node/shard is unavailable (crashed or failing over).
    Unavailable(String),
    /// A simulated fault was injected by a test harness.
    FaultInjected(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound => write!(f, "key not found"),
            Error::CasMismatch => write!(f, "compare-and-set mismatch"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Backpressure {
                reason,
                queue_depth: 0,
            } => {
                write!(f, "backpressure: {reason}")
            }
            Error::Backpressure {
                reason,
                queue_depth,
            } => {
                write!(f, "backpressure: {reason} (queue depth {queue_depth})")
            }
            Error::StorageWriteFailed(m) => write!(f, "storage write failed: {m}"),
            Error::Unavailable(m) => write!(f, "unavailable: {m}"),
            Error::FaultInjected(m) => write!(f, "fault injected: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl Error {
    /// Backpressure with no queue-depth hint (depth unknown / not queue-based).
    pub fn backpressure(reason: impl Into<String>) -> Self {
        Error::Backpressure {
            reason: reason.into(),
            queue_depth: 0,
        }
    }

    /// Backpressure carrying the depth of the refusing queue as a
    /// retry-after hint.
    pub fn backpressure_at_depth(reason: impl Into<String>, queue_depth: u32) -> Self {
        Error::Backpressure {
            reason: reason.into(),
            queue_depth,
        }
    }

    /// The queue-depth retry hint, if this is a backpressure error that
    /// carries one.
    pub fn queue_depth(&self) -> Option<u32> {
        match self {
            Error::Backpressure { queue_depth, .. } if *queue_depth > 0 => Some(*queue_depth),
            _ => None,
        }
    }

    /// True when retrying the operation later may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Backpressure { .. } | Error::Unavailable(_) | Error::StorageWriteFailed(_)
        )
    }

    /// Stable single-byte code identifying the error *kind* on the wire.
    ///
    /// The tb-server protocol ships errors as `(code, detail message)`
    /// pairs; [`Error::from_wire`] reverses the mapping. Message-free
    /// variants (`NotFound`, `CasMismatch`) round-trip to the exact enum
    /// value so cross-socket callers can compare with `==` just like
    /// in-process ones. Codes are append-only: never renumber.
    pub fn wire_code(&self) -> u8 {
        match self {
            Error::NotFound => 1,
            Error::CasMismatch => 2,
            Error::Corruption(_) => 3,
            Error::Io(_) => 4,
            Error::InvalidArgument(_) => 5,
            Error::Backpressure { .. } => 6,
            Error::StorageWriteFailed(_) => 7,
            Error::Unavailable(_) => 8,
            Error::FaultInjected(_) => 9,
            Error::Internal(_) => 10,
        }
    }

    /// Rebuild an error from its wire `(code, message)` representation.
    ///
    /// Unknown codes (from a newer peer) degrade to [`Error::Internal`]
    /// rather than being dropped. Backpressure's queue-depth hint travels
    /// in a dedicated field of the RETRY frame, so it is re-attached by
    /// the protocol layer, not here.
    pub fn from_wire(code: u8, message: String) -> Self {
        match code {
            1 => Error::NotFound,
            2 => Error::CasMismatch,
            3 => Error::Corruption(message),
            4 => Error::Io(message),
            5 => Error::InvalidArgument(message),
            6 => Error::Backpressure {
                reason: message,
                queue_depth: 0,
            },
            7 => Error::StorageWriteFailed(message),
            8 => Error::Unavailable(message),
            9 => Error::FaultInjected(message),
            10 => Error::Internal(message),
            other => Error::Internal(format!("unknown wire error code {other}: {message}")),
        }
    }

    /// The detail message carried by this error (empty for message-free
    /// variants). Used by the wire protocol's encode side.
    pub fn wire_message(&self) -> &str {
        match self {
            Error::NotFound | Error::CasMismatch => "",
            Error::Corruption(m)
            | Error::Io(m)
            | Error::InvalidArgument(m)
            | Error::StorageWriteFailed(m)
            | Error::Unavailable(m)
            | Error::FaultInjected(m)
            | Error::Internal(m) => m,
            Error::Backpressure { reason, .. } => reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(Error::NotFound.to_string(), "key not found");
        assert_eq!(
            Error::Corruption("bad crc".into()).to_string(),
            "corruption: bad crc"
        );
        assert_eq!(Error::CasMismatch.to_string(), "compare-and-set mismatch");
        assert_eq!(
            Error::backpressure("shed").to_string(),
            "backpressure: shed"
        );
        assert_eq!(
            Error::backpressure_at_depth("queue full", 128).to_string(),
            "backpressure: queue full (queue depth 128)"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(ref m) if m.contains("disk gone")));
    }

    #[test]
    fn retryability() {
        assert!(Error::backpressure("full").is_retryable());
        assert!(Error::Unavailable("node down".into()).is_retryable());
        assert!(!Error::NotFound.is_retryable());
        assert!(!Error::Corruption("x".into()).is_retryable());
    }

    #[test]
    fn queue_depth_hint() {
        assert_eq!(Error::backpressure("full").queue_depth(), None);
        assert_eq!(
            Error::backpressure_at_depth("full", 64).queue_depth(),
            Some(64)
        );
        assert_eq!(Error::NotFound.queue_depth(), None);
    }

    #[test]
    fn wire_codes_round_trip() {
        let cases = vec![
            Error::NotFound,
            Error::CasMismatch,
            Error::Corruption("crc".into()),
            Error::Io("eio".into()),
            Error::InvalidArgument("bad".into()),
            Error::backpressure("full"),
            Error::StorageWriteFailed("wal".into()),
            Error::Unavailable("down".into()),
            Error::FaultInjected("boom".into()),
            Error::Internal("bug".into()),
        ];
        for e in cases {
            let back = Error::from_wire(e.wire_code(), e.wire_message().to_string());
            assert_eq!(back, e, "round trip changed {e:?}");
        }
        // Unknown codes degrade to Internal rather than vanishing.
        assert!(matches!(
            Error::from_wire(200, "future".into()),
            Error::Internal(_)
        ));
    }
}
