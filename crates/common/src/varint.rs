//! LEB128 variable-length integers for on-disk encodings.

use crate::{Error, Result};

/// Appends `v` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| Error::Corruption("varint truncated".into()))?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Corruption("varint too long".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = vec![];
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_is_error() {
        let mut buf = vec![];
        write_varint(&mut buf, 1 << 20);
        buf.pop();
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn overlong_is_error() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }
}
