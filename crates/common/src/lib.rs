//! Shared substrate for the TierBase workspace.
//!
//! This crate holds the small, dependency-light pieces every other crate
//! needs: byte-string key/value types, the common error enum, real and
//! virtual clocks, latency histograms, and the hashing utilities used for
//! sharding and hash-slot routing.

pub mod clock;
pub mod crc;
pub mod engine;
pub mod error;
pub mod fault;
pub mod hash;
pub mod histogram;
pub mod testutil;
pub mod ttl;
pub mod types;
pub mod varint;

pub use clock::{Clock, ManualClock, SystemClock};
pub use crc::{crc32, Crc32};
pub use engine::{BatchReadStats, EngineOp, KvEngine, Lsn, OpOutcome};
pub use error::{Error, Result};
pub use hash::{fx_hash, slot_for_key, FxBuildHasher, SLOT_COUNT};
pub use histogram::Histogram;
pub use testutil::{test_dir, TestDir};
pub use ttl::{deadline_after, is_expired, TtlState};
pub use types::{Key, Value};
pub use varint::{read_varint, write_varint};
