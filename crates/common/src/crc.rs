//! CRC-32 (IEEE 802.3) for persistent-record integrity checks.

/// Lookup table for the reflected IEEE polynomial 0xEDB88320.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Incremental CRC-32 builder for multi-part records.
#[derive(Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Self { state: 0xffff_ffff }
    }

    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            self.state = TABLE[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
        self
    }

    pub fn finalize(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut c = Crc32::new();
        c.update(b"hello ").update(b"world");
        assert_eq!(c.finalize(), crc32(b"hello world"));
    }

    #[test]
    fn detects_corruption() {
        let a = crc32(b"payload-data-here");
        let b = crc32(b"payload-dAta-here");
        assert_ne!(a, b);
    }
}
