//! Key and value byte-string types.

use bytes::Bytes;
use std::fmt;

/// An immutable key. Cheap to clone (reference-counted).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Key(pub Bytes);

/// An immutable value. Cheap to clone (reference-counted).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Value(pub Bytes);

macro_rules! bytes_newtype_impls {
    ($t:ident) => {
        impl $t {
            /// Wraps raw bytes without copying.
            pub fn from_bytes(b: Bytes) -> Self {
                Self(b)
            }

            /// Copies a byte slice into a new instance.
            pub fn copy_from(b: &[u8]) -> Self {
                Self(Bytes::copy_from_slice(b))
            }

            /// Borrow the underlying bytes.
            pub fn as_slice(&self) -> &[u8] {
                &self.0
            }

            /// Length in bytes.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes self, returning the inner [`Bytes`].
            pub fn into_bytes(self) -> Bytes {
                self.0
            }
        }

        impl From<&str> for $t {
            fn from(s: &str) -> Self {
                Self(Bytes::copy_from_slice(s.as_bytes()))
            }
        }

        impl From<String> for $t {
            fn from(s: String) -> Self {
                Self(Bytes::from(s.into_bytes()))
            }
        }

        impl From<Vec<u8>> for $t {
            fn from(v: Vec<u8>) -> Self {
                Self(Bytes::from(v))
            }
        }

        impl From<&[u8]> for $t {
            fn from(v: &[u8]) -> Self {
                Self::copy_from(v)
            }
        }

        impl AsRef<[u8]> for $t {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match std::str::from_utf8(&self.0) {
                    Ok(s) if s.chars().all(|c| !c.is_control()) => {
                        write!(f, "{}({:?})", stringify!($t), s)
                    }
                    _ => write!(f, "{}(0x{})", stringify!($t), hex(&self.0)),
                }
            }
        }
    };
}

bytes_newtype_impls!(Key);
bytes_newtype_impls!(Value);

fn hex(b: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(b.len() * 2);
    for &x in b {
        s.push(TABLE[(x >> 4) as usize] as char);
        s.push(TABLE[(x & 0xf) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let k = Key::from("user:42");
        assert_eq!(k.as_slice(), b"user:42");
        assert_eq!(k.len(), 7);
        assert!(!k.is_empty());

        let v = Value::from(vec![1u8, 2, 3]);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn clone_is_shallow() {
        let v = Value::from(vec![0u8; 1024]);
        let w = v.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(v.0.as_ptr(), w.0.as_ptr());
    }

    #[test]
    fn debug_printable_and_binary() {
        let k = Key::from("abc");
        assert_eq!(format!("{k:?}"), "Key(\"abc\")");
        let b = Key::from(vec![0u8, 255]);
        assert_eq!(format!("{b:?}"), "Key(0x00ff)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Key::from("a");
        let b = Key::from("ab");
        let c = Key::from("b");
        assert!(a < b && b < c);
    }
}
