//! Fast non-cryptographic hashing and hash-slot routing.
//!
//! TierBase shards keys across instances with Redis-style *hash slots*:
//! each key hashes to one of [`SLOT_COUNT`] slots and slot ranges are
//! assigned to data nodes. Within a node, the cache tier uses the same hash
//! to pick an internal shard. The hash is an FxHash-style multiply-xor
//! hash: low quality by cryptographic standards, extremely fast, and more
//! than uniform enough for slot routing (HashDoS is not a concern for an
//! internal store behind authenticated clients).

use std::hash::{BuildHasherDefault, Hasher};

/// Number of hash slots in the cluster keyspace (matches Redis Cluster).
pub const SLOT_COUNT: u16 = 16384;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher.
#[derive(Clone)]
pub struct FxHasher {
    state: u64,
}

impl Default for FxHasher {
    fn default() -> Self {
        // Nonzero start so all-zero inputs do not hash to zero.
        Self {
            state: 0x2545_f491_4f6c_dd1d,
        }
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: plain multiply-xor leaves the low bits weakly
        // mixed, and slot routing takes the value modulo a power of two.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
            // Mix in the length so "a" and "a\0" differ.
            self.add(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], usable with `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes a byte string with the workspace-standard fast hash.
#[inline]
pub fn fx_hash(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Maps a key to its cluster hash slot in `0..SLOT_COUNT`.
///
/// Honors Redis-style *hash tags*: if the key contains a non-empty
/// `{...}` segment, only the tagged substring is hashed, letting callers
/// force related keys onto the same slot (e.g. `user:{42}:profile` and
/// `user:{42}:settings`).
#[inline]
pub fn slot_for_key(key: &[u8]) -> u16 {
    let hashed = match hash_tag(key) {
        Some(tag) => fx_hash(tag),
        None => fx_hash(key),
    };
    (hashed % SLOT_COUNT as u64) as u16
}

fn hash_tag(key: &[u8]) -> Option<&[u8]> {
    let open = key.iter().position(|&b| b == b'{')?;
    let close = key[open + 1..].iter().position(|&b| b == b'}')?;
    if close == 0 {
        return None; // "{}" — empty tag hashes the whole key, like Redis.
    }
    Some(&key[open + 1..open + 1 + close])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic_and_length_sensitive() {
        assert_eq!(fx_hash(b"hello"), fx_hash(b"hello"));
        assert_ne!(fx_hash(b"a"), fx_hash(b"a\0"));
        assert_ne!(fx_hash(b""), fx_hash(b"\0"));
    }

    #[test]
    fn slots_in_range_and_spread() {
        let mut seen = HashSet::new();
        for i in 0..10_000u32 {
            let key = format!("key:{i}");
            let s = slot_for_key(key.as_bytes());
            assert!(s < SLOT_COUNT);
            seen.insert(s);
        }
        // 10k keys should hit a large fraction of 16384 slots.
        assert!(seen.len() > 6000, "poor slot spread: {}", seen.len());
    }

    #[test]
    fn hash_tags_pin_related_keys() {
        let a = slot_for_key(b"user:{42}:profile");
        let b = slot_for_key(b"user:{42}:settings");
        assert_eq!(a, b);
        let c = slot_for_key(b"user:{43}:profile");
        // Overwhelmingly likely to differ.
        assert_ne!(a, c);
    }

    #[test]
    fn empty_tag_hashes_whole_key() {
        assert_ne!(slot_for_key(b"a{}x"), slot_for_key(b"b{}x"));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut counts = vec![0u32; 16];
        for i in 0..160_000u32 {
            let key = format!("k{i}");
            counts[(fx_hash(key.as_bytes()) % 16) as usize] += 1;
        }
        let expect = 10_000.0;
        for &c in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.1, "bucket deviation {dev} too high: {counts:?}");
        }
    }
}
