//! Named fault points for crash/error injection in IO paths.
//!
//! Storage code threads calls to [`hit`] (plain sites) and [`write_all`]
//! (write sites, which can additionally tear the buffer) through every
//! place a crash or IO error could strike: WAL appends, SSTable and
//! manifest writes, fsyncs, renames. A torture harness arms one
//! injection at a time — *site X, Nth hit, fail like this* — runs a
//! workload, and verifies the durability contract after reopening.
//!
//! Fault semantics:
//!
//! * [`FaultMode::Error`]: the Nth hit returns [`Error::FaultInjected`]
//!   once, then the injection disarms — models a transient IO error the
//!   process survives.
//! * [`FaultMode::Crash`]: the Nth hit panics with a [`CrashPoint`]
//!   payload *before* the site's IO runs. From then on **every** fault
//!   point in the process returns an error, freezing the on-disk image
//!   at the crash instant — the in-process stand-in for `kill -9`. The
//!   harness catches the panic, drops the store, and reopens from disk.
//! * [`FaultMode::Torn`]: like `Crash`, but at a write site the first
//!   `keep` bytes of the buffer are written (and flushed) before the
//!   panic — a torn write, the hardest case for recovery code.
//!
//! Cost when disabled: a single relaxed atomic load per site. Nothing
//! else runs until [`arm`] or [`set_counting`] activates the registry,
//! so production paths pay one predictable-branch load — unmeasurable
//! next to the file IO each site guards.

use crate::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// How an armed fault point misbehaves when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Return [`Error::FaultInjected`] once, then disarm.
    Error,
    /// Panic with [`CrashPoint`] before the site's IO; all later hits
    /// error out (the disk image is frozen at the crash).
    Crash,
    /// Write the first `keep` bytes of the instrumented buffer, flush,
    /// then crash. At a non-write site this degrades to [`Crash`].
    Torn {
        /// Bytes of the buffer that make it to the file.
        keep: usize,
    },
}

/// Panic payload of an injected crash; harnesses downcast to tell an
/// injected kill from a genuine bug.
#[derive(Debug, Clone, Copy)]
pub struct CrashPoint {
    /// The fault site that fired.
    pub site: &'static str,
}

struct Injection {
    site: &'static str,
    /// 1-based hit number that fires.
    hit: u64,
    mode: FaultMode,
    /// Hits of `site` observed since arming.
    seen: u64,
    /// `Some`: only hits from this thread count (lets a unit test in a
    /// parallel test binary inject without tripping its neighbors).
    thread: Option<std::thread::ThreadId>,
}

#[derive(Default)]
struct Registry {
    injection: Option<Injection>,
    /// Per-site hit counters (kept while counting or armed).
    hits: HashMap<&'static str, u64>,
    counting: bool,
    /// Set once a crash fired; every later hit errors out.
    crashed: Option<&'static str>,
    /// True once the armed injection fired (any mode).
    fired: bool,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn recompute_active(r: &Registry) {
    ACTIVE.store(
        r.counting || r.injection.is_some() || r.crashed.is_some(),
        Ordering::Relaxed,
    );
}

enum Checked {
    Run,
    Torn { keep: usize },
}

fn check(site: &'static str) -> Result<Checked> {
    let mut r = registry().lock();
    if r.counting || r.injection.is_some() {
        *r.hits.entry(site).or_insert(0) += 1;
    }
    if let Some(at) = r.crashed {
        return Err(Error::FaultInjected(format!(
            "{site}: process already crashed at {at}"
        )));
    }
    let fire = match r.injection.as_mut() {
        Some(inj)
            if inj.site == site && inj.thread.is_none_or(|t| t == std::thread::current().id()) =>
        {
            inj.seen += 1;
            (inj.seen == inj.hit).then_some(inj.mode)
        }
        _ => None,
    };
    match fire {
        None => Ok(Checked::Run),
        Some(FaultMode::Error) => {
            r.fired = true;
            r.injection = None;
            recompute_active(&r);
            Err(Error::FaultInjected(format!("{site}: injected IO error")))
        }
        Some(FaultMode::Crash) => {
            r.fired = true;
            r.crashed = Some(site);
            drop(r);
            crash(site)
        }
        Some(FaultMode::Torn { keep }) => {
            r.fired = true;
            r.crashed = Some(site);
            Ok(Checked::Torn { keep })
        }
    }
}

/// Panics with a [`CrashPoint`] payload — the simulated kill.
fn crash(site: &'static str) -> ! {
    std::panic::panic_any(CrashPoint { site })
}

/// A plain fault point. No-op unless the registry is active.
#[inline]
pub fn hit(site: &'static str) -> Result<()> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    match check(site)? {
        Checked::Run => Ok(()),
        // A torn fault armed on a non-write site degrades to a crash.
        Checked::Torn { .. } => crash(site),
    }
}

/// A write-site fault point: writes `buf` through `w`, or — when a torn
/// fault fires — writes a prefix, flushes it, and crashes.
#[inline]
pub fn write_all<W: Write>(site: &'static str, w: &mut W, buf: &[u8]) -> Result<()> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return w.write_all(buf).map_err(Into::into);
    }
    match check(site)? {
        Checked::Run => w.write_all(buf).map_err(Into::into),
        Checked::Torn { keep } => {
            let keep = keep.min(buf.len());
            let _ = w.write_all(&buf[..keep]);
            let _ = w.flush();
            crash(site)
        }
    }
}

/// Arms one injection: the `hit`-th (1-based) hit of `site` fires `mode`,
/// from any thread. Replaces any previous injection and clears
/// crash/fired state.
pub fn arm(site: &'static str, hit: u64, mode: FaultMode) {
    arm_inner(site, hit, mode, None)
}

/// Like [`arm`], but the fault only fires on the calling thread — other
/// threads' hits neither fire nor advance the counter. For injections
/// inside parallel test binaries.
pub fn arm_scoped(site: &'static str, hit: u64, mode: FaultMode) {
    arm_inner(site, hit, mode, Some(std::thread::current().id()))
}

fn arm_inner(site: &'static str, hit: u64, mode: FaultMode, thread: Option<std::thread::ThreadId>) {
    let mut r = registry().lock();
    r.injection = Some(Injection {
        site,
        hit: hit.max(1),
        mode,
        seen: 0,
        thread,
    });
    r.crashed = None;
    r.fired = false;
    recompute_active(&r);
}

/// Clears the injection, crash state, and hit counters.
pub fn reset() {
    let mut r = registry().lock();
    *r = Registry::default();
    recompute_active(&r);
}

/// Enables per-site hit counting without any injection (coverage probes).
pub fn set_counting(on: bool) {
    let mut r = registry().lock();
    r.counting = on;
    if on {
        r.hits.clear();
    }
    recompute_active(&r);
}

/// Hits recorded for `site` since counting/arming started.
pub fn hit_count(site: &str) -> u64 {
    registry().lock().hits.get(site).copied().unwrap_or(0)
}

/// All recorded `(site, hits)` pairs, sorted by site name.
pub fn hit_counts() -> Vec<(&'static str, u64)> {
    let r = registry().lock();
    let mut out: Vec<_> = r.hits.iter().map(|(s, c)| (*s, *c)).collect();
    out.sort_unstable();
    out
}

/// Site of the simulated crash, if one fired.
pub fn crash_fired() -> Option<&'static str> {
    registry().lock().crashed
}

/// True once the armed injection has fired (any mode).
pub fn fault_fired() -> bool {
    registry().lock().fired
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests in this module serialize on
    // their own mutex so they cannot interleave armed state.
    fn serial() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
    }

    #[test]
    fn disabled_sites_are_transparent() {
        let _g = serial();
        reset();
        hit("t.plain").unwrap();
        let mut sink = Vec::new();
        write_all("t.write", &mut sink, b"payload").unwrap();
        assert_eq!(sink, b"payload");
        assert_eq!(hit_count("t.plain"), 0, "no counting unless enabled");
    }

    #[test]
    fn error_mode_fires_once_on_nth_hit() {
        let _g = serial();
        reset();
        arm("t.err", 3, FaultMode::Error);
        hit("t.err").unwrap();
        hit("t.err").unwrap();
        let e = hit("t.err").unwrap_err();
        assert!(matches!(e, Error::FaultInjected(_)), "{e}");
        assert!(fault_fired());
        // One-shot: later hits run clean.
        hit("t.err").unwrap();
        reset();
    }

    #[test]
    fn crash_mode_panics_then_freezes_every_site() {
        let _g = serial();
        reset();
        arm("t.crash", 1, FaultMode::Crash);
        let r = std::panic::catch_unwind(|| hit("t.crash"));
        let payload = r.expect_err("must panic");
        let point = payload
            .downcast_ref::<CrashPoint>()
            .expect("CrashPoint payload");
        assert_eq!(point.site, "t.crash");
        assert_eq!(crash_fired(), Some("t.crash"));
        // Post-crash: every site errors, freezing the disk image.
        assert!(hit("t.other").is_err());
        let mut sink = Vec::new();
        assert!(write_all("t.write", &mut sink, b"x").is_err());
        assert!(sink.is_empty());
        reset();
        hit("t.other").unwrap();
    }

    #[test]
    fn torn_mode_writes_prefix_then_crashes() {
        let _g = serial();
        reset();
        arm("t.torn", 1, FaultMode::Torn { keep: 4 });
        let mut sink = Vec::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            write_all("t.torn", &mut sink, b"abcdefgh")
        }));
        assert!(r.is_err(), "torn write must crash");
        assert_eq!(sink, b"abcd", "prefix flushed before the crash");
        reset();
    }

    #[test]
    fn counting_tracks_sites_without_injection() {
        let _g = serial();
        reset();
        set_counting(true);
        hit("t.a").unwrap();
        hit("t.a").unwrap();
        hit("t.b").unwrap();
        assert_eq!(hit_count("t.a"), 2);
        assert_eq!(hit_count("t.b"), 1);
        assert_eq!(hit_count("t.absent"), 0);
        let counts = hit_counts();
        assert!(counts.contains(&("t.a", 2)));
        reset();
        assert_eq!(hit_count("t.a"), 0);
    }

    #[test]
    fn scoped_injection_ignores_other_threads() {
        let _g = serial();
        reset();
        arm_scoped("t.scoped", 1, FaultMode::Error);
        std::thread::spawn(|| {
            for _ in 0..5 {
                hit("t.scoped").unwrap();
            }
        })
        .join()
        .unwrap();
        assert!(!fault_fired(), "other threads must not trip a scoped fault");
        assert!(hit("t.scoped").is_err(), "the arming thread still fires");
        reset();
    }

    #[test]
    fn wrong_site_never_fires() {
        let _g = serial();
        reset();
        arm("t.target", 1, FaultMode::Error);
        for _ in 0..10 {
            hit("t.bystander").unwrap();
        }
        assert!(!fault_fired());
        reset();
    }
}
