//! DRAM/PMem placement policy and hybrid capacity accounting (§4.3).
//!
//! TierBase keeps small, frequently-touched data — keys and index
//! entries — in DRAM and places large values in PMem, where the latency
//! premium is amortized over the value size. [`HybridCapacity`] accounts
//! for both media and computes the blended space cost the cost model
//! consumes (PMem's lower $/GB is exactly why TierBase-PMem drops SC by
//! ~60% in Figure 10).

use parking_lot::Mutex;
use tb_common::{Error, Result};

/// Storage medium for one piece of data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Medium {
    Dram,
    Pmem,
}

/// Decides where a cache entry's value lives.
pub trait PlacementPolicy: Send + Sync {
    /// Chooses the medium for a value of `value_len` bytes. Keys and
    /// index metadata are always DRAM-resident by design.
    fn place_value(&self, value_len: usize) -> Medium;
}

/// The paper's split policy: values at or above the threshold go to
/// PMem, small values stay in DRAM next to their keys.
#[derive(Debug, Clone, Copy)]
pub struct SplitPlacement {
    pub value_threshold: usize,
}

impl Default for SplitPlacement {
    fn default() -> Self {
        // Small enough that typical serialized records (100–1000 B) land
        // in PMem while tiny counters stay in DRAM.
        Self {
            value_threshold: 64,
        }
    }
}

impl PlacementPolicy for SplitPlacement {
    fn place_value(&self, value_len: usize) -> Medium {
        if value_len >= self.value_threshold {
            Medium::Pmem
        } else {
            Medium::Dram
        }
    }
}

/// Pin-everything-to-DRAM policy (TierBase without PMem).
#[derive(Debug, Clone, Copy, Default)]
pub struct DramOnly;

impl PlacementPolicy for DramOnly {
    fn place_value(&self, _value_len: usize) -> Medium {
        Medium::Dram
    }
}

#[derive(Debug, Default)]
struct Usage {
    dram: u64,
    pmem: u64,
}

/// Tracks bytes resident in each medium against capacities and prices.
pub struct HybridCapacity {
    usage: Mutex<Usage>,
    pub dram_capacity: u64,
    pub pmem_capacity: u64,
    /// Relative cost per byte of PMem vs. DRAM (< 1; Optane street price
    /// ran ~0.3–0.5× DRAM per GB).
    pub pmem_cost_factor: f64,
}

impl HybridCapacity {
    pub fn new(dram_capacity: u64, pmem_capacity: u64, pmem_cost_factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&pmem_cost_factor));
        Self {
            usage: Mutex::new(Usage::default()),
            dram_capacity,
            pmem_capacity,
            pmem_cost_factor,
        }
    }

    /// Reserves `len` bytes on `medium`; fails when the medium is full.
    pub fn alloc(&self, medium: Medium, len: usize) -> Result<()> {
        let mut u = self.usage.lock();
        match medium {
            Medium::Dram => {
                if u.dram + len as u64 > self.dram_capacity {
                    return Err(Error::backpressure("DRAM capacity exhausted"));
                }
                u.dram += len as u64;
            }
            Medium::Pmem => {
                if u.pmem + len as u64 > self.pmem_capacity {
                    return Err(Error::backpressure("PMem capacity exhausted"));
                }
                u.pmem += len as u64;
            }
        }
        Ok(())
    }

    /// Releases `len` bytes on `medium`.
    pub fn free(&self, medium: Medium, len: usize) {
        let mut u = self.usage.lock();
        match medium {
            Medium::Dram => u.dram = u.dram.saturating_sub(len as u64),
            Medium::Pmem => u.pmem = u.pmem.saturating_sub(len as u64),
        }
    }

    pub fn dram_used(&self) -> u64 {
        self.usage.lock().dram
    }

    pub fn pmem_used(&self) -> u64 {
        self.usage.lock().pmem
    }

    /// Resident bytes normalized to DRAM-cost-equivalents: what the
    /// cost model should charge. PMem bytes count at the discounted
    /// factor, which is how the PMem configuration lowers `SC`.
    pub fn cost_equivalent_bytes(&self) -> u64 {
        let u = self.usage.lock();
        u.dram + (u.pmem as f64 * self.pmem_cost_factor) as u64
    }

    /// Total bytes resident across both media.
    pub fn total_used(&self) -> u64 {
        let u = self.usage.lock();
        u.dram + u.pmem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_policy_routes_by_size() {
        let p = SplitPlacement {
            value_threshold: 100,
        };
        assert_eq!(p.place_value(10), Medium::Dram);
        assert_eq!(p.place_value(99), Medium::Dram);
        assert_eq!(p.place_value(100), Medium::Pmem);
        assert_eq!(p.place_value(10_000), Medium::Pmem);
    }

    #[test]
    fn dram_only_never_uses_pmem() {
        assert_eq!(DramOnly.place_value(1 << 20), Medium::Dram);
    }

    #[test]
    fn capacity_enforced_per_medium() {
        let c = HybridCapacity::new(100, 1000, 0.4);
        c.alloc(Medium::Dram, 80).unwrap();
        assert!(c.alloc(Medium::Dram, 30).is_err());
        c.alloc(Medium::Pmem, 900).unwrap();
        assert!(c.alloc(Medium::Pmem, 200).is_err());
        assert_eq!(c.dram_used(), 80);
        assert_eq!(c.pmem_used(), 900);
    }

    #[test]
    fn free_releases() {
        let c = HybridCapacity::new(100, 100, 0.4);
        c.alloc(Medium::Dram, 100).unwrap();
        c.free(Medium::Dram, 60);
        c.alloc(Medium::Dram, 50).unwrap();
        assert_eq!(c.dram_used(), 90);
    }

    #[test]
    fn cost_equivalent_discounts_pmem() {
        let c = HybridCapacity::new(1000, 1000, 0.4);
        c.alloc(Medium::Dram, 100).unwrap();
        c.alloc(Medium::Pmem, 500).unwrap();
        // 100 + 0.4*500 = 300 cost-equivalent bytes vs 600 total.
        assert_eq!(c.cost_equivalent_bytes(), 300);
        assert_eq!(c.total_used(), 600);
    }

    #[test]
    fn over_free_saturates() {
        let c = HybridCapacity::new(100, 100, 0.5);
        c.alloc(Medium::Pmem, 10).unwrap();
        c.free(Medium::Pmem, 50);
        assert_eq!(c.pmem_used(), 0);
    }
}
