//! File-backed byte-addressable persistent-memory device with a latency
//! model.
//!
//! The device exposes `read_at`/`write_at`/`persist` like a DAX-mapped
//! PMem region. Every access pays a modeled latency (busy-wait, because
//! real PMem stalls the CPU rather than yielding); setting the model to
//! [`LatencyModel::none`] disables the simulation for unit tests.

use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::{Duration, Instant};
use tb_common::{Error, Result};

/// Access-latency model in nanoseconds.
///
/// Defaults follow published Optane App-Direct measurements relative to
/// DRAM (~80 ns loads): ~3× read, ~4× write base latency plus a modest
/// per-256-byte streaming cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed cost per read call.
    pub read_base_ns: u64,
    /// Fixed cost per write call.
    pub write_base_ns: u64,
    /// Additional cost per 256 bytes transferred.
    pub per_256b_ns: u64,
    /// Cost of a persist (flush + fence).
    pub persist_ns: u64,
}

impl LatencyModel {
    /// Optane-like defaults.
    pub fn optane() -> Self {
        Self {
            read_base_ns: 250,
            write_base_ns: 350,
            per_256b_ns: 40,
            persist_ns: 500,
        }
    }

    /// No simulated latency (unit tests).
    pub fn none() -> Self {
        Self {
            read_base_ns: 0,
            write_base_ns: 0,
            per_256b_ns: 0,
            persist_ns: 0,
        }
    }

    /// Public read-stall hook (PMem-resident cache values).
    pub fn stall_read(&self, len: usize) {
        self.stall(self.read_base_ns, len);
    }

    /// Public write-stall hook.
    pub fn stall_write(&self, len: usize) {
        self.stall(self.write_base_ns, len);
    }

    fn stall(&self, base: u64, len: usize) {
        let total = base + self.per_256b_ns * ((len as u64).div_ceil(256));
        if total == 0 {
            return;
        }
        // Busy-wait: PMem access stalls the core, it does not yield.
        let deadline = Instant::now() + Duration::from_nanos(total);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

/// A fixed-size persistent region.
///
/// Contents live in an in-memory buffer mirrored to a backing file on
/// [`PmemDevice::persist`]; `open` reloads the file, so persisted data
/// survives drop/reopen (the crash-recovery model used by tests).
pub struct PmemDevice {
    buf: RwLock<Vec<u8>>,
    file: RwLock<File>,
    latency: LatencyModel,
    size: usize,
    /// Dirty byte ranges since the last persist (bounded; overflowing
    /// ranges merge into their nearest neighbor).
    dirty: parking_lot::Mutex<Vec<(usize, usize)>>,
}

/// Cap on tracked dirty ranges before merging.
const DIRTY_RANGES_CAP: usize = 8;

fn mark_dirty(ranges: &mut Vec<(usize, usize)>, start: usize, end: usize) {
    // Merge with any overlapping/adjacent range.
    for r in ranges.iter_mut() {
        if start <= r.1 && end >= r.0 {
            r.0 = r.0.min(start);
            r.1 = r.1.max(end);
            return;
        }
    }
    ranges.push((start, end));
    if ranges.len() > DIRTY_RANGES_CAP {
        // Merge the two closest ranges.
        ranges.sort_unstable();
        let mut best = 0;
        let mut best_gap = usize::MAX;
        for i in 0..ranges.len() - 1 {
            let gap = ranges[i + 1].0.saturating_sub(ranges[i].1);
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let (_, e2) = ranges.remove(best + 1);
        ranges[best].1 = ranges[best].1.max(e2);
    }
}

impl PmemDevice {
    /// Creates (or truncates) a device of `size` bytes at `path`.
    pub fn create(path: &Path, size: usize, latency: LatencyModel) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let zeros = vec![0u8; size];
        file.write_all(&zeros)?;
        file.flush()?;
        Ok(Self {
            buf: RwLock::new(zeros),
            file: RwLock::new(file),
            latency,
            size,
            dirty: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Opens an existing device, reloading persisted contents.
    pub fn open(path: &Path, latency: LatencyModel) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let size = buf.len();
        Ok(Self {
            buf: RwLock::new(buf),
            file: RwLock::new(file),
            latency,
            size,
            dirty: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Device capacity in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Reads `out.len()` bytes at `offset`.
    pub fn read_at(&self, offset: usize, out: &mut [u8]) -> Result<()> {
        if offset + out.len() > self.size {
            return Err(Error::InvalidArgument(format!(
                "read [{offset}, {}) past device end {}",
                offset + out.len(),
                self.size
            )));
        }
        self.latency.stall(self.latency.read_base_ns, out.len());
        out.copy_from_slice(&self.buf.read()[offset..offset + out.len()]);
        Ok(())
    }

    /// Writes `data` at `offset` (visible immediately, durable after
    /// [`Self::persist`]).
    pub fn write_at(&self, offset: usize, data: &[u8]) -> Result<()> {
        if offset + data.len() > self.size {
            return Err(Error::InvalidArgument(format!(
                "write [{offset}, {}) past device end {}",
                offset + data.len(),
                self.size
            )));
        }
        self.latency.stall(self.latency.write_base_ns, data.len());
        self.buf.write()[offset..offset + data.len()].copy_from_slice(data);
        mark_dirty(&mut self.dirty.lock(), offset, offset + data.len());
        Ok(())
    }

    /// Flush + fence: makes all prior writes durable. Only the dirty
    /// range is written back (a real PMem flush drains store buffers,
    /// not the whole DIMM).
    pub fn persist(&self) -> Result<()> {
        self.latency.stall(self.latency.persist_ns, 0);
        let ranges = std::mem::take(&mut *self.dirty.lock());
        if ranges.is_empty() {
            return Ok(());
        }
        let buf = self.buf.read();
        let mut file = self.file.write();
        for (start, end) in ranges {
            file.seek(SeekFrom::Start(start as u64))?;
            file.write_all(&buf[start..end])?;
        }
        file.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tb-pmem-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn write_read_roundtrip() {
        let p = tmp("rw");
        let d = PmemDevice::create(&p, 4096, LatencyModel::none()).unwrap();
        d.write_at(100, b"persistent!").unwrap();
        let mut out = vec![0u8; 11];
        d.read_at(100, &mut out).unwrap();
        assert_eq!(&out, b"persistent!");
    }

    #[test]
    fn bounds_are_enforced() {
        let p = tmp("bounds");
        let d = PmemDevice::create(&p, 128, LatencyModel::none()).unwrap();
        assert!(d.write_at(120, b"0123456789").is_err());
        let mut out = vec![0u8; 16];
        assert!(d.read_at(120, &mut out).is_err());
        // Boundary-exact access is fine.
        d.write_at(120, b"01234567").unwrap();
    }

    #[test]
    fn persisted_data_survives_reopen() {
        let p = tmp("reopen");
        {
            let d = PmemDevice::create(&p, 1024, LatencyModel::none()).unwrap();
            d.write_at(0, b"durable-bytes").unwrap();
            d.persist().unwrap();
        }
        let d = PmemDevice::open(&p, LatencyModel::none()).unwrap();
        assert_eq!(d.size(), 1024);
        let mut out = vec![0u8; 13];
        d.read_at(0, &mut out).unwrap();
        assert_eq!(&out, b"durable-bytes");
    }

    #[test]
    fn unpersisted_data_lost_on_reopen() {
        let p = tmp("lost");
        {
            let d = PmemDevice::create(&p, 64, LatencyModel::none()).unwrap();
            d.persist().unwrap();
            d.write_at(0, b"volatile").unwrap();
            // no persist
        }
        let d = PmemDevice::open(&p, LatencyModel::none()).unwrap();
        let mut out = vec![0u8; 8];
        d.read_at(0, &mut out).unwrap();
        assert_eq!(out, vec![0u8; 8], "unflushed write must not be durable");
    }

    #[test]
    fn latency_model_slows_access() {
        let p = tmp("latency");
        let slow = LatencyModel {
            read_base_ns: 200_000, // exaggerated for measurability
            write_base_ns: 200_000,
            per_256b_ns: 0,
            persist_ns: 0,
        };
        let d = PmemDevice::create(&p, 1024, slow).unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            d.write_at(0, b"x").unwrap();
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(2),
            "latency model not applied: {:?}",
            t0.elapsed()
        );
    }
}
