//! Simulated persistent memory (paper §4.3).
//!
//! Real Optane DCPMM is byte-addressable, persistent, denser and cheaper
//! than DRAM, and slower — reads ~2–3× DRAM latency, writes ~4–5×.
//! This crate reproduces that profile in software:
//!
//! * [`device::PmemDevice`] — a file-backed byte-addressable region with
//!   a configurable latency model. Data written and flushed survives
//!   process restarts (the file is the persistence domain).
//! * [`ring::PersistentRingBuffer`] — the WAL-PMem design: log records
//!   append to a persistent ring at memory-like speed and are
//!   batch-drained to slower bulk storage, decoupling commit latency
//!   from disk IOPS.
//! * [`placement`] — the DRAM/PMem split: keys and indexes stay in
//!   DRAM, large values go to PMem, and writes are batched (assembled in
//!   DRAM, bulk-copied) to hide PMem write latency.

pub mod device;
pub mod placement;
pub mod ring;

pub use device::{LatencyModel, PmemDevice};
pub use placement::{DramOnly, HybridCapacity, Medium, PlacementPolicy, SplitPlacement};
pub use ring::{PersistentRingBuffer, RingConfig};
