//! Persistent ring buffer — the WAL-PMem design (§4.3).
//!
//! WAL records append to a fixed-size ring on the PMem device and are
//! made durable per transaction (one `persist` instead of a disk fsync,
//! beating the IOPS bottleneck). A background consumer batch-drains the
//! ring to bulk storage; producers see backpressure when the consumer
//! falls a full ring behind.
//!
//! Layout: a 24-byte header (head, tail, header CRC) followed by the
//! data area. Records are framed `len u32 | crc u32 | payload` and may
//! wrap around the data area end. Recovery replays `head..tail` and
//! truncates at the first torn record.

use crate::device::PmemDevice;
use parking_lot::Mutex;
use std::sync::Arc;
use tb_common::{crc32, Error, Result};

const HEADER_SIZE: usize = 24;
const FRAME_HEADER: usize = 8;

/// Ring construction options.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Persist to the device on every append (per-transaction WAL
    /// semantics). Turn off to batch persists at a higher layer.
    pub persist_each_append: bool,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            persist_each_append: true,
        }
    }
}

struct State {
    /// Logical byte offsets; physical = logical % data_len. Monotonic.
    head: u64,
    tail: u64,
}

/// A crash-safe FIFO of byte records on a [`PmemDevice`].
pub struct PersistentRingBuffer {
    device: Arc<PmemDevice>,
    state: Mutex<State>,
    data_len: usize,
    config: RingConfig,
}

impl PersistentRingBuffer {
    /// Formats a fresh ring covering the whole device.
    pub fn create(device: Arc<PmemDevice>, config: RingConfig) -> Result<Self> {
        if device.size() <= HEADER_SIZE + FRAME_HEADER {
            return Err(Error::InvalidArgument("device too small for ring".into()));
        }
        let ring = Self {
            data_len: device.size() - HEADER_SIZE,
            device,
            state: Mutex::new(State { head: 0, tail: 0 }),
            config,
        };
        ring.persist_header(0, 0)?;
        // Formatting must be durable even in batched-persist mode.
        ring.device.persist()?;
        Ok(ring)
    }

    /// Reopens a ring from a persisted device, validating the header and
    /// truncating at the first torn record (crash recovery).
    pub fn recover(device: Arc<PmemDevice>, config: RingConfig) -> Result<Self> {
        let mut hdr = [0u8; HEADER_SIZE];
        device.read_at(0, &mut hdr)?;
        let head = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
        let tail = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(hdr[16..20].try_into().unwrap());
        if crc32(&hdr[0..16]) != stored_crc {
            return Err(Error::Corruption("ring header crc mismatch".into()));
        }
        let ring = Self {
            data_len: device.size() - HEADER_SIZE,
            device,
            state: Mutex::new(State { head, tail }),
            config,
        };
        // Walk records; stop at the first invalid frame (torn tail).
        let mut pos = head;
        while pos < tail {
            match ring.read_frame(pos) {
                Ok(payload) => pos += (FRAME_HEADER + payload.len()) as u64,
                Err(_) => break,
            }
        }
        ring.state.lock().tail = pos;
        ring.persist_header(head, pos)?;
        Ok(ring)
    }

    /// Bytes of records currently enqueued.
    pub fn used(&self) -> usize {
        let s = self.state.lock();
        (s.tail - s.head) as usize
    }

    /// Free space in bytes.
    pub fn free(&self) -> usize {
        self.data_len - self.used()
    }

    /// True when no records are queued.
    pub fn is_empty(&self) -> bool {
        self.used() == 0
    }

    /// Appends one record. Errors with [`Error::Backpressure`] when the
    /// consumer is a full ring behind.
    pub fn append(&self, payload: &[u8]) -> Result<()> {
        let frame_len = FRAME_HEADER + payload.len();
        if frame_len > self.data_len {
            return Err(Error::InvalidArgument(format!(
                "record of {} bytes exceeds ring capacity {}",
                payload.len(),
                self.data_len
            )));
        }
        let (head, tail) = {
            let s = self.state.lock();
            (s.head, s.tail)
        };
        if (tail - head) as usize + frame_len > self.data_len {
            return Err(Error::backpressure(format!(
                "ring full: {} used of {}",
                (tail - head),
                self.data_len
            )));
        }
        let mut frame = Vec::with_capacity(frame_len);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.write_wrapped(tail, &frame)?;
        {
            let mut s = self.state.lock();
            s.tail = tail + frame_len as u64;
        }
        self.persist_header(head, tail + frame_len as u64)?;
        if self.config.persist_each_append {
            self.device.persist()?;
        }
        Ok(())
    }

    /// Removes and returns up to `max_records` records from the front
    /// (the batch-move-to-cloud-storage path).
    pub fn drain_batch(&self, max_records: usize) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        let (mut head, tail) = {
            let s = self.state.lock();
            (s.head, s.tail)
        };
        while out.len() < max_records && head < tail {
            let payload = self.read_frame(head)?;
            head += (FRAME_HEADER + payload.len()) as u64;
            out.push(payload);
        }
        {
            let mut s = self.state.lock();
            s.head = head;
        }
        self.persist_header(head, tail)?;
        Ok(out)
    }

    /// Reads every queued record without consuming (recovery replay).
    pub fn peek_all(&self) -> Result<Vec<Vec<u8>>> {
        let (mut pos, tail) = {
            let s = self.state.lock();
            (s.head, s.tail)
        };
        let mut out = Vec::new();
        while pos < tail {
            let payload = self.read_frame(pos)?;
            pos += (FRAME_HEADER + payload.len()) as u64;
            out.push(payload);
        }
        Ok(out)
    }

    fn read_frame(&self, logical: u64) -> Result<Vec<u8>> {
        let mut hdr = [0u8; FRAME_HEADER];
        self.read_wrapped(logical, &mut hdr)?;
        let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
        if FRAME_HEADER + len > self.data_len {
            return Err(Error::Corruption("frame length exceeds ring".into()));
        }
        let mut payload = vec![0u8; len];
        self.read_wrapped(logical + FRAME_HEADER as u64, &mut payload)?;
        if crc32(&payload) != stored_crc {
            return Err(Error::Corruption("ring frame crc mismatch".into()));
        }
        Ok(payload)
    }

    fn write_wrapped(&self, logical: u64, data: &[u8]) -> Result<()> {
        let phys = (logical % self.data_len as u64) as usize;
        let first = data.len().min(self.data_len - phys);
        self.device.write_at(HEADER_SIZE + phys, &data[..first])?;
        if first < data.len() {
            self.device.write_at(HEADER_SIZE, &data[first..])?;
        }
        Ok(())
    }

    fn read_wrapped(&self, logical: u64, out: &mut [u8]) -> Result<()> {
        let phys = (logical % self.data_len as u64) as usize;
        let first = out.len().min(self.data_len - phys);
        self.device.read_at(HEADER_SIZE + phys, &mut out[..first])?;
        if first < out.len() {
            let rest = out.len() - first;
            let mut tail = vec![0u8; rest];
            self.device.read_at(HEADER_SIZE, &mut tail)?;
            out[first..].copy_from_slice(&tail);
        }
        Ok(())
    }

    fn persist_header(&self, head: u64, tail: u64) -> Result<()> {
        let mut hdr = [0u8; HEADER_SIZE];
        hdr[0..8].copy_from_slice(&head.to_le_bytes());
        hdr[8..16].copy_from_slice(&tail.to_le_bytes());
        let crc = crc32(&hdr[0..16]);
        hdr[16..20].copy_from_slice(&crc.to_le_bytes());
        self.device.write_at(0, &hdr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::LatencyModel;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tb-ring-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn new_ring(name: &str, size: usize) -> (PersistentRingBuffer, std::path::PathBuf) {
        let p = tmp(name);
        let d = Arc::new(PmemDevice::create(&p, size, LatencyModel::none()).unwrap());
        (
            PersistentRingBuffer::create(d, RingConfig::default()).unwrap(),
            p,
        )
    }

    #[test]
    fn fifo_order() {
        let (ring, _) = new_ring("fifo", 4096);
        for i in 0..10 {
            ring.append(format!("record-{i}").as_bytes()).unwrap();
        }
        let batch = ring.drain_batch(4).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0], b"record-0");
        assert_eq!(batch[3], b"record-3");
        let rest = ring.drain_batch(100).unwrap();
        assert_eq!(rest.len(), 6);
        assert!(ring.is_empty());
    }

    #[test]
    fn wraparound_preserves_records() {
        let (ring, _) = new_ring("wrap", 256); // tiny: forces wrapping
        for round in 0..50 {
            let rec = format!("wraparound-payload-{round:04}");
            ring.append(rec.as_bytes()).unwrap();
            let got = ring.drain_batch(1).unwrap();
            assert_eq!(got[0], rec.as_bytes());
        }
    }

    #[test]
    fn backpressure_when_full() {
        let (ring, _) = new_ring("full", 128);
        let rec = vec![7u8; 40];
        ring.append(&rec).unwrap();
        ring.append(&rec).unwrap();
        let err = ring.append(&rec).unwrap_err();
        assert!(matches!(err, Error::Backpressure { .. }), "{err}");
        // Draining frees space.
        ring.drain_batch(1).unwrap();
        ring.append(&rec).unwrap();
    }

    #[test]
    fn oversized_record_rejected() {
        let (ring, _) = new_ring("big", 128);
        assert!(matches!(
            ring.append(&vec![0u8; 1024]),
            Err(Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn recovery_replays_pending_records() {
        let p = tmp("recover");
        {
            let d = Arc::new(PmemDevice::create(&p, 1024, LatencyModel::none()).unwrap());
            let ring = PersistentRingBuffer::create(d, RingConfig::default()).unwrap();
            ring.append(b"committed-1").unwrap();
            ring.append(b"committed-2").unwrap();
            // Process "crashes" here — drop without drain.
        }
        let d = Arc::new(PmemDevice::open(&p, LatencyModel::none()).unwrap());
        let ring = PersistentRingBuffer::recover(d, RingConfig::default()).unwrap();
        let recs = ring.peek_all().unwrap();
        assert_eq!(recs, vec![b"committed-1".to_vec(), b"committed-2".to_vec()]);
    }

    #[test]
    fn recovery_truncates_torn_tail() {
        let p = tmp("torn");
        {
            let d = Arc::new(PmemDevice::create(&p, 1024, LatencyModel::none()).unwrap());
            let ring = PersistentRingBuffer::create(d.clone(), RingConfig::default()).unwrap();
            ring.append(b"good-record").unwrap();
            ring.append(b"torn-record").unwrap();
            // Corrupt the second record's payload bytes on the device,
            // then persist — simulating a torn write.
            let second_frame_off = HEADER_SIZE + FRAME_HEADER + 11 + FRAME_HEADER;
            d.write_at(second_frame_off + 2, b"XX").unwrap();
            d.persist().unwrap();
        }
        let d = Arc::new(PmemDevice::open(&p, LatencyModel::none()).unwrap());
        let ring = PersistentRingBuffer::recover(d, RingConfig::default()).unwrap();
        let recs = ring.peek_all().unwrap();
        assert_eq!(
            recs,
            vec![b"good-record".to_vec()],
            "torn tail must be dropped"
        );
    }

    #[test]
    fn unpersisted_appends_lost_without_sync_mode() {
        let p = tmp("nosync");
        {
            let d = Arc::new(PmemDevice::create(&p, 1024, LatencyModel::none()).unwrap());
            let ring = PersistentRingBuffer::create(
                d,
                RingConfig {
                    persist_each_append: false,
                },
            )
            .unwrap();
            ring.append(b"maybe-lost").unwrap();
            // No persist before "crash".
        }
        let d = Arc::new(PmemDevice::open(&p, LatencyModel::none()).unwrap());
        let ring = PersistentRingBuffer::recover(d, RingConfig::default()).unwrap();
        // Header said empty at last persist (create), so nothing replays.
        assert!(ring.peek_all().unwrap().is_empty());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (ring, _) = new_ring("empty", 256);
        ring.append(b"").unwrap();
        assert_eq!(ring.drain_batch(1).unwrap(), vec![Vec::<u8>::new()]);
    }
}
