//! Unified telemetry for the TierBase workspace.
//!
//! One process-global [`Registry`] of named instruments — monotonic
//! [`Counter`]s, point-in-time [`Gauge`]s, and log-bucketed latency
//! [`Histo`]grams (the concurrent [`tb_common::Histogram`] underneath,
//! with p50/p95/p99/p999 extraction) — plus one process-global
//! [`Tracer`]: a fixed-size ring of timestamped begin/end events with a
//! configurable slow-op threshold that captures the full event timeline
//! of an op that crossed it.
//!
//! Every layer records into the same registry, so a single
//! [`Registry::snapshot`] call covers the whole system — front-end
//! queue waits, LSM flush/compaction/WAL-sync durations, cluster
//! fan-out latencies, and the per-layer counter structs that register
//! themselves as snapshot *sources*. The snapshot renders as
//! Prometheus-style text exposition ([`MetricsSnapshot::to_prometheus`])
//! or serde-free JSON ([`MetricsSnapshot::to_json`]).
//!
//! # Cost discipline
//!
//! The same contract `tb_common::fault` proved out: **the disabled path
//! costs one relaxed atomic load per site.** [`start`] returns `None`
//! without touching a clock when telemetry is off, recording into a
//! disabled instrument is a single load-and-branch, and [`Tracer::span`]
//! returns `None` before allocating an op id. Telemetry defaults to
//! *on*; [`set_enabled`] flips the whole subsystem with one store.
//!
//! # Instrument handles
//!
//! Hot paths cache instrument handles in per-site statics via the
//! [`counter!`], [`gauge!`], and [`histo!`] macros — the registry mutex
//! is paid once per site per process, after which a record is a couple
//! of relaxed atomic ops on the shared instrument.

pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{
    validate_exposition, Counter, Gauge, Histo, HistogramSnapshot, MetricsSnapshot, Registry,
    SnapshotBuilder, SourceGuard,
};
pub use trace::{ActiveSpan, EventKind, SlowOp, TraceEvent, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide telemetry gate. Defaults to enabled.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry is recording. One relaxed load — the only cost a
/// disabled site pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the whole telemetry subsystem on or off. Instruments keep
/// their accumulated state across a disable window; recording simply
/// stops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Starts timing a site: `Some(now)` when telemetry is on, `None` (no
/// clock read) when off. Pair with [`Histo::record_since`], which
/// no-ops on `None` — so a disabled timed site costs exactly this one
/// relaxed load.
#[inline]
pub fn start() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// The process-global metrics registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// The process-global event tracer.
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::new)
}

/// A per-call-site cached [`Counter`] handle from the global registry.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Counter>> =
            std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// A per-call-site cached [`Gauge`] handle from the global registry.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Gauge>> =
            std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// A per-call-site cached [`Histo`] handle from the global registry.
#[macro_export]
macro_rules! histo {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Histo>> =
            std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}
