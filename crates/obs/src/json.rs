//! A minimal serde-free JSON value tree: enough writer to render
//! metrics snapshots and bench reports, enough parser to validate them
//! in tests and CI without external tooling.
//!
//! Numbers are stored as `f64`; integral values within the `f64` exact
//! range render without a fractional part, so counters round-trip as
//! the integers they are.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (a report's fields
/// read in the order they were added).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Value)>) -> Self {
        Value::Obj(pairs.into_iter().collect())
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation (the committed-artifact form:
    /// line-oriented diffs across PRs stay readable).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Renders compact JSON (`value.to_string()` comes with it).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict enough to catch malformed reports
/// (trailing garbage, unbalanced brackets, bad escapes); duplicate
/// object keys are accepted, last wins on [`Value::get`]'s first-match
/// — callers that care use [`Value::Obj`] directly.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                        // Surrogate pairs are out of scope for metric
                        // names; map them to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: take the whole scalar.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at offset {pos}"))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// A BTreeMap rendered as a sorted JSON object of numbers — the shape
/// counter/gauge maps take in snapshots and reports.
pub fn num_map<K: ToString, V: Into<f64> + Copy>(map: &BTreeMap<K, V>) -> Value {
    Value::Obj(
        map.iter()
            .map(|(k, v)| (k.to_string(), Value::Num((*v).into())))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let v = Value::obj([
            ("name".to_string(), Value::Str("bench \"x\"\n".into())),
            ("n".to_string(), Value::Num(42.0)),
            ("qps".to_string(), Value::Num(1234.5)),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "rows".to_string(),
                Value::Arr(vec![Value::Num(-1.0), Value::Num(0.25)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = v.to_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Num(3.5).to_string(), "3.5");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "12 34",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad}");
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": {"b": [1, "two"]}, "c": 7}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(7.0));
        let arr = v
            .get("a")
            .and_then(|a| a.get("b"))
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(arr[1].as_str(), Some("two"));
    }
}
