//! Span-style event tracing with slow-op timeline capture.
//!
//! A [`Tracer`] keeps a fixed-size ring of timestamped events. Opening
//! a span ([`Tracer::span`]) writes a `Begin` event and returns an RAII
//! [`ActiveSpan`]; dropping it writes the matching `End`. Point events
//! ([`Tracer::event`]) mark instants — a failover, a regroup. Writers
//! claim ring slots wait-free with one `fetch_add`; slot contents sit
//! behind tiny per-slot mutexes that only collide when a writer laps a
//! concurrent reader on the same slot, never writer-vs-writer.
//!
//! When a span finishes over the slow threshold, the tracer captures
//! every ring event carrying the same op id — the full timeline of the
//! slow op, including events recorded by other threads it fanned out to
//! (pass the op id via [`ActiveSpan::op`] / [`Tracer::event_for`]) —
//! into a bounded slow-op log readable via [`Tracer::slow_ops`].
//!
//! Like the metrics side, a disabled tracer costs one relaxed load per
//! site: [`Tracer::span`] returns `None` before reading a clock or
//! claiming an op id.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Ring capacity. Power of two so slot selection is a mask.
const RING_SLOTS: usize = 4096;

/// Bound on the retained slow-op log (oldest evicted first).
const SLOW_LOG_CAP: usize = 64;

/// Default slow-op threshold: 100ms.
const DEFAULT_SLOW_THRESHOLD_US: u64 = 100_000;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed; `dur_us` holds its duration.
    End,
    /// An instantaneous marker.
    Point,
}

/// One entry in the trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Op id tying this event to the span(s) of one logical operation.
    pub op: u64,
    /// Where it happened, e.g. `"lsm.read_pool.fetch"`.
    pub site: &'static str,
    pub kind: EventKind,
    /// Microseconds since the tracer's epoch.
    pub at_us: u64,
    /// For `End` events, the span duration in microseconds.
    pub dur_us: u64,
    /// Site-defined payload (a node id, a batch size, ...).
    pub detail: u64,
}

/// A slow operation captured in full: the closing span plus every ring
/// event that carried its op id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    pub site: &'static str,
    pub op: u64,
    pub dur_us: u64,
    /// Same-op events still in the ring at capture time, seq-ordered.
    pub timeline: Vec<TraceEvent>,
}

/// Fixed-size event ring + slow-op log. Usually accessed through
/// [`crate::tracer`]; independently constructible for tests.
pub struct Tracer {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    seq: AtomicU64,
    next_op: AtomicU64,
    epoch: Instant,
    slow_threshold_us: AtomicU64,
    slow: Mutex<std::collections::VecDeque<SlowOp>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Self {
            slots: (0..RING_SLOTS).map(|_| Mutex::new(None)).collect(),
            seq: AtomicU64::new(0),
            next_op: AtomicU64::new(1),
            epoch: Instant::now(),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            slow: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Spans ending at or over `us` microseconds capture their timeline
    /// into the slow-op log.
    pub fn set_slow_threshold(&self, us: u64) {
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, event: TraceEvent) {
        let slot = (event.seq as usize) & (RING_SLOTS - 1);
        *self.slots[slot].lock() = Some(event);
    }

    /// Opens a span at `site` under a fresh op id. `None` (one relaxed
    /// load, no clock read) when telemetry is disabled.
    #[inline]
    pub fn span(&self, site: &'static str) -> Option<ActiveSpan<'_>> {
        if !crate::enabled() {
            return None;
        }
        let op = self.next_op.fetch_add(1, Ordering::Relaxed);
        Some(self.span_for(site, op))
    }

    /// Opens a span under an existing op id — a sub-stage of an op
    /// already in flight (e.g. the pool fetch inside a batch read), so
    /// slow-op capture stitches the stages together.
    pub fn span_for(&self, site: &'static str, op: u64) -> ActiveSpan<'_> {
        let start = Instant::now();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            seq,
            op,
            site,
            kind: EventKind::Begin,
            at_us: self.now_us(),
            dur_us: 0,
            detail: 0,
        });
        ActiveSpan {
            tracer: self,
            site,
            op,
            start,
            detail: 0,
        }
    }

    /// Records a point event under a fresh op id. One relaxed load when
    /// disabled.
    #[inline]
    pub fn event(&self, site: &'static str, detail: u64) {
        if !crate::enabled() {
            return;
        }
        let op = self.next_op.fetch_add(1, Ordering::Relaxed);
        self.event_for(site, op, detail);
    }

    /// Records a point event under an existing op id.
    pub fn event_for(&self, site: &'static str, op: u64, detail: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            seq,
            op,
            site,
            kind: EventKind::Point,
            at_us: self.now_us(),
            dur_us: 0,
            detail,
        });
    }

    fn finish_span(&self, site: &'static str, op: u64, start: Instant, detail: u64) {
        let dur_us = start.elapsed().as_micros() as u64;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            seq,
            op,
            site,
            kind: EventKind::End,
            at_us: self.now_us(),
            dur_us,
            detail,
        });
        if dur_us >= self.slow_threshold_us.load(Ordering::Relaxed) {
            let mut timeline: Vec<TraceEvent> = self
                .slots
                .iter()
                .filter_map(|slot| slot.lock().clone())
                .filter(|e| e.op == op)
                .collect();
            timeline.sort_by_key(|e| e.seq);
            let mut slow = self.slow.lock();
            if slow.len() == SLOW_LOG_CAP {
                slow.pop_front();
            }
            slow.push_back(SlowOp {
                site,
                op,
                dur_us,
                timeline,
            });
        }
    }

    /// The ring's current contents, seq-ordered (oldest survivor
    /// first). A debugging view — events are overwritten as the ring
    /// laps.
    pub fn recent(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Captured slow ops, oldest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.slow.lock().iter().cloned().collect()
    }

    /// Clears the ring and the slow-op log (tests, bench warm-up).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock() = None;
        }
        self.slow.lock().clear();
    }
}

/// An open span; dropping it records the `End` event and, if the span
/// was slow, captures its timeline.
pub struct ActiveSpan<'t> {
    tracer: &'t Tracer,
    site: &'static str,
    op: u64,
    start: Instant,
    detail: u64,
}

impl ActiveSpan<'_> {
    /// The span's op id — hand it to [`Tracer::span_for`] /
    /// [`Tracer::event_for`] so sub-stage events join this op's
    /// timeline.
    pub fn op(&self) -> u64 {
        self.op
    }

    /// Attaches a payload to the closing `End` event.
    pub fn set_detail(&mut self, detail: u64) {
        self.detail = detail;
    }
}

impl Drop for ActiveSpan<'_> {
    fn drop(&mut self) {
        self.tracer
            .finish_span(self.site, self.op, self.start, self.detail);
    }
}

impl std::fmt::Debug for ActiveSpan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSpan")
            .field("site", &self.site)
            .field("op", &self.op)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_begin_and_end() {
        let t = Tracer::new();
        let mut span = t.span_for("test.op", 7);
        span.set_detail(42);
        drop(span);
        let events = t.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[1].kind, EventKind::End);
        assert_eq!(events[1].op, 7);
        assert_eq!(events[1].detail, 42);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn slow_span_captures_same_op_timeline() {
        let t = Tracer::new();
        t.set_slow_threshold(0); // everything is slow
        let outer = t.span_for("outer", 99);
        t.event_for("stage.submit", 99, 1);
        drop(t.span_for("stage.fetch", 99));
        t.event_for("unrelated", 5, 0);
        drop(outer);
        let slow = t.slow_ops();
        // stage.fetch closed under threshold too, so both spans logged.
        let op99: Vec<_> = slow.iter().filter(|s| s.op == 99).collect();
        let outer_slow = op99.iter().find(|s| s.site == "outer").expect("outer slow");
        assert!(
            outer_slow.timeline.len() >= 4,
            "begin, point, sub-span, end"
        );
        assert!(outer_slow.timeline.iter().all(|e| e.op == 99));
        assert!(outer_slow.timeline.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn fast_spans_stay_out_of_slow_log() {
        let t = Tracer::new();
        t.set_slow_threshold(u64::MAX);
        drop(t.span_for("quick", 1));
        assert!(t.slow_ops().is_empty());
    }

    #[test]
    fn slow_log_is_bounded() {
        let t = Tracer::new();
        t.set_slow_threshold(0);
        for i in 0..(SLOW_LOG_CAP as u64 + 20) {
            drop(t.span_for("op", i));
        }
        let slow = t.slow_ops();
        assert_eq!(slow.len(), SLOW_LOG_CAP);
        // Oldest were evicted: the retained ops are the most recent.
        assert_eq!(slow.last().unwrap().op, SLOW_LOG_CAP as u64 + 19);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new();
        for i in 0..(RING_SLOTS as u64 * 2) {
            t.event_for("tick", i, i);
        }
        let events = t.recent();
        assert_eq!(events.len(), RING_SLOTS);
        assert!(events.iter().all(|e| e.seq >= RING_SLOTS as u64));
    }

    #[test]
    fn concurrent_writers_do_not_lose_sequence() {
        let t = Tracer::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..500u64 {
                        drop(t.span_for("conc", i));
                    }
                });
            }
        });
        // 4 threads * 500 spans * 2 events = 4000 claims, ring holds
        // the last RING_SLOTS of them with unique seqs.
        let events = t.recent();
        assert_eq!(events.len(), RING_SLOTS.min(4000));
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), events.len(), "sequence numbers are unique");
    }
}
