//! The metrics registry: named instruments plus snapshot sources.
//!
//! Instruments are `Arc` handles deduped by name — two call sites (or
//! two engine instances) asking for `"lsm_flush_ns"` share one
//! histogram. Layers whose counters live in their own structs
//! ([`tb_lsm::LsmStats`]-style) register a *source* instead: a closure
//! that contributes counter/gauge readings at snapshot time, deduped by
//! summation so several engine instances compose into one system view.
//!
//! Recording is lock-free (relaxed atomics on the shared instrument);
//! the registry mutex is touched only on instrument creation, source
//! (de)registration, and snapshot.

use crate::json::Value;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tb_common::Histogram;

/// A monotonic counter. Disabled telemetry makes `add` a single relaxed
/// load.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn add(&self, by: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed gauge. Most gauges in this workspace are
/// *computed* (a source reads live state at snapshot time); the
/// instrument form exists for state worth publishing where it changes.
/// `set`/`add` are not gated on [`crate::enabled`]: a gauge models
/// current state, and skipping updates during a disable window would
/// leave it lying afterwards.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, by: i64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency histogram (log-bucketed, concurrent). Durations are
/// recorded in nanoseconds by convention — name instruments `*_ns`.
#[derive(Default)]
pub struct Histo {
    inner: Histogram,
}

impl std::fmt::Debug for Histo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histo")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Histo {
    /// Records one sample if telemetry is enabled (one relaxed load
    /// when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.inner.record(value);
    }

    /// Records the nanoseconds since `started`, no-op on `None` — the
    /// companion of [`crate::start`], which already paid the enabled
    /// check.
    #[inline]
    pub fn record_since(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.inner.record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// The underlying histogram (quantiles, merge, reset).
    pub fn histogram(&self) -> &Histogram {
        &self.inner
    }

    /// Quantile summary of the samples so far.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::of(&self.inner)
    }
}

/// Fixed quantile summary extracted from a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub mean: f64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HistogramSnapshot {
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            mean: h.mean(),
            max: h.max(),
            p50: h.percentile(0.50),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
            p999: h.percentile(0.999),
        }
    }
}

/// Contributions a snapshot source makes: counters and gauges, deduped
/// against same-named contributions by summation (several engines, one
/// system view). Histograms come only from registry instruments, which
/// are shared by name already.
pub struct SnapshotBuilder {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
}

impl SnapshotBuilder {
    pub fn counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    pub fn gauge(&mut self, name: &str, value: i64) {
        *self.gauges.entry(name.to_string()).or_insert(0) += value;
    }
}

type Source = Box<dyn Fn(&mut SnapshotBuilder) + Send + Sync>;

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histo>>,
    sources: Vec<(u64, Source)>,
    next_source_id: u64,
}

/// A registry of named instruments and snapshot sources. Usually
/// accessed through [`crate::global`]; independently constructible for
/// tests.
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(RegistryInner::default())),
        }
    }

    /// The counter named `name` (created on first use, shared after).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.inner
            .lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.inner
            .lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histo> {
        self.inner
            .lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers a snapshot source; it contributes to every
    /// [`Registry::snapshot`] until the returned guard drops. Sources
    /// must not call back into the registry (the snapshot holds its
    /// lock while running them).
    pub fn register_source(
        &self,
        source: impl Fn(&mut SnapshotBuilder) + Send + Sync + 'static,
    ) -> SourceGuard {
        let mut inner = self.inner.lock();
        let id = inner.next_source_id;
        inner.next_source_id += 1;
        inner.sources.push((id, Box::new(source)));
        SourceGuard {
            registry: Arc::downgrade(&self.inner),
            id,
        }
    }

    /// One coherent view of every instrument and source.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut builder = SnapshotBuilder {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        };
        for (_, source) in &inner.sources {
            source(&mut builder);
        }
        for (name, c) in &inner.counters {
            *builder.counters.entry(name.clone()).or_insert(0) += c.get();
        }
        for (name, g) in &inner.gauges {
            *builder.gauges.entry(name.clone()).or_insert(0) += g.get();
        }
        let histograms = inner
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters: builder.counters,
            gauges: builder.gauges,
            histograms,
        }
    }
}

/// Deregisters its source when dropped. The source's *final counter
/// values* are folded into persistent registry counters first, so
/// process-cumulative totals stay monotonic across engine teardowns
/// (and bench counter deltas survive the engines they measured);
/// gauges are point-in-time and simply disappear with their owner.
pub struct SourceGuard {
    registry: std::sync::Weak<Mutex<RegistryInner>>,
    id: u64,
}

impl Drop for SourceGuard {
    fn drop(&mut self) {
        let Some(registry) = self.registry.upgrade() else {
            return;
        };
        // Take the source out under the lock but run it — and its
        // destructor — *after* releasing it: a source closure owns
        // whatever it observes, and tearing that down may deregister
        // further sources from this same registry (e.g. a front-end
        // closure holding the engine alive, whose drop cascades into
        // the engine's own guard). Doing either inside the lock would
        // self-deadlock on re-entry.
        let extracted = {
            let mut inner = registry.lock();
            inner
                .sources
                .iter()
                .position(|(id, _)| *id == self.id)
                .map(|at| inner.sources.swap_remove(at))
        };
        let Some((_, source)) = extracted else {
            return;
        };
        let mut last = SnapshotBuilder {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        };
        source(&mut last);
        let mut inner = registry.lock();
        for (name, value) in last.counters {
            if value > 0 {
                // Straight onto the atomic: this is bookkeeping at
                // teardown, not a recording site, so it lands even
                // when telemetry is disabled.
                inner
                    .counters
                    .entry(name)
                    .or_default()
                    .0
                    .fetch_add(value, Ordering::Relaxed);
            }
        }
        drop(inner);
        drop(source);
    }
}

impl std::fmt::Debug for SourceGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceGuard").field("id", &self.id).finish()
    }
}

/// One coherent reading of the whole registry, name-sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// True if any metric name starts with `prefix` — the layer-level
    /// coverage check ("did the lsm layer report anything?").
    pub fn covers_prefix(&self, prefix: &str) -> bool {
        self.counters.keys().any(|k| k.starts_with(prefix))
            || self.gauges.keys().any(|k| k.starts_with(prefix))
            || self.histograms.keys().any(|k| k.starts_with(prefix))
    }

    /// Prometheus-style text exposition: counters and gauges as plain
    /// samples, histograms as summaries with quantile labels.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [
                ("0.5", h.p50),
                ("0.95", h.p95),
                ("0.99", h.p99),
                ("0.999", h.p999),
            ] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}", (h.mean * h.count as f64) as u64);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// The snapshot as a JSON value (see [`crate::json`]).
    pub fn to_json_value(&self) -> Value {
        let hist = |h: &HistogramSnapshot| {
            Value::obj([
                ("count".to_string(), Value::Num(h.count as f64)),
                ("mean".to_string(), Value::Num(h.mean)),
                ("max".to_string(), Value::Num(h.max as f64)),
                ("p50".to_string(), Value::Num(h.p50 as f64)),
                ("p95".to_string(), Value::Num(h.p95 as f64)),
                ("p99".to_string(), Value::Num(h.p99 as f64)),
                ("p999".to_string(), Value::Num(h.p999 as f64)),
            ])
        };
        Value::obj([
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), hist(h)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Serde-free JSON rendering.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }
}

/// Metric names in the exposition: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Validates Prometheus-style exposition text: every line is a
/// well-formed comment (`# TYPE name kind` / `# HELP ...`) or a sample
/// (`name{labels} value`). Returns the number of sample lines.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let valid_name = |s: &str| {
        !s.is_empty()
            && !s.chars().next().unwrap().is_ascii_digit()
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if let Some("TYPE") = parts.next() {
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name)
                    || !matches!(
                        kind,
                        "counter" | "gauge" | "summary" | "histogram" | "untyped"
                    )
                {
                    return Err(format!("line {}: bad TYPE comment", lineno + 1));
                }
            }
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value", lineno + 1))?;
        let name = match name_part.split_once('{') {
            Some((n, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {}: unterminated labels", lineno + 1));
                }
                n
            }
            None => name_part,
        };
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if value_part.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value {value_part:?}", lineno + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// Tests that toggle or depend on the process-global enabled flag
    /// serialize here so parallel execution can't interleave a disable
    /// window into a recording test.
    pub(crate) fn gate() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
    }

    #[test]
    fn instruments_dedup_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        assert!(Arc::ptr_eq(&a, &b));
        let _g = gate();
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x_total"), 5);
    }

    #[test]
    fn sources_sum_across_instances() {
        let _g = gate();
        let r = Registry::new();
        let g1 = r.register_source(|b| {
            b.counter("eng_ops", 10);
            b.gauge("eng_depth", 3);
        });
        let g2 = r.register_source(|b| {
            b.counter("eng_ops", 5);
            b.gauge("eng_depth", 4);
        });
        // An instrument with the same name also folds in.
        r.counter("eng_ops").add(1);
        let s = r.snapshot();
        assert_eq!(s.counter("eng_ops"), 16);
        assert_eq!(s.gauge("eng_depth"), 7);
        // Teardown folds a source's final counters into the registry
        // (totals stay monotonic); gauges vanish with their owner.
        drop(g1);
        let s = r.snapshot();
        assert_eq!(s.counter("eng_ops"), 16);
        assert_eq!(s.gauge("eng_depth"), 4);
        drop(g2);
        let s = r.snapshot();
        assert_eq!(s.counter("eng_ops"), 16);
        assert_eq!(s.gauge("eng_depth"), 0);
    }

    #[test]
    fn guard_drop_cascading_into_another_deregistration_does_not_deadlock() {
        // A source closure owns what it observes; tearing that down can
        // deregister *further* sources (front-end closure → engine →
        // engine's guard). The inner drop re-enters the registry, so
        // the outer deregistration must not hold the lock across it.
        let r = Registry::new();
        let inner = r.register_source(|b| b.counter("cascade_inner", 1));
        let outer = {
            let owned = std::sync::Mutex::new(Some(inner));
            r.register_source(move |b| {
                b.counter("cascade_outer", u64::from(owned.lock().unwrap().is_some()));
            })
        };
        let s = r.snapshot();
        assert_eq!(s.counter("cascade_inner"), 1);
        assert_eq!(s.counter("cascade_outer"), 1);
        drop(outer); // must not self-deadlock dropping `inner` within
                     // Both sources are gone, but their final counter values folded
                     // into persistent registry counters on the way out.
        let s = r.snapshot();
        assert_eq!(s.counter("cascade_inner"), 1);
        assert_eq!(s.counter("cascade_outer"), 1);
        assert!(s.gauges.is_empty(), "gauges die with their owner");
    }

    #[test]
    fn dropped_source_folds_final_counters_into_registry() {
        let r = Registry::new();
        let guard = r.register_source(|b| {
            b.counter("fold_ops", 41);
            b.gauge("fold_depth", 5);
        });
        assert_eq!(r.snapshot().counter("fold_ops"), 41);
        drop(guard);
        // Counters stay monotonic across the teardown; the gauge
        // (point-in-time) disappears.
        let s = r.snapshot();
        assert_eq!(s.counter("fold_ops"), 41);
        assert!(!s.gauges.contains_key("fold_depth"));
        // A successor engine's source continues the cumulative total.
        let _g2 = r.register_source(|b| b.counter("fold_ops", 1));
        assert_eq!(r.snapshot().counter("fold_ops"), 42);
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _g = gate();
        let r = Registry::new();
        let c = r.counter("off_total");
        let h = r.histogram("off_ns");
        crate::set_enabled(false);
        // The whole disabled contract: start() reads no clock, record
        // is a load-and-return, spans don't allocate op ids.
        assert!(crate::start().is_none());
        c.add(100);
        h.record(100);
        h.record_since(crate::start());
        assert!(crate::tracer().span("off.site").is_none());
        crate::set_enabled(true);
        assert_eq!(c.get(), 0, "disabled counter must not move");
        assert_eq!(h.snapshot().count, 0, "disabled histogram must not move");
        // Re-enabled: everything records again.
        c.add(1);
        h.record(1000);
        assert_eq!(c.get(), 1);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn quantiles_are_exact_on_small_values() {
        // The first linear region of the log-bucketed histogram stores
        // values < 32 exactly: quantile extraction at bucket boundaries
        // must return the exact sample, not a midpoint.
        let _g = gate();
        let h = Histo::default();
        for v in 1..=31u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 31);
        assert_eq!(s.max, 31);
        assert_eq!(h.histogram().percentile(1.0 / 31.0), 1);
        assert_eq!(h.histogram().percentile(16.0 / 31.0), 16);
        assert_eq!(h.histogram().percentile(1.0), 31);
    }

    #[test]
    fn quantiles_bounded_error_on_log_buckets() {
        let _g = gate();
        let h = Histo::default();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (q, expected) in [
            (s.p50 as f64, 50_000.0),
            (s.p95 as f64, 95_000.0),
            (s.p99 as f64, 99_000.0),
            (s.p999 as f64, 99_900.0),
        ] {
            let err = (q - expected).abs() / expected;
            assert!(err < 0.05, "quantile {q} vs {expected}: err {err}");
        }
    }

    #[test]
    fn per_shard_histograms_merge() {
        // The per-shard pattern: each shard records into its own
        // histogram, a system view merges them — count, max, and
        // quantiles must reflect the union.
        let _g = gate();
        let shards: Vec<Histo> = (0..4).map(|_| Histo::default()).collect();
        for (i, shard) in shards.iter().enumerate() {
            for v in 0..1000u64 {
                shard.record(i as u64 * 1000 + v + 1);
            }
        }
        let merged = Histogram::new();
        for shard in &shards {
            merged.merge(shard.histogram());
        }
        assert_eq!(merged.count(), 4000);
        assert_eq!(merged.max(), 4000);
        let p50 = merged.percentile(0.5) as f64;
        assert!((p50 - 2000.0).abs() / 2000.0 < 0.06, "merged p50 {p50}");
        let p999 = merged.percentile(0.999) as f64;
        assert!((p999 - 3996.0).abs() / 3996.0 < 0.06, "merged p999 {p999}");
    }

    #[test]
    fn overflow_saturates_at_top_bucket() {
        let _g = gate();
        let h = Histo::default();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.count, 3, "overflow samples still count");
        assert_eq!(s.max, u64::MAX);
        // Saturated samples land in the top bucket: the extracted
        // quantile is huge but finite and the walk doesn't panic.
        assert!(h.histogram().percentile(1.0) > (1u64 << 42));
    }

    #[test]
    fn concurrent_recording_from_boosted_workers() {
        // The boosted-worker shape: several threads hammer one shared
        // instrument handle while a reader snapshots mid-flight.
        let _g = gate();
        let r = Registry::new();
        let h = r.histogram("conc_ns");
        let c = r.counter("conc_total");
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(t * 10_000 + v + 1);
                        c.add(1);
                    }
                });
            }
            // Interleaved snapshots must observe internally consistent
            // (monotonic) counts.
            let mut last = 0;
            for _ in 0..20 {
                let now = r.snapshot().counter("conc_total");
                assert!(now >= last);
                last = now;
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("conc_total"), 40_000);
        assert_eq!(s.histogram("conc_ns").unwrap().count, 40_000);
    }

    #[test]
    fn exposition_renders_and_validates() {
        let _g = gate();
        let r = Registry::new();
        r.counter("ops_total").add(7);
        r.gauge("depth").set(-2);
        let h = r.histogram("lat_ns");
        for v in 1..=1000 {
            h.record(v * 1000);
        }
        let _src = r.register_source(|b| b.counter("src_total", 3));
        let s = r.snapshot();

        let text = s.to_prometheus();
        let samples = validate_exposition(&text).expect("exposition must parse");
        // 2 counters + 1 gauge + (4 quantiles + sum + count).
        assert_eq!(samples, 9);
        assert!(text.contains("ops_total 7"));
        assert!(text.contains("depth -2"));
        assert!(text.contains("lat_ns{quantile=\"0.99\"}"));

        let parsed = json::parse(&s.to_json()).expect("snapshot json must parse");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("ops_total"))
                .and_then(Value::as_f64),
            Some(7.0)
        );
        assert_eq!(
            parsed
                .get("histograms")
                .and_then(|h| h.get("lat_ns"))
                .and_then(|h| h.get("count"))
                .and_then(Value::as_f64),
            Some(1000.0)
        );
    }

    #[test]
    fn exposition_validator_rejects_garbage() {
        assert!(validate_exposition("1bad_name 3").is_err());
        assert!(validate_exposition("name notanumber").is_err());
        assert!(validate_exposition("name{quantile=\"0.5\" 3").is_err());
        assert!(validate_exposition("# TYPE x notakind").is_err());
        assert_eq!(validate_exposition("ok 3\n# HELP free text\n").unwrap(), 1);
    }

    #[test]
    fn sanitize_produces_legal_names() {
        assert_eq!(sanitize("lsm.flush-ns"), "lsm_flush_ns");
        assert_eq!(sanitize("9lives"), "_9lives");
        let s = MetricsSnapshot {
            counters: [("weird métric!".to_string(), 1)].into_iter().collect(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        validate_exposition(&s.to_prometheus()).expect("sanitized names must validate");
    }
}
