//! Elastic threading (paper §4.4, Figure 6).
//!
//! A TierBase data node normally runs one event-loop thread per shard —
//! single-threaded execution is the most CPU-efficient mode (no locking,
//! no cross-core traffic), which is why it is the default. Containers,
//! however, are provisioned for *peak* CPU, so idle cores usually exist
//! next to a hot shard. The elastic runtime watches its own request
//! queue and, when depth stays above a boost watermark, wakes additional
//! RPC threads within the container's core budget; when the burst
//! subsides the extra threads park again and the node returns to
//! single-thread efficiency. No external scaling, no extra cost.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Threading mode a runtime is pinned to, or elastic switching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadMode {
    /// One event-loop thread, never boosted (TierBase-s).
    Single,
    /// A fixed pool of N threads (TierBase-m).
    Multi(usize),
    /// Start single, boost up to N under load (TierBase-e).
    Elastic(usize),
}

/// Watermarks and pacing for elastic switching.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Queue depth that triggers a boost.
    pub boost_depth: usize,
    /// Queue depth below which boosted threads retire.
    pub shrink_depth: usize,
    /// Controller sampling interval.
    pub sample_interval: Duration,
    /// Consecutive calm samples required before shrinking.
    pub shrink_patience: u32,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        Self {
            boost_depth: 64,
            shrink_depth: 8,
            sample_interval: Duration::from_millis(2),
            shrink_patience: 5,
        }
    }
}

/// Runtime counters.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    pub processed: AtomicU64,
    pub boosts: AtomicU64,
    pub shrinks: AtomicU64,
}

/// A work queue with elastic worker threads.
pub struct ElasticRuntime {
    tx: Sender<Task>,
    rx: Receiver<Task>,
    /// Worker threads currently allowed to run (the target).
    target_threads: AtomicUsize,
    /// Worker threads currently alive.
    live_threads: AtomicUsize,
    max_threads: usize,
    shutdown: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
    controller: Mutex<Option<JoinHandle<()>>>,
    pub stats: RuntimeStats,
}

impl ElasticRuntime {
    /// Builds a runtime in the given mode. Elastic mode also starts the
    /// watermark controller.
    pub fn new(mode: ThreadMode, config: ElasticConfig) -> Arc<Self> {
        let (tx, rx) = bounded::<Task>(1 << 16);
        let (initial, max) = match mode {
            ThreadMode::Single => (1, 1),
            ThreadMode::Multi(n) => (n.max(1), n.max(1)),
            ThreadMode::Elastic(n) => (1, n.max(1)),
        };
        let rt = Arc::new(Self {
            tx,
            rx,
            target_threads: AtomicUsize::new(initial),
            live_threads: AtomicUsize::new(0),
            max_threads: max,
            shutdown: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
            controller: Mutex::new(None),
            stats: RuntimeStats::default(),
        });
        for _ in 0..initial {
            rt.spawn_worker();
        }
        if matches!(mode, ThreadMode::Elastic(_)) {
            rt.spawn_controller(config);
        }
        rt
    }

    /// Convenience constructors mirroring the paper's labels.
    pub fn single() -> Arc<Self> {
        Self::new(ThreadMode::Single, ElasticConfig::default())
    }

    pub fn multi(n: usize) -> Arc<Self> {
        Self::new(ThreadMode::Multi(n), ElasticConfig::default())
    }

    pub fn elastic(max: usize) -> Arc<Self> {
        Self::new(ThreadMode::Elastic(max), ElasticConfig::default())
    }

    /// Enqueues a task for execution.
    pub fn execute(&self, f: impl FnOnce() + Send + 'static) {
        // Bounded channel: under extreme overload this blocks the
        // producer, which is the correct backpressure for a data node.
        let _ = self.tx.send(Box::new(f));
    }

    /// Runs a task to completion on the pool, returning its result.
    pub fn run<T: Send + 'static>(&self, f: impl FnOnce() -> T + Send + 'static) -> T {
        let (tx, rx) = bounded(1);
        self.execute(move || {
            let _ = tx.send(f());
        });
        rx.recv().expect("worker dropped result")
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.rx.len()
    }

    /// Worker threads currently alive.
    pub fn current_threads(&self) -> usize {
        self.live_threads.load(Ordering::Relaxed)
    }

    /// Stops all workers after the queue drains.
    pub fn shutdown(&self) {
        // Wait for queued work, then stop.
        while !self.rx.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(c) = self.controller.lock().take() {
            let _ = c.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    fn spawn_worker(self: &Arc<Self>) {
        let rt = self.clone();
        rt.live_threads.fetch_add(1, Ordering::SeqCst);
        let rt2 = rt.clone();
        let handle = std::thread::spawn(move || rt2.worker_loop());
        self.handles.lock().push(handle);
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Retire when above target (elastic shrink). The first
            // worker (the event loop) never retires because target >= 1.
            let live = self.live_threads.load(Ordering::SeqCst);
            if live > self.target_threads.load(Ordering::SeqCst)
                && self
                    .live_threads
                    .compare_exchange(live, live - 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return;
            }
            match self.rx.recv_timeout(Duration::from_millis(5)) {
                Ok(task) => {
                    task();
                    self.stats.processed.fetch_add(1, Ordering::Relaxed);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.live_threads.fetch_sub(1, Ordering::SeqCst);
    }

    fn spawn_controller(self: &Arc<Self>, config: ElasticConfig) {
        let rt = self.clone();
        let handle = std::thread::spawn(move || {
            let mut calm_samples = 0u32;
            while !rt.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(config.sample_interval);
                let depth = rt.queue_depth();
                let target = rt.target_threads.load(Ordering::SeqCst);
                if depth >= config.boost_depth && target < rt.max_threads {
                    // Boost: add a thread per hot sample until max.
                    rt.target_threads.store(target + 1, Ordering::SeqCst);
                    rt.spawn_worker();
                    rt.stats.boosts.fetch_add(1, Ordering::Relaxed);
                    calm_samples = 0;
                } else if depth <= config.shrink_depth && target > 1 {
                    calm_samples += 1;
                    if calm_samples >= config.shrink_patience {
                        rt.target_threads.store(target - 1, Ordering::SeqCst);
                        rt.stats.shrinks.fetch_add(1, Ordering::Relaxed);
                        calm_samples = 0;
                    }
                } else {
                    calm_samples = 0;
                }
            }
        });
        *self.controller.lock() = Some(handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_us(us: u64) {
        let deadline = std::time::Instant::now() + Duration::from_micros(us);
        while std::time::Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn single_mode_processes_everything_in_order_per_thread() {
        let rt = ElasticRuntime::single();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = counter.clone();
            rt.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(rt.stats.processed.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn run_returns_result() {
        let rt = ElasticRuntime::single();
        let out = rt.run(|| 21 * 2);
        assert_eq!(out, 42);
        rt.shutdown();
    }

    #[test]
    fn multi_mode_starts_n_threads() {
        let rt = ElasticRuntime::multi(4);
        assert_eq!(rt.current_threads(), 4);
        rt.shutdown();
        assert_eq!(rt.current_threads(), 0);
    }

    #[test]
    fn elastic_starts_single() {
        let rt = ElasticRuntime::elastic(4);
        assert_eq!(rt.current_threads(), 1);
        rt.shutdown();
    }

    #[test]
    fn elastic_boosts_under_load_and_shrinks_after() {
        let config = ElasticConfig {
            boost_depth: 16,
            shrink_depth: 2,
            sample_interval: Duration::from_millis(1),
            shrink_patience: 3,
        };
        let rt = ElasticRuntime::new(ThreadMode::Elastic(4), config);
        // Flood with slow tasks to hold queue depth high.
        for _ in 0..3000 {
            rt.execute(|| spin_us(100));
        }
        // Wait for the controller to react and the queue to drain.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let mut peak = 1;
        while rt.queue_depth() > 0 && std::time::Instant::now() < deadline {
            peak = peak.max(rt.current_threads());
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(peak > 1, "runtime never boosted (peak {peak})");
        assert!(rt.stats.boosts.load(Ordering::Relaxed) > 0);
        // Calm period → shrink back toward 1.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while rt.current_threads() > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rt.current_threads(), 1, "runtime never shrank back");
        assert!(rt.stats.shrinks.load(Ordering::Relaxed) > 0);
        rt.shutdown();
    }

    #[test]
    fn multi_mode_outruns_single_on_parallel_work() {
        // 400 tasks of ~200µs of CPU each: single ≈ 80ms serial floor,
        // multi(4) should finish in well under half that.
        let run = |rt: Arc<ElasticRuntime>| {
            let t0 = std::time::Instant::now();
            let done = Arc::new(AtomicU64::new(0));
            for _ in 0..400 {
                let d = done.clone();
                rt.execute(move || {
                    spin_us(200);
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
            while done.load(Ordering::Relaxed) < 400 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let dt = t0.elapsed();
            rt.shutdown();
            dt
        };
        let single = run(ElasticRuntime::single());
        let multi = run(ElasticRuntime::multi(4));
        assert!(
            multi < single,
            "multi ({multi:?}) should beat single ({single:?})"
        );
    }

    #[test]
    fn shutdown_drains_queue_first() {
        let rt = ElasticRuntime::single();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let c = counter.clone();
            rt.execute(move || {
                spin_us(50);
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }
}

// ---------------------------------------------------------------------
// ElasticGate: permit-limited direct execution
// ---------------------------------------------------------------------

/// A concurrency gate modeling the container's CPU allocation without
/// queue hops: callers execute *in place* once they hold one of the
/// gate's permits. `Single` = 1 permit (the event loop), `Multi(n)` =
/// n permits (fixed threads), `Elastic(n)` = 1..n permits adjusted by a
/// watermark controller that watches how many callers are blocked — the
/// same §4.4 policy as [`ElasticRuntime`], at direct-call cost.
pub struct ElasticGate {
    state: Mutex<GateState>,
    cv: parking_lot::Condvar,
    max_permits: usize,
    shutdown: AtomicBool,
    controller: Mutex<Option<JoinHandle<()>>>,
    pub stats: RuntimeStats,
}

struct GateState {
    /// Permits callers may hold concurrently (the boost lever).
    target: usize,
    /// Permits currently held.
    in_use: usize,
    /// Callers blocked waiting for a permit (the load signal).
    waiting: usize,
}

impl ElasticGate {
    /// A gate with a fixed permit count (Single = 1, Multi(n) = n).
    pub fn fixed(permits: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(GateState {
                target: permits.max(1),
                in_use: 0,
                waiting: 0,
            }),
            cv: parking_lot::Condvar::new(),
            max_permits: permits.max(1),
            shutdown: AtomicBool::new(false),
            controller: Mutex::new(None),
            stats: RuntimeStats::default(),
        })
    }

    /// An elastic gate: starts at one permit, boosts toward `max` while
    /// callers queue up, shrinks back when the burst subsides.
    pub fn elastic(max: usize, config: ElasticConfig) -> Arc<Self> {
        let gate = Arc::new(Self {
            state: Mutex::new(GateState {
                target: 1,
                in_use: 0,
                waiting: 0,
            }),
            cv: parking_lot::Condvar::new(),
            max_permits: max.max(1),
            shutdown: AtomicBool::new(false),
            controller: Mutex::new(None),
            stats: RuntimeStats::default(),
        });
        gate.spawn_controller(config);
        gate
    }

    /// Builds the gate matching a [`ThreadMode`].
    pub fn for_mode(mode: ThreadMode, config: ElasticConfig) -> Arc<Self> {
        match mode {
            ThreadMode::Single => Self::fixed(1),
            ThreadMode::Multi(n) => Self::fixed(n),
            ThreadMode::Elastic(n) => Self::elastic(n, config),
        }
    }

    /// Runs `f` while holding a permit.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> T {
        {
            let mut s = self.state.lock();
            while s.in_use >= s.target {
                s.waiting += 1;
                self.cv.wait(&mut s);
                s.waiting -= 1;
            }
            s.in_use += 1;
        }
        let out = f();
        {
            let mut s = self.state.lock();
            s.in_use -= 1;
        }
        self.cv.notify_one();
        self.stats.processed.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Permits callers may currently hold.
    pub fn current_permits(&self) -> usize {
        self.state.lock().target
    }

    /// Callers blocked right now (the controller's load signal).
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting
    }

    /// Stops the controller thread (fixed gates: no-op).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(c) = self.controller.lock().take() {
            let _ = c.join();
        }
    }

    fn spawn_controller(self: &Arc<Self>, config: ElasticConfig) {
        let gate = self.clone();
        let handle = std::thread::spawn(move || {
            let mut calm = 0u32;
            while !gate.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(config.sample_interval);
                let mut s = gate.state.lock();
                // Waiting callers = saturated permits = boost signal.
                if s.waiting >= 2 && s.target < gate.max_permits {
                    s.target += 1;
                    gate.stats.boosts.fetch_add(1, Ordering::Relaxed);
                    calm = 0;
                    drop(s);
                    gate.cv.notify_all();
                } else if s.waiting == 0 && s.target > 1 {
                    calm += 1;
                    if calm >= config.shrink_patience {
                        s.target -= 1;
                        gate.stats.shrinks.fetch_add(1, Ordering::Relaxed);
                        calm = 0;
                    }
                } else {
                    calm = 0;
                }
            }
        });
        *self.controller.lock() = Some(handle);
    }
}

impl Drop for ElasticGate {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(c) = self.controller.get_mut().take() {
            let _ = c.join();
        }
    }
}

#[cfg(test)]
mod gate_tests {
    use super::*;
    use std::time::Instant;

    fn spin_us(us: u64) {
        let deadline = Instant::now() + Duration::from_micros(us);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn fixed_gate_limits_concurrency() {
        let gate = ElasticGate::fixed(2);
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = gate.clone();
                let peak = peak.clone();
                let cur = cur.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        gate.run(|| {
                            let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            spin_us(50);
                            cur.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(gate.stats.processed.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn single_gate_serializes() {
        let gate = ElasticGate::fixed(1);
        // Four threads of 200µs work: serialized floor ≈ 4×50×200µs.
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let gate = gate.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        gate.run(|| spin_us(200));
                    }
                });
            }
        });
        assert!(
            t0.elapsed() >= Duration::from_millis(35),
            "single-permit gate failed to serialize: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn elastic_gate_boosts_and_shrinks() {
        let config = ElasticConfig {
            boost_depth: 0, // unused by the gate
            shrink_depth: 0,
            sample_interval: Duration::from_millis(1),
            shrink_patience: 5,
        };
        let gate = ElasticGate::elastic(4, config);
        assert_eq!(gate.current_permits(), 1);
        // Load: 8 threads of CPU work → waiters pile up → boost.
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = gate.clone();
                s.spawn(move || {
                    for _ in 0..120 {
                        gate.run(|| spin_us(300));
                    }
                });
            }
        });
        assert!(
            gate.stats.boosts.load(Ordering::Relaxed) > 0,
            "gate never boosted"
        );
        // Calm: permits shrink back to 1.
        let deadline = Instant::now() + Duration::from_secs(5);
        while gate.current_permits() > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(gate.current_permits(), 1, "gate never shrank");
        gate.shutdown();
    }

    #[test]
    fn for_mode_builds_the_right_gate() {
        assert_eq!(
            ElasticGate::for_mode(ThreadMode::Single, ElasticConfig::default()).current_permits(),
            1
        );
        assert_eq!(
            ElasticGate::for_mode(ThreadMode::Multi(3), ElasticConfig::default()).current_permits(),
            3
        );
        let e = ElasticGate::for_mode(ThreadMode::Elastic(4), ElasticConfig::default());
        assert_eq!(e.current_permits(), 1);
        e.shutdown();
    }
}

// ---------------------------------------------------------------------
// Scale-out signal
// ---------------------------------------------------------------------

/// §4.4's escalation rule: elastic threading absorbs *transient* bursts
/// with idle container CPU; when the gate has been pinned at its
/// maximum permit count with callers still queueing for a sustained
/// window, the tenant has outgrown the container and the system should
/// scale out instead.
pub struct ScaleOutDetector {
    /// Consecutive saturated observations required.
    pub patience: u32,
    saturated_streak: std::sync::atomic::AtomicU32,
}

impl ScaleOutDetector {
    pub fn new(patience: u32) -> Self {
        Self {
            patience: patience.max(1),
            saturated_streak: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Feeds one observation of the gate; returns true when scale-out
    /// is recommended (saturation persisted past the patience window).
    pub fn observe(&self, gate: &ElasticGate) -> bool {
        let saturated = gate.current_permits() >= gate.max_permits && gate.waiting() > 0;
        let streak = if saturated {
            self.saturated_streak
                .fetch_add(1, Ordering::Relaxed)
                .saturating_add(1)
        } else {
            self.saturated_streak.store(0, Ordering::Relaxed);
            0
        };
        streak >= self.patience
    }

    /// Current consecutive-saturation count.
    pub fn streak(&self) -> u32 {
        self.saturated_streak.load(Ordering::Relaxed)
    }
}

impl ElasticGate {
    /// Maximum permits this gate can ever grant (the container's CPU
    /// allocation).
    pub fn max_permits(&self) -> usize {
        self.max_permits
    }
}

#[cfg(test)]
mod scaleout_tests {
    use super::*;

    #[test]
    fn no_signal_when_unsaturated() {
        let gate = ElasticGate::fixed(4);
        let det = ScaleOutDetector::new(3);
        for _ in 0..10 {
            assert!(!det.observe(&gate), "idle gate must not trigger scale-out");
        }
        assert_eq!(det.streak(), 0);
    }

    #[test]
    fn sustained_saturation_triggers() {
        let gate = ElasticGate::fixed(1);
        let det = ScaleOutDetector::new(3);
        // Saturate: competing workers keep the single permit taken while
        // a sampler observes.
        let fired = std::sync::atomic::AtomicBool::new(false);
        let fired_ref = &fired;
        let det_ref = &det;
        std::thread::scope(|s| {
            for _ in 0..2 {
                let g = gate.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        g.run(|| std::thread::sleep(Duration::from_micros(500)));
                    }
                });
            }
            let gate2 = gate.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    if det_ref.observe(&gate2) {
                        fired_ref.store(true, Ordering::Relaxed);
                        return;
                    }
                    std::thread::sleep(Duration::from_micros(300));
                }
            });
        });
        assert!(
            fired.load(Ordering::Relaxed),
            "sustained saturation must recommend scale-out"
        );
    }

    #[test]
    fn streak_resets_on_relief() {
        let busy = ElasticGate::fixed(1);
        // Detector threshold never fires in this test; simulate saturation
        // manually by holding the permit in another thread while a second
        // one waits.
        let det = ScaleOutDetector::new(100);
        std::thread::scope(|s| {
            let g = busy.clone();
            s.spawn(move || {
                g.run(|| std::thread::sleep(Duration::from_millis(20)));
            });
            let g = busy.clone();
            s.spawn(move || {
                g.run(|| {});
            });
            std::thread::sleep(Duration::from_millis(5));
            det.observe(&busy); // likely saturated now
        });
        // After work drains, observation resets the streak.
        det.observe(&busy);
        assert_eq!(det.streak(), 0);
    }
}
