//! Front-end operational counters.

use std::sync::atomic::{AtomicU64, Ordering};
use tb_common::BatchReadStats;

/// Counters exposed by a running front-end. All relaxed: these are
/// diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct FrontendStats {
    /// Requests accepted into a shard queue.
    pub submitted: AtomicU64,
    /// Requests resolved (successfully or not) — including requests a
    /// panicked batch abandoned, which resolve `Unavailable` and are
    /// reconciled by the worker so this converges to `submitted`.
    pub completed: AtomicU64,
    /// Batches drained by shard workers.
    pub batches: AtomicU64,
    /// `sync()` calls issued once per dirty batch (group commit).
    pub group_syncs: AtomicU64,
    /// `sync()` calls issued per write op (group commit disabled).
    pub per_op_syncs: AtomicU64,
    /// Put operations that rode a coalesced `multi_put` with company.
    pub coalesced_puts: AtomicU64,
    /// `try_submit` rejections due to a full shard queue.
    pub backpressure_rejections: AtomicU64,
    /// Boost decisions by the elastic controller.
    pub boosts: AtomicU64,
    /// Shrink decisions by the elastic controller.
    pub shrinks: AtomicU64,
    /// Batches abandoned because an engine call panicked (their
    /// requests resolved `Unavailable`; the worker survived).
    pub worker_panics: AtomicU64,
}

impl FrontendStats {
    pub(crate) fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// Snapshot for reports.
    pub fn snapshot(&self) -> FrontendStatsSnapshot {
        FrontendStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            group_syncs: self.group_syncs.load(Ordering::Relaxed),
            per_op_syncs: self.per_op_syncs.load(Ordering::Relaxed),
            coalesced_puts: self.coalesced_puts.load(Ordering::Relaxed),
            backpressure_rejections: self.backpressure_rejections.load(Ordering::Relaxed),
            boosts: self.boosts.load(Ordering::Relaxed),
            shrinks: self.shrinks.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            shard_queue_depths: Vec::new(),
            shard_live_workers: Vec::new(),
            engine_batch: BatchReadStats::default(),
        }
    }
}

/// Point-in-time copy of [`FrontendStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendStatsSnapshot {
    pub submitted: u64,
    pub completed: u64,
    pub batches: u64,
    pub group_syncs: u64,
    pub per_op_syncs: u64,
    pub coalesced_puts: u64,
    pub backpressure_rejections: u64,
    pub boosts: u64,
    pub shrinks: u64,
    pub worker_panics: u64,
    /// Submission-queue depth of each shard at snapshot time. Empty
    /// through [`FrontendStats::snapshot`]; filled by
    /// `Frontend::stats_snapshot`, which can reach the shards.
    pub shard_queue_depths: Vec<usize>,
    /// Workers draining each shard at snapshot time (> 1 = elastically
    /// boosted). Filled like `shard_queue_depths`.
    pub shard_live_workers: Vec<usize>,
    /// The wrapped engine's batched-read counters (block fetches,
    /// dedup hits, memtable hits). Zero through
    /// [`FrontendStats::snapshot`]; filled by `Frontend::stats_snapshot`,
    /// which can reach the engine.
    pub engine_batch: BatchReadStats,
}

impl FrontendStatsSnapshot {
    /// Mean ops per drained batch — the pipelining depth actually
    /// achieved under the observed load.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}
