//! `tb-frontend` — the pipelined, sharded request front-end.
//!
//! Every engine in the workspace is a synchronous [`KvEngine`]; this
//! crate turns one into a *servable system*: the paper's data-node
//! serving model of one event loop per shard (§4.4) with batched
//! storage round-trips (§4.1.2). Client threads submit
//! [`Request`]s to per-shard bounded queues (routed by the cluster
//! hash, `slot_for_key`), shard workers drain batches, coalesce
//! adjacent writes into `multi_put`, and group-commit one `sync()` per
//! dirty batch. Completion flows back through per-request [`Ticket`]s;
//! a full shard queue is backpressure (blocking `submit`, or
//! `Error::Backpressure` from `try_submit`). The elastic watermark
//! policy from `tb-elastic` boosts extra drain workers onto hot shards
//! and retires them when bursts subside.
//!
//! ```
//! use std::sync::Arc;
//! use tb_common::{Key, KvEngine, Value};
//! use tb_frontend::{Frontend, FrontendConfig, Request};
//! # use tb_common::Result;
//! # use parking_lot::Mutex;
//! # use std::collections::BTreeMap;
//! # struct MapEngine(Mutex<BTreeMap<Key, Value>>);
//! # impl KvEngine for MapEngine {
//! #     fn get(&self, key: &Key) -> Result<Option<Value>> { Ok(self.0.lock().get(key).cloned()) }
//! #     fn put(&self, key: Key, value: Value) -> Result<()> { self.0.lock().insert(key, value); Ok(()) }
//! #     fn delete(&self, key: &Key) -> Result<()> { self.0.lock().remove(key); Ok(()) }
//! #     fn resident_bytes(&self) -> u64 { 0 }
//! #     fn label(&self) -> String { "map".into() }
//! # }
//! # let engine: Arc<dyn KvEngine> = Arc::new(MapEngine(Mutex::new(BTreeMap::new())));
//! let fe = Frontend::start(engine, FrontendConfig::default());
//! // Pipelined: submit many requests, await their tickets later.
//! let tickets: Vec<_> = (0..100)
//!     .map(|i| fe.submit(Request::Put(Key::from(format!("k{i}")), Value::from("v"))))
//!     .collect();
//! for t in tickets {
//!     t.wait().unwrap();
//! }
//! assert_eq!(fe.get(&Key::from("k7")).unwrap(), Some(Value::from("v")));
//! fe.shutdown();
//! ```

mod frontend;
mod queue;
mod stats;
mod ticket;

pub use frontend::{Frontend, FrontendConfig, Request};
pub use stats::{FrontendStats, FrontendStatsSnapshot};
pub use ticket::{Response, Ticket};

// Re-exported so front-end users can tune boosting without a direct
// tb-elastic dependency.
pub use tb_elastic::ElasticConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;
    use tb_common::{Error, Key, KvEngine, Result, Value};

    /// Map engine that counts engine-level calls, can inject
    /// per-operation latency (to saturate queues deterministically),
    /// and can panic on a chosen key (to test panic containment).
    #[derive(Default)]
    struct ProbeEngine {
        map: Mutex<BTreeMap<Key, Value>>,
        puts: AtomicU64,
        multi_puts: AtomicU64,
        apply_batches: AtomicU64,
        syncs: AtomicU64,
        op_delay: Option<Duration>,
        panic_on: Option<Key>,
    }

    impl ProbeEngine {
        fn shared() -> Arc<Self> {
            Arc::new(Self::default())
        }

        fn slow(delay: Duration) -> Arc<Self> {
            Arc::new(Self {
                op_delay: Some(delay),
                ..Self::default()
            })
        }

        fn stall(&self) {
            if let Some(d) = self.op_delay {
                std::thread::sleep(d);
            }
        }
    }

    impl KvEngine for ProbeEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            self.stall();
            Ok(self.map.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.stall();
            self.puts.fetch_add(1, Ordering::Relaxed);
            self.map.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        // Native scan: the trait's default lowers onto `apply_batch`,
        // whose default lowers back — an engine must break the cycle.
        fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
            self.stall();
            Ok(self
                .map
                .lock()
                .range::<Key, _>((
                    std::ops::Bound::Included(start),
                    end.map_or(std::ops::Bound::Unbounded, std::ops::Bound::Excluded),
                ))
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }
        fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
            self.stall();
            if let Some(poison) = &self.panic_on {
                if pairs.iter().any(|(k, _)| k == poison) {
                    panic!("probe engine poisoned by {poison:?}");
                }
            }
            self.multi_puts.fetch_add(1, Ordering::Relaxed);
            let mut m = self.map.lock();
            for (k, v) in pairs {
                self.puts.fetch_add(1, Ordering::Relaxed);
                m.insert(k, v);
            }
            Ok(())
        }
        fn apply_batch(&self, ops: Vec<tb_common::EngineOp>) -> Vec<Result<tb_common::OpOutcome>> {
            use tb_common::{EngineOp, Lsn, OpOutcome};
            self.apply_batches.fetch_add(1, Ordering::Relaxed);
            // Same lowering as the trait default; counted so tests can
            // assert one engine submission per drained batch.
            ops.into_iter()
                .map(|op| match op {
                    EngineOp::Get(key) => self.get(&key).map(OpOutcome::Value),
                    EngineOp::Put(key, value) => {
                        self.put(key, value).map(|_| OpOutcome::Done(Lsn::NONE))
                    }
                    EngineOp::Delete(key) => self.delete(&key).map(|_| OpOutcome::Done(Lsn::NONE)),
                    EngineOp::Cas { key, expected, new } => self
                        .cas(key, expected.as_ref(), new)
                        .map(|_| OpOutcome::Done(Lsn::NONE)),
                    // Inline get loop, not `self.multi_get`: the trait
                    // default of the un-overridden `multi_get` routes
                    // back through `apply_batch` and would recurse.
                    EngineOp::MultiGet(keys) => keys
                        .iter()
                        .map(|k| self.get(k))
                        .collect::<Result<Vec<_>>>()
                        .map(OpOutcome::Values),
                    EngineOp::MultiPut(pairs) => {
                        self.multi_put(pairs).map(|_| OpOutcome::Done(Lsn::NONE))
                    }
                    EngineOp::Scan { start, end, limit } => {
                        self.scan(&start, end.as_ref(), limit).map(OpOutcome::Range)
                    }
                })
                .collect()
        }
        fn sync(&self) -> Result<()> {
            self.syncs.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn resident_bytes(&self) -> u64 {
            self.map
                .lock()
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum()
        }
        fn label(&self) -> String {
            "probe".into()
        }
    }

    fn k(i: usize) -> Key {
        Key::from(format!("key-{i:05}"))
    }

    fn v(i: usize) -> Value {
        Value::from(format!("val-{i}"))
    }

    #[test]
    fn pipelined_roundtrip_all_request_kinds() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine, FrontendConfig::default());
        for i in 0..200 {
            fe.put(k(i), v(i)).unwrap();
        }
        for i in 0..200 {
            assert_eq!(fe.get(&k(i)).unwrap(), Some(v(i)));
        }
        fe.delete(&k(0)).unwrap();
        assert_eq!(fe.get(&k(0)).unwrap(), None);
        // CAS through the pipeline.
        fe.cas(k(1), Some(&v(1)), Value::from("swapped")).unwrap();
        assert_eq!(fe.get(&k(1)).unwrap(), Some(Value::from("swapped")));
        assert_eq!(
            fe.cas(k(1), Some(&v(999)), Value::from("nope")),
            Err(Error::CasMismatch)
        );
        fe.shutdown();
    }

    #[test]
    fn scan_rides_the_pipelined_batch_path() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine.clone(), FrontendConfig::with_shards(1));
        // Pipelined: interleave writes and scans on one shard so the
        // scan is one op inside a drained batch, ordered after the
        // writes submitted before it.
        let mut tickets = Vec::new();
        for i in 0..50 {
            tickets.push((None, fe.submit(Request::Put(k(i), v(i)))));
        }
        tickets.push((
            Some(50),
            fe.submit(Request::Scan {
                start: k(0),
                end: Some(k(50)),
                limit: usize::MAX,
            }),
        ));
        tickets.push((None, fe.submit(Request::Delete(k(10)))));
        tickets.push((
            Some(49),
            fe.submit(Request::Scan {
                start: k(0),
                end: None,
                limit: usize::MAX,
            }),
        ));
        for (expect, t) in tickets {
            match (expect, t.wait().unwrap()) {
                (Some(n), Response::Range(rows)) => {
                    assert_eq!(rows.len(), n, "scan saw the writes submitted before it");
                    assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "rows key-ordered");
                }
                (None, Response::Done(_)) => {}
                (e, r) => panic!("unexpected outcome {e:?} {r:?}"),
            }
        }
        // Convenience wrapper + limit truncation.
        let got = fe.scan(&k(20), Some(&k(30)), 3).unwrap();
        assert_eq!(
            got,
            vec![(k(20), v(20)), (k(21), v(21)), (k(22), v(22))],
            "limit truncates in key order"
        );
        // Scans lowered into batches, not per-op engine calls.
        assert!(engine.apply_batches.load(Ordering::Relaxed) > 0);
        fe.shutdown();
    }

    #[test]
    fn multi_ops_split_by_shard_and_reassemble_in_order() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine, FrontendConfig::with_shards(4));
        let pairs: Vec<(Key, Value)> = (0..64).map(|i| (k(i), v(i))).collect();
        fe.multi_put(pairs).unwrap();
        // Interleave hits and misses to check positional alignment.
        let keys: Vec<Key> = (0..128).map(k).collect();
        let got = fe.multi_get(&keys).unwrap();
        assert_eq!(got.len(), 128);
        for (i, item) in got.iter().enumerate() {
            if i < 64 {
                assert_eq!(item.as_ref(), Some(&v(i)), "key {i} should hit");
            } else {
                assert!(item.is_none(), "key {i} should miss");
            }
        }
        fe.shutdown();
    }

    #[test]
    fn group_commit_syncs_once_per_batch_not_per_write() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(
            engine.clone(),
            FrontendConfig {
                shards: 1,
                ..FrontendConfig::default()
            },
        );
        // Pipelined burst: tickets awaited only at the end, so the
        // single shard worker sees deep batches.
        let tickets: Vec<Ticket> = (0..1000)
            .map(|i| fe.submit(Request::Put(k(i), v(i))))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let syncs = engine.syncs.load(Ordering::Relaxed);
        let puts = engine.puts.load(Ordering::Relaxed);
        assert_eq!(puts, 1000);
        assert!(
            syncs < 1000 / 2,
            "group commit must amortize syncs: {syncs} syncs for {puts} puts"
        );
        assert!(syncs > 0, "dirty batches must sync");
        assert_eq!(fe.stats().snapshot().group_syncs, syncs);
        fe.shutdown();
    }

    #[test]
    fn per_op_mode_syncs_every_write() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(
            engine.clone(),
            FrontendConfig {
                shards: 1,
                group_commit: false,
                ..FrontendConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..100)
            .map(|i| fe.submit(Request::Put(k(i), v(i))))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(engine.syncs.load(Ordering::Relaxed), 100);
        assert_eq!(fe.stats().snapshot().per_op_syncs, 100);
        fe.shutdown();
    }

    #[test]
    fn adjacent_writes_coalesce_into_multi_put() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(
            engine.clone(),
            FrontendConfig {
                shards: 1,
                ..FrontendConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..500)
            .map(|i| fe.submit(Request::Put(k(i), v(i))))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let calls = engine.multi_puts.load(Ordering::Relaxed);
        assert_eq!(engine.puts.load(Ordering::Relaxed), 500);
        assert!(
            calls < 500 / 2,
            "coalescing must batch engine round-trips: {calls} multi_puts for 500 puts"
        );
        assert!(fe.stats().snapshot().coalesced_puts > 0);
        fe.shutdown();
    }

    #[test]
    fn reads_are_not_reordered_past_writes_on_one_shard() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine, FrontendConfig::with_shards(1));
        let key = Key::from("rw-order");
        let mut tickets = Vec::new();
        for round in 0..50 {
            tickets.push((
                None,
                fe.submit(Request::Put(key.clone(), Value::from(format!("{round}")))),
            ));
            tickets.push((Some(round), fe.submit(Request::Get(key.clone()))));
        }
        for (expect, t) in tickets {
            match (expect, t.wait().unwrap()) {
                (Some(round), Response::Value(got)) => {
                    assert_eq!(got, Some(Value::from(format!("{round}"))));
                }
                (None, Response::Done(_)) => {}
                (e, r) => panic!("unexpected outcome {e:?} {r:?}"),
            }
        }
        fe.shutdown();
    }

    #[test]
    fn try_submit_sheds_load_when_shard_saturates() {
        let engine = ProbeEngine::slow(Duration::from_millis(20));
        let fe = Frontend::start(
            engine,
            FrontendConfig {
                shards: 1,
                queue_capacity: 8,
                max_batch: 4,
                ..FrontendConfig::default()
            },
        );
        // Fill the queue faster than the slow engine drains it.
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for i in 0..64 {
            match fe.try_submit(Request::Put(k(i), v(i))) {
                Ok(t) => accepted.push(t),
                Err(e @ Error::Backpressure { .. }) => {
                    // The shed carries a retry-after hint: the refusing
                    // queue's depth, at least the configured capacity.
                    assert!(
                        e.queue_depth() >= Some(8),
                        "backpressure must carry the queue depth, got {e:?}"
                    );
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(rejected > 0, "saturated shard must shed load");
        assert_eq!(fe.stats().snapshot().backpressure_rejections, rejected);
        for t in accepted {
            t.wait().unwrap();
        }
        fe.shutdown();
    }

    #[test]
    fn elastic_controller_boosts_hot_shard_and_shrinks_after() {
        let engine = ProbeEngine::slow(Duration::from_micros(300));
        let fe = Frontend::start(
            engine,
            FrontendConfig {
                shards: 1,
                queue_capacity: 4096,
                max_batch: 1, // force per-request drains so depth persists
                max_workers_per_shard: 4,
                elastic: ElasticConfig {
                    boost_depth: 16,
                    shrink_depth: 2,
                    sample_interval: Duration::from_millis(1),
                    shrink_patience: 3,
                },
                ..FrontendConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..2000).map(|i| fe.submit(Request::Get(k(i)))).collect();
        let mut peak = 1;
        while fe.total_queue_depth() > 0 {
            peak = peak.max(fe.live_workers(0));
            std::thread::sleep(Duration::from_millis(1));
        }
        for t in tickets {
            t.wait().unwrap();
        }
        assert!(peak > 1, "hot shard never boosted (peak {peak})");
        assert!(fe.stats().snapshot().boosts > 0);
        // Calm period: boosted workers retire.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while fe.live_workers(0) > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(fe.live_workers(0), 1, "boosted workers never retired");
        assert!(fe.stats().snapshot().shrinks > 0);
        fe.shutdown();
    }

    #[test]
    fn multi_shard_batches_rejected_on_raw_submit() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine, FrontendConfig::with_shards(4));
        // Find two keys on different shards.
        let a = k(0);
        let b = (1..)
            .map(k)
            .find(|key| fe.shard_of(key) != fe.shard_of(&a))
            .expect("some key lands on another shard");
        let spanning = Request::MultiPut(vec![(a.clone(), v(0)), (b.clone(), v(1))]);
        assert!(matches!(
            fe.submit(spanning.clone()).wait(),
            Err(Error::InvalidArgument(_))
        ));
        assert!(matches!(
            fe.try_submit(spanning),
            Err(Error::InvalidArgument(_))
        ));
        // Single-shard batches and the splitting helpers still work.
        fe.submit(Request::MultiPut(vec![(a.clone(), v(0))]))
            .wait()
            .unwrap();
        fe.multi_put(vec![(a.clone(), v(2)), (b.clone(), v(3))])
            .unwrap();
        assert_eq!(fe.get(&b).unwrap(), Some(v(3)));
        fe.shutdown();
    }

    #[test]
    fn cross_shard_multi_get_scatters_and_gathers_in_key_order() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine, FrontendConfig::with_shards(4));
        let pairs: Vec<(Key, Value)> = (0..64).map(|i| (k(i), v(i))).collect();
        fe.multi_put(pairs).unwrap();
        // A raw submit of a shard-spanning MultiGet: scattered per
        // shard, gathered positionally (hits interleaved with misses).
        let keys: Vec<Key> = (0..128).map(k).collect();
        let shards: std::collections::HashSet<usize> =
            keys.iter().map(|key| fe.shard_of(key)).collect();
        assert!(shards.len() > 1, "test needs a spanning key set");
        let ticket = fe.submit(Request::MultiGet(keys.clone()));
        match ticket.wait().unwrap() {
            Response::Values(values) => {
                assert_eq!(values.len(), 128);
                for (i, item) in values.iter().enumerate() {
                    if i < 64 {
                        assert_eq!(item.as_ref(), Some(&v(i)), "key {i} should hit");
                    } else {
                        assert!(item.is_none(), "key {i} should miss");
                    }
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
        // try_submit scatters too.
        let ticket = fe.try_submit(Request::MultiGet(keys)).unwrap();
        assert!(matches!(ticket.wait().unwrap(), Response::Values(_)));
        fe.shutdown();
    }

    #[test]
    fn drained_batch_lowers_to_one_engine_submission() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine.clone(), FrontendConfig::with_shards(1));
        // Pipelined burst of mixed reads and writes: tickets awaited at
        // the end so the single shard worker drains deep batches.
        let tickets: Vec<Ticket> = (0..600)
            .map(|i| {
                if i % 3 == 0 {
                    fe.submit(Request::Get(k(i)))
                } else {
                    fe.submit(Request::Put(k(i), v(i)))
                }
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let submissions = engine.apply_batches.load(Ordering::Relaxed);
        let batches = fe.stats().snapshot().batches;
        assert_eq!(
            submissions, batches,
            "each drained batch must make exactly one apply_batch call"
        );
        assert!(
            submissions < 600 / 2,
            "pipelined burst should amortize engine submissions: {submissions}"
        );
        fe.shutdown();
    }

    #[test]
    fn frontend_apply_batch_pipelines_and_preserves_order() {
        use tb_common::{EngineOp, Lsn, OpOutcome};
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine, FrontendConfig::with_shards(2));
        let key = Key::from("batch-order");
        let outcomes = KvEngine::apply_batch(
            &fe,
            vec![
                EngineOp::Get(key.clone()),
                EngineOp::Put(key.clone(), Value::from("1")),
                EngineOp::Get(key.clone()),
                EngineOp::Cas {
                    key: key.clone(),
                    expected: Some(Value::from("1")),
                    new: Value::from("2"),
                },
                EngineOp::Cas {
                    key: key.clone(),
                    expected: Some(Value::from("1")),
                    new: Value::from("3"),
                },
                EngineOp::MultiGet(vec![key.clone(), Key::from("missing")]),
                EngineOp::Delete(key.clone()),
                EngineOp::Get(key.clone()),
            ],
        );
        assert_eq!(outcomes[0], Ok(OpOutcome::Value(None)));
        assert_eq!(outcomes[1], Ok(OpOutcome::Done(Lsn::NONE)));
        assert_eq!(outcomes[2], Ok(OpOutcome::Value(Some(Value::from("1")))));
        assert_eq!(outcomes[3], Ok(OpOutcome::Done(Lsn::NONE)));
        assert_eq!(outcomes[4], Err(Error::CasMismatch));
        assert_eq!(
            outcomes[5],
            Ok(OpOutcome::Values(vec![Some(Value::from("2")), None]))
        );
        assert_eq!(outcomes[6], Ok(OpOutcome::Done(Lsn::NONE)));
        assert_eq!(outcomes[7], Ok(OpOutcome::Value(None)));
        fe.shutdown();
    }

    #[test]
    fn stats_snapshot_surfaces_lsm_batch_counters() {
        let dir = tb_common::test_dir("tb-fe-bstats");
        let db = Arc::new(
            tb_lsm::LsmDb::open(tb_lsm::LsmConfig::small_for_tests(dir.path())).expect("open lsm"),
        );
        let fe = Frontend::start(db, FrontendConfig::with_shards(2));
        for i in 0..300 {
            fe.put(k(i), v(i)).unwrap();
        }
        KvEngine::sync(&fe).unwrap(); // flushes nothing, but barriers
        let keys: Vec<Key> = (0..300).map(k).collect();
        let _ = fe.multi_get(&keys).unwrap();
        let snap = fe.stats_snapshot();
        let batch = snap.engine_batch;
        assert!(
            batch.blocks_read + batch.memtable_hits > 0,
            "batched lookups left no trace in the engine counters: {batch:?}"
        );
        // The plain FrontendStats snapshot cannot reach the engine.
        assert_eq!(
            fe.stats().snapshot().engine_batch,
            tb_common::BatchReadStats::default()
        );
        fe.shutdown();
    }

    #[test]
    fn engine_panic_fails_batch_but_frontend_survives() {
        let poison = Key::from("poison-pill");
        let engine = Arc::new(ProbeEngine {
            panic_on: Some(poison.clone()),
            ..ProbeEngine::default()
        });
        let fe = Frontend::start(engine.clone(), FrontendConfig::with_shards(1));
        // The poisoned batch fails (completers dropped by the unwind
        // resolve the tickets), the worker survives.
        let t = fe.submit(Request::Put(poison, v(0)));
        assert!(matches!(t.wait(), Err(Error::Unavailable(_))));
        // Same shard keeps serving afterwards: no hang, no wedge.
        for i in 0..100 {
            fe.put(k(i), v(i)).unwrap();
        }
        assert_eq!(fe.get(&k(42)).unwrap(), Some(v(42)));
        assert_eq!(fe.stats().snapshot().worker_panics, 1);
        fe.shutdown();
    }

    #[test]
    fn barrier_is_bounded_under_sustained_submission() {
        let engine = ProbeEngine::shared();
        let fe = Arc::new(Frontend::start(engine, FrontendConfig::with_shards(2)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let producer_fe = fe.clone();
            let producer_stop = stop.clone();
            s.spawn(move || {
                let mut i = 0usize;
                while !producer_stop.load(Ordering::Relaxed) {
                    let _ = producer_fe.submit(Request::Put(k(i), v(i)));
                    i += 1;
                }
            });
            std::thread::sleep(Duration::from_millis(20));
            // The barrier waits on batches drained up to its marker,
            // not on the producer's endless later traffic.
            let t0 = std::time::Instant::now();
            fe.barrier();
            let elapsed = t0.elapsed();
            stop.store(true, Ordering::Relaxed);
            assert!(
                elapsed < Duration::from_secs(2),
                "barrier livelocked under sustained load ({elapsed:?})"
            );
        });
        fe.shutdown();
    }

    #[test]
    fn sync_barrier_holds_under_boosted_workers() {
        let engine = ProbeEngine::slow(Duration::from_micros(200));
        let fe = Frontend::start(
            engine.clone(),
            FrontendConfig {
                shards: 1,
                max_batch: 8,
                max_workers_per_shard: 4,
                elastic: ElasticConfig {
                    boost_depth: 8,
                    shrink_depth: 1,
                    sample_interval: Duration::from_millis(1),
                    shrink_patience: 3,
                },
                ..FrontendConfig::default()
            },
        );
        // Deep pipelined burst, then sync: with several workers
        // draining the one shard, the barrier must not return while a
        // sibling still holds an earlier-drained batch.
        let tickets: Vec<Ticket> = (0..500)
            .map(|i| fe.submit(Request::Put(k(i), v(i))))
            .collect();
        KvEngine::sync(&fe).unwrap();
        assert_eq!(
            engine.puts.load(Ordering::Relaxed),
            500,
            "sync returned before previously submitted writes were applied"
        );
        for t in tickets {
            t.wait().unwrap();
        }
        fe.shutdown();
    }

    #[test]
    fn frontend_is_a_kv_engine() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine, FrontendConfig::default());
        let dyn_engine: &dyn KvEngine = &fe;
        dyn_engine.put(Key::from("a"), Value::from("1")).unwrap();
        assert_eq!(
            dyn_engine.get(&Key::from("a")).unwrap(),
            Some(Value::from("1"))
        );
        assert_eq!(dyn_engine.label(), "frontend<probe>");
        assert!(dyn_engine.resident_bytes() > 0);
        dyn_engine.sync().unwrap();
        fe.shutdown();
    }

    #[test]
    fn shutdown_completes_queued_work_and_is_idempotent() {
        let engine = ProbeEngine::shared();
        let fe = Frontend::start(engine.clone(), FrontendConfig::with_shards(2));
        let tickets: Vec<Ticket> = (0..300)
            .map(|i| fe.submit(Request::Put(k(i), v(i))))
            .collect();
        fe.shutdown();
        fe.shutdown();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(engine.puts.load(Ordering::Relaxed), 300);
        // Post-shutdown submissions fail fast instead of hanging.
        assert!(matches!(
            fe.submit(Request::Get(k(0))).wait(),
            Err(Error::Unavailable(_))
        ));
        assert!(matches!(
            fe.try_submit(Request::Get(k(0))),
            Err(Error::Unavailable(_))
        ));
    }

    #[test]
    fn concurrent_producers_land_all_writes() {
        let engine = ProbeEngine::shared();
        let fe = Arc::new(Frontend::start(engine, FrontendConfig::with_shards(4)));
        std::thread::scope(|s| {
            for t in 0..8 {
                let fe = fe.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        fe.put(Key::from(format!("t{t}-{i}")), v(i)).unwrap();
                    }
                });
            }
        });
        for t in 0..8 {
            for i in 0..250 {
                assert_eq!(fe.get(&Key::from(format!("t{t}-{i}"))).unwrap(), Some(v(i)));
            }
        }
        let snap = fe.stats().snapshot();
        assert_eq!(snap.submitted, snap.completed);
        fe.shutdown();
    }

    #[test]
    fn group_commit_acks_after_durability_on_real_lsm() {
        let dir = tb_common::test_dir("tb-fe-lsm");
        let db = Arc::new(
            tb_lsm::LsmDb::open(tb_lsm::LsmConfig::small_for_tests(dir.path())).expect("open lsm"),
        );
        let fe = Frontend::start(db, FrontendConfig::with_shards(2));
        let tickets: Vec<Ticket> = (0..500)
            .map(|i| fe.submit(Request::Put(k(i), v(i))))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        fe.shutdown();
        // Acked writes must be durable: reopen and read everything back.
        let db =
            tb_lsm::LsmDb::open(tb_lsm::LsmConfig::small_for_tests(dir.path())).expect("reopen");
        for i in 0..500 {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i)), "key {i} lost");
        }
    }

    #[test]
    fn boosted_workers_share_the_engine_read_pool() {
        // One pooled LSM engine behind a boosting front-end: every
        // worker draining this shard — boosted siblings included —
        // lowers its batches onto the same `apply_batch` path and so
        // shares the engine's one read pool; the pool counters surface
        // through the front-end's stats snapshot.
        let dir = tb_common::test_dir("tb-fe-pool");
        let mut config = tb_lsm::LsmConfig::small_for_tests(dir.path());
        config.read_pool_threads = 2;
        let db = Arc::new(tb_lsm::LsmDb::open(config).expect("open lsm"));
        for i in 0..400 {
            db.put(k(i), v(i)).unwrap();
        }
        db.flush().unwrap();
        let fe = Arc::new(Frontend::start(
            db,
            FrontendConfig {
                shards: 2,
                max_batch: 32,
                max_workers_per_shard: 3,
                elastic: ElasticConfig {
                    boost_depth: 8,
                    shrink_depth: 1,
                    sample_interval: Duration::from_millis(1),
                    shrink_patience: 3,
                },
                ..FrontendConfig::default()
            },
        ));
        // Concurrent batched readers pile depth onto the shards so the
        // controller boosts, while every drained batch's staged reads
        // flow through the shared pool.
        std::thread::scope(|s| {
            for t in 0..4 {
                let fe = fe.clone();
                s.spawn(move || {
                    for round in 0..30 {
                        let keys: Vec<Key> =
                            (0..400).skip((t + round) % 7).step_by(3).map(k).collect();
                        let got = fe.multi_get(&keys).unwrap();
                        for (key, item) in keys.iter().zip(got) {
                            assert!(item.is_some(), "missing {key:?}");
                        }
                    }
                });
            }
        });
        let batch = fe.stats_snapshot().engine_batch;
        assert!(
            batch.parallel_fetches > 0,
            "no staged read ever reached the shared pool: {batch:?}"
        );
        assert_eq!(
            batch.parallel_fetches, batch.blocks_read,
            "with a pool configured every staged fetch is pooled"
        );
        assert!(
            batch.read_pool_queue_depth > 0,
            "queue-depth high-water mark never moved: {batch:?}"
        );
        fe.shutdown();
    }
}
