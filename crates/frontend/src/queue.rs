//! Bounded per-shard submission queue with batch drain.
//!
//! Unlike a plain channel, the consumer side takes *batches*: one lock
//! acquisition hands a worker up to `max` queued requests, which is
//! what makes write coalescing and group commit possible. The producer
//! side offers both blocking `push` (callers stall when the shard
//! saturates — natural backpressure) and non-blocking `try_push`
//! (callers get an explicit full/closed signal to shed load).

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Why a `try_push` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushRefused {
    /// Queue at capacity: backpressure, retry later.
    Full,
    /// Queue closed: the front-end is shutting down.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Batches handed out by `drain` so far.
    drains_started: u64,
    /// Batches whose processing was reported via `drain_done`.
    drains_finished: u64,
}

pub(crate) struct SubmitQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> SubmitQueue<T> {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                drains_started: 0,
                drains_finished: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while the queue is full; returns the item back when the
    /// queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock();
        loop {
            if s.closed {
                return Err(item);
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut s);
        }
    }

    /// Non-blocking push; refuses with the reason and the item.
    pub fn try_push(&self, item: T) -> Result<(), (PushRefused, T)> {
        let mut s = self.state.lock();
        if s.closed {
            return Err((PushRefused::Closed, item));
        }
        if s.items.len() >= self.capacity {
            return Err((PushRefused::Full, item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Takes up to `max` items, waiting at most `wait` for the first
    /// one. Returns an empty batch on timeout or when the queue is
    /// closed and drained. A non-empty batch counts as an active drain
    /// until the caller reports [`SubmitQueue::drain_done`].
    pub fn drain(&self, max: usize, wait: Duration) -> Vec<T> {
        let deadline = Instant::now() + wait;
        let mut s = self.state.lock();
        while s.items.is_empty() {
            if s.closed {
                return Vec::new();
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            self.not_empty.wait_for(&mut s, deadline - now);
        }
        let take = s.items.len().min(max.max(1));
        let batch: Vec<T> = s.items.drain(..take).collect();
        s.drains_started += 1;
        drop(s);
        // A whole batch left: there may be both blocked producers and
        // (boosted) sibling consumers to wake.
        self.not_full.notify_all();
        batch
    }

    /// Marks a previously drained batch as fully processed.
    pub fn drain_done(&self) {
        let mut s = self.state.lock();
        debug_assert!(
            s.drains_finished < s.drains_started,
            "drain_done without a drain"
        );
        s.drains_finished += 1;
    }

    /// Batches handed out so far. The queue is FIFO, so once every
    /// drain numbered up to a snapshot of this value has finished,
    /// every request enqueued before the snapshot has been processed —
    /// the bounded condition a barrier waits on (global quiescence
    /// would livelock under sustained submission).
    pub fn drains_started(&self) -> u64 {
        self.state.lock().drains_started
    }

    /// Batches reported finished so far.
    pub fn drains_finished(&self) -> u64 {
        self.state.lock().drains_finished
    }

    /// Items currently queued (the elastic controller's load signal).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Closes the queue: pushes fail from now on, waiters wake.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_roundtrip_in_order() {
        let q = SubmitQueue::new(16);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        let batch = q.drain(3, Duration::from_millis(1));
        assert_eq!(batch, vec![0, 1, 2]);
        assert_eq!(q.drain(8, Duration::from_millis(1)), vec![3, 4]);
    }

    #[test]
    fn try_push_reports_full_then_closed() {
        let q = SubmitQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((PushRefused::Full, 3)));
        q.close();
        assert_eq!(q.try_push(4), Err((PushRefused::Closed, 4)));
    }

    #[test]
    fn drain_epochs_track_in_flight_batches() {
        let q = SubmitQueue::new(8);
        assert_eq!((q.drains_started(), q.drains_finished()), (0, 0));
        q.push(1).unwrap();
        let batch = q.drain(8, Duration::from_millis(1));
        assert_eq!(batch, vec![1]);
        assert_eq!(
            (q.drains_started(), q.drains_finished()),
            (1, 0),
            "drained-but-unprocessed batch is in flight"
        );
        q.drain_done();
        assert_eq!((q.drains_started(), q.drains_finished()), (1, 1));
        // Empty drains don't consume an epoch.
        assert!(q.drain(8, Duration::from_millis(1)).is_empty());
        assert_eq!(q.drains_started(), 1);
    }

    #[test]
    fn drain_times_out_empty() {
        let q: SubmitQueue<u8> = SubmitQueue::new(4);
        let t0 = Instant::now();
        assert!(q.drain(4, Duration::from_millis(5)).is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn blocked_push_resumes_after_drain() {
        let q = std::sync::Arc::new(SubmitQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.push(1).is_ok());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(q.drain(1, Duration::from_millis(1)), vec![0]);
        assert!(h.join().unwrap());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = std::sync::Arc::new(SubmitQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert_eq!(h.join().unwrap(), Err(1));
        // Close drains nothing: the queued item is still deliverable.
        assert_eq!(q.drain(4, Duration::from_millis(1)), vec![0]);
    }
}
