//! Per-request completion handles.
//!
//! A [`Ticket`] is the caller's half of a submitted request: it blocks
//! (or polls) until the owning shard worker resolves the request. The
//! worker holds the matching [`Completer`]; dropping an uncompleted
//! completer fails the ticket, so a caller can never hang on a request
//! the front-end lost (e.g. during shutdown).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tb_common::{Error, Key, Lsn, Result, Value};

/// What a completed request resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `Get` result.
    Value(Option<Value>),
    /// `MultiGet` results, aligned with the request's key order.
    Values(Vec<Option<Value>>),
    /// `Scan` result: live `(key, value)` pairs in ascending key order,
    /// truncated to the request's limit.
    Range(Vec<(Key, Value)>),
    /// Write acknowledged — and durable, when the front-end runs in
    /// group-commit mode (the ack is delivered after the batch `sync`).
    /// Carries the covering [`Lsn`] per the `tb_common::engine` LSN/ack
    /// contract ([`Lsn::NONE`] for LSN-less engines); a gathered
    /// multi-part write acks the max across its parts.
    Done(Lsn),
}

struct Shared {
    /// `Some` once resolved; the instant is the completion time, kept
    /// for open-loop latency measurement.
    outcome: Mutex<Option<(Result<Response>, Instant)>>,
    cv: Condvar,
}

/// Caller-side handle for one submitted request.
pub struct Ticket {
    inner: TicketInner,
}

enum TicketInner {
    /// One queued request, resolved by its [`Completer`].
    Single(Arc<Shared>),
    /// A scattered cross-shard `MultiGet`: each part is a per-shard
    /// sub-ticket answering the listed positions of the key-ordered
    /// response; the gather assembles them on demand.
    Gather {
        parts: Vec<(Vec<usize>, Ticket)>,
        len: usize,
    },
    /// A scattered cross-shard write (`MultiPut` split by shard):
    /// resolves [`Response::Done`] once every part has; the first part
    /// error fails the whole ticket. Parts commit independently —
    /// cross-shard write atomicity is out of scope.
    GatherAll { parts: Vec<Ticket> },
}

/// Worker-side handle; resolves the ticket exactly once.
pub(crate) struct Completer {
    shared: Arc<Shared>,
}

/// Builds a linked ticket/completer pair.
pub(crate) fn ticket() -> (Ticket, Completer) {
    let shared = Arc::new(Shared {
        outcome: Mutex::new(None),
        cv: Condvar::new(),
    });
    (
        Ticket {
            inner: TicketInner::Single(shared.clone()),
        },
        Completer { shared },
    )
}

/// Builds a gather ticket over per-shard sub-tickets: `parts[i]` is
/// `(response positions, sub-ticket)` and `len` is the full response
/// arity. The gather resolves to [`Response::Values`] in the original
/// key order once every part has.
pub(crate) fn gather(parts: Vec<(Vec<usize>, Ticket)>, len: usize) -> Ticket {
    Ticket {
        inner: TicketInner::Gather { parts, len },
    }
}

/// Builds a write gather: resolves `Done` after every part acked.
pub(crate) fn gather_all(parts: Vec<Ticket>) -> Ticket {
    Ticket {
        inner: TicketInner::GatherAll { parts },
    }
}

/// Assembles a gather's parts (each already resolved or resolvable via
/// `get`) into one key-ordered `Values` response. The first part error
/// fails the whole gather.
fn assemble(
    parts: &[(Vec<usize>, Ticket)],
    len: usize,
    get: impl Fn(&Ticket) -> Result<Response>,
) -> Result<Response> {
    let mut out = vec![None; len];
    for (slots, part) in parts {
        match get(part)? {
            Response::Values(values) => {
                for (slot, v) in slots.iter().zip(values) {
                    out[*slot] = v;
                }
            }
            other => {
                return Err(Error::Internal(format!(
                    "gather part resolved to {other:?}"
                )))
            }
        }
    }
    Ok(Response::Values(out))
}

impl Ticket {
    /// Blocks until the request resolves.
    pub fn wait(&self) -> Result<Response> {
        match &self.inner {
            TicketInner::Single(shared) => {
                let mut outcome = shared.outcome.lock();
                while outcome.is_none() {
                    shared.cv.wait(&mut outcome);
                }
                outcome.as_ref().expect("resolved").0.clone()
            }
            TicketInner::Gather { parts, len } => assemble(parts, *len, |t| t.wait()),
            TicketInner::GatherAll { parts } => {
                let mut lsn = Lsn::NONE;
                for part in parts {
                    if let Response::Done(l) = part.wait()? {
                        lsn = lsn.max(l);
                    }
                }
                Ok(Response::Done(lsn))
            }
        }
    }

    /// Blocks at most `timeout`; `None` when still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response>> {
        let deadline = Instant::now() + timeout;
        match &self.inner {
            TicketInner::Single(shared) => {
                let mut outcome = shared.outcome.lock();
                while outcome.is_none() {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    shared.cv.wait_for(&mut outcome, deadline - now);
                }
                Some(outcome.as_ref().expect("resolved").0.clone())
            }
            TicketInner::Gather { parts, len } => {
                for (_, part) in parts {
                    let remaining = deadline.checked_duration_since(Instant::now())?;
                    // Errors surface from `assemble` below; here only
                    // "resolved at all vs timed out" matters.
                    let _ = part.wait_timeout(remaining)?;
                }
                Some(assemble(parts, *len, |t| t.wait()))
            }
            TicketInner::GatherAll { parts } => {
                let mut lsn = Lsn::NONE;
                for part in parts {
                    let remaining = deadline.checked_duration_since(Instant::now())?;
                    match part.wait_timeout(remaining)? {
                        Err(e) => return Some(Err(e)),
                        Ok(Response::Done(l)) => lsn = lsn.max(l),
                        Ok(_) => {}
                    }
                }
                Some(Ok(Response::Done(lsn)))
            }
        }
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<Result<Response>> {
        match &self.inner {
            TicketInner::Single(shared) => shared.outcome.lock().as_ref().map(|(r, _)| r.clone()),
            TicketInner::Gather { parts, len } => {
                if parts.iter().all(|(_, t)| t.is_done()) {
                    Some(assemble(parts, *len, |t| t.wait()))
                } else {
                    None
                }
            }
            TicketInner::GatherAll { parts } => {
                if parts.iter().all(|t| t.is_done()) {
                    Some(self.wait())
                } else {
                    None
                }
            }
        }
    }

    /// True once the request has resolved.
    pub fn is_done(&self) -> bool {
        match &self.inner {
            TicketInner::Single(shared) => shared.outcome.lock().is_some(),
            TicketInner::Gather { parts, .. } => parts.iter().all(|(_, t)| t.is_done()),
            TicketInner::GatherAll { parts } => parts.iter().all(|t| t.is_done()),
        }
    }

    /// When the request resolved (open-loop latency accounting);
    /// `None` while pending. A gather resolves when its last part does.
    pub fn completed_at(&self) -> Option<Instant> {
        match &self.inner {
            TicketInner::Single(shared) => shared.outcome.lock().as_ref().map(|(_, t)| *t),
            TicketInner::Gather { parts, .. } => {
                Self::latest_completion(parts.iter().map(|(_, t)| t))
            }
            TicketInner::GatherAll { parts } => Self::latest_completion(parts.iter()),
        }
    }

    fn latest_completion<'a>(parts: impl Iterator<Item = &'a Ticket>) -> Option<Instant> {
        let mut latest = None;
        for part in parts {
            let at = part.completed_at()?;
            latest = Some(latest.map_or(at, |l: Instant| l.max(at)));
        }
        latest
    }
}

impl Completer {
    /// Resolves the ticket and wakes every waiter.
    pub fn complete(self, result: Result<Response>) {
        self.resolve(result);
    }

    fn resolve(&self, result: Result<Response>) {
        let mut outcome = self.shared.outcome.lock();
        if outcome.is_none() {
            *outcome = Some((result, Instant::now()));
            drop(outcome);
            self.shared.cv.notify_all();
        }
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        // A completer dropped without resolving (worker panicked, queue
        // discarded at shutdown) must not strand its caller.
        self.resolve(Err(Error::Unavailable(
            "request dropped by front-end".into(),
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_sees_completion_from_another_thread() {
        let (t, c) = ticket();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            c.complete(Ok(Response::Done(Lsn(7))));
        });
        assert_eq!(t.wait().unwrap(), Response::Done(Lsn(7)));
        assert!(t.is_done());
        assert!(t.completed_at().is_some());
        h.join().unwrap();
    }

    #[test]
    fn try_get_polls() {
        let (t, c) = ticket();
        assert!(t.try_get().is_none());
        c.complete(Ok(Response::Value(None)));
        assert_eq!(t.try_get().unwrap().unwrap(), Response::Value(None));
    }

    #[test]
    fn dropped_completer_fails_ticket() {
        let (t, c) = ticket();
        drop(c);
        assert!(matches!(t.wait(), Err(Error::Unavailable(_))));
    }

    #[test]
    fn wait_timeout_expires_then_resolves() {
        let (t, c) = ticket();
        assert!(t.wait_timeout(Duration::from_millis(2)).is_none());
        c.complete(Ok(Response::Done(Lsn::NONE)));
        assert!(t.wait_timeout(Duration::from_millis(2)).is_some());
    }

    #[test]
    fn gather_assembles_parts_in_key_order() {
        let (t1, c1) = ticket();
        let (t2, c2) = ticket();
        let g = gather(vec![(vec![0, 2], t1), (vec![1], t2)], 3);
        assert!(!g.is_done());
        assert!(g.try_get().is_none());
        c1.complete(Ok(Response::Values(vec![
            Some(Value::from("a")),
            Some(Value::from("c")),
        ])));
        // One part still pending: the gather is too.
        assert!(g.wait_timeout(Duration::from_millis(1)).is_none());
        c2.complete(Ok(Response::Values(vec![None])));
        assert_eq!(
            g.wait().unwrap(),
            Response::Values(vec![Some(Value::from("a")), None, Some(Value::from("c"))])
        );
        assert!(g.is_done());
        assert!(g.completed_at().is_some());
        assert!(g.try_get().is_some());
    }

    #[test]
    fn gather_part_failure_fails_the_gather() {
        let (t1, c1) = ticket();
        let (t2, c2) = ticket();
        let g = gather(vec![(vec![0], t1), (vec![1], t2)], 2);
        c1.complete(Ok(Response::Values(vec![None])));
        c2.complete(Err(Error::backpressure("shard full")));
        assert!(matches!(g.wait(), Err(Error::Backpressure { .. })));
    }

    #[test]
    fn gather_all_acks_the_max_part_lsn() {
        let (t1, c1) = ticket();
        let (t2, c2) = ticket();
        let g = gather_all(vec![t1, t2]);
        c1.complete(Ok(Response::Done(Lsn(9))));
        c2.complete(Ok(Response::Done(Lsn(3))));
        // The covering LSN of a multi-part write is the max part LSN.
        assert_eq!(g.wait().unwrap(), Response::Done(Lsn(9)));
        assert_eq!(
            g.wait_timeout(Duration::from_millis(1)).unwrap().unwrap(),
            Response::Done(Lsn(9))
        );
    }

    #[test]
    fn first_completion_wins() {
        let (t, c) = ticket();
        c.complete(Err(Error::CasMismatch));
        // Drop-resolution must not overwrite the explicit outcome.
        assert_eq!(t.wait(), Err(Error::CasMismatch));
    }
}
