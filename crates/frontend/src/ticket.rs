//! Per-request completion handles.
//!
//! A [`Ticket`] is the caller's half of a submitted request: it blocks
//! (or polls) until the owning shard worker resolves the request. The
//! worker holds the matching [`Completer`]; dropping an uncompleted
//! completer fails the ticket, so a caller can never hang on a request
//! the front-end lost (e.g. during shutdown).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tb_common::{Error, Result, Value};

/// What a completed request resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `Get` result.
    Value(Option<Value>),
    /// `MultiGet` results, aligned with the request's key order.
    Values(Vec<Option<Value>>),
    /// Write acknowledged — and durable, when the front-end runs in
    /// group-commit mode (the ack is delivered after the batch `sync`).
    Done,
}

struct Shared {
    /// `Some` once resolved; the instant is the completion time, kept
    /// for open-loop latency measurement.
    outcome: Mutex<Option<(Result<Response>, Instant)>>,
    cv: Condvar,
}

/// Caller-side handle for one submitted request.
pub struct Ticket {
    shared: Arc<Shared>,
}

/// Worker-side handle; resolves the ticket exactly once.
pub(crate) struct Completer {
    shared: Arc<Shared>,
}

/// Builds a linked ticket/completer pair.
pub(crate) fn ticket() -> (Ticket, Completer) {
    let shared = Arc::new(Shared {
        outcome: Mutex::new(None),
        cv: Condvar::new(),
    });
    (
        Ticket {
            shared: shared.clone(),
        },
        Completer { shared },
    )
}

impl Ticket {
    /// Blocks until the request resolves.
    pub fn wait(&self) -> Result<Response> {
        let mut outcome = self.shared.outcome.lock();
        while outcome.is_none() {
            self.shared.cv.wait(&mut outcome);
        }
        outcome.as_ref().expect("resolved").0.clone()
    }

    /// Blocks at most `timeout`; `None` when still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response>> {
        let deadline = Instant::now() + timeout;
        let mut outcome = self.shared.outcome.lock();
        while outcome.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared.cv.wait_for(&mut outcome, deadline - now);
        }
        Some(outcome.as_ref().expect("resolved").0.clone())
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<Result<Response>> {
        self.shared.outcome.lock().as_ref().map(|(r, _)| r.clone())
    }

    /// True once the request has resolved.
    pub fn is_done(&self) -> bool {
        self.shared.outcome.lock().is_some()
    }

    /// When the request resolved (open-loop latency accounting);
    /// `None` while pending.
    pub fn completed_at(&self) -> Option<Instant> {
        self.shared.outcome.lock().as_ref().map(|(_, t)| *t)
    }
}

impl Completer {
    /// Resolves the ticket and wakes every waiter.
    pub fn complete(self, result: Result<Response>) {
        self.resolve(result);
    }

    fn resolve(&self, result: Result<Response>) {
        let mut outcome = self.shared.outcome.lock();
        if outcome.is_none() {
            *outcome = Some((result, Instant::now()));
            drop(outcome);
            self.shared.cv.notify_all();
        }
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        // A completer dropped without resolving (worker panicked, queue
        // discarded at shutdown) must not strand its caller.
        self.resolve(Err(Error::Unavailable(
            "request dropped by front-end".into(),
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_sees_completion_from_another_thread() {
        let (t, c) = ticket();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            c.complete(Ok(Response::Done));
        });
        assert_eq!(t.wait().unwrap(), Response::Done);
        assert!(t.is_done());
        assert!(t.completed_at().is_some());
        h.join().unwrap();
    }

    #[test]
    fn try_get_polls() {
        let (t, c) = ticket();
        assert!(t.try_get().is_none());
        c.complete(Ok(Response::Value(None)));
        assert_eq!(t.try_get().unwrap().unwrap(), Response::Value(None));
    }

    #[test]
    fn dropped_completer_fails_ticket() {
        let (t, c) = ticket();
        drop(c);
        assert!(matches!(t.wait(), Err(Error::Unavailable(_))));
    }

    #[test]
    fn wait_timeout_expires_then_resolves() {
        let (t, c) = ticket();
        assert!(t.wait_timeout(Duration::from_millis(2)).is_none());
        c.complete(Ok(Response::Done));
        assert!(t.wait_timeout(Duration::from_millis(2)).is_some());
    }

    #[test]
    fn first_completion_wins() {
        let (t, c) = ticket();
        c.complete(Err(Error::CasMismatch));
        // Drop-resolution must not overwrite the explicit outcome.
        assert_eq!(t.wait(), Err(Error::CasMismatch));
    }
}
