//! The pipelined request front-end.
//!
//! One [`Frontend`] sits between many client threads and a single
//! [`KvEngine`]. Requests hash to a shard (the cluster routing hash,
//! [`slot_for_key`]), enter that shard's bounded submission queue, and
//! are drained in batches by the shard's worker, which:
//!
//! * coalesces consecutive writes into one `multi_put` round-trip
//!   (TierBase §4.1.2 batches the remote tier the same way), and
//! * group-commits: one `sync()` per dirty batch instead of one per
//!   write, acknowledging the writes only after the batch is durable.
//!
//! Backpressure is the queue bound: blocking `submit` stalls producers
//! when a shard saturates, `try_submit` sheds load with
//! [`Error::Backpressure`]. Under sustained depth the elastic
//! controller (§4.4 watermark policy, configured by
//! [`ElasticConfig`]) boosts extra drain workers for the hot shard and
//! retires them when the burst subsides.

use crate::queue::{PushRefused, SubmitQueue};
use crate::stats::FrontendStats;
use crate::ticket::{ticket, Completer, Response, Ticket};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tb_common::{slot_for_key, Error, Key, KvEngine, Result, Value};
use tb_elastic::ElasticConfig;

/// How long an idle worker parks between queue polls.
const DRAIN_WAIT: Duration = Duration::from_millis(5);

/// One operation submitted to the front-end.
#[derive(Debug, Clone)]
pub enum Request {
    Get(Key),
    Put(Key, Value),
    Delete(Key),
    /// Batched lookups for one shard; the response aligns with key order.
    MultiGet(Vec<Key>),
    /// Batched writes for one shard.
    MultiPut(Vec<(Key, Value)>),
    Cas {
        key: Key,
        expected: Option<Value>,
        new: Value,
    },
}

impl Request {
    /// Key that decides the owning shard. Multi-key requests route by
    /// their first key — [`Frontend::multi_get`]/[`Frontend::multi_put`]
    /// split by shard before submitting, so worker-visible multi
    /// requests are single-shard already.
    fn routing_key(&self) -> Option<&Key> {
        match self {
            Request::Get(k) | Request::Put(k, _) | Request::Delete(k) => Some(k),
            Request::MultiGet(keys) => keys.first(),
            Request::MultiPut(pairs) => pairs.first().map(|(k, _)| k),
            Request::Cas { key, .. } => Some(key),
        }
    }

    fn is_put_like(&self) -> bool {
        matches!(self, Request::Put(..) | Request::MultiPut(..))
    }
}

/// Front-end tuning.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Submission queues / event loops.
    pub shards: usize,
    /// Bound of each shard queue (the backpressure watermark).
    pub queue_capacity: usize,
    /// Most requests a worker takes per drain.
    pub max_batch: usize,
    /// `true`: one `sync()` per dirty batch, writes acknowledged after
    /// it; `false`: every write is applied and synced individually (the
    /// per-op-durability baseline the bench compares against).
    pub group_commit: bool,
    /// Workers a hot shard may boost to (1 = boosting disabled).
    pub max_workers_per_shard: usize,
    /// Boost/shrink watermarks for the elastic controller.
    pub elastic: ElasticConfig,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            max_batch: 64,
            group_commit: true,
            max_workers_per_shard: 1,
            elastic: ElasticConfig::default(),
        }
    }
}

impl FrontendConfig {
    /// Config with `n` shards, otherwise defaults.
    pub fn with_shards(n: usize) -> Self {
        Self {
            shards: n.max(1),
            ..Self::default()
        }
    }
}

struct ShardState {
    queue: SubmitQueue<(Request, Completer)>,
    /// Workers this shard should run (elastic boost lever).
    target_workers: AtomicUsize,
    /// Workers currently draining this shard.
    live_workers: AtomicUsize,
}

struct Inner {
    engine: Arc<dyn KvEngine>,
    shards: Vec<ShardState>,
    config: FrontendConfig,
    shutdown: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
    stats: FrontendStats,
}

/// Pipelined, sharded serving layer over one [`KvEngine`].
pub struct Frontend {
    inner: Arc<Inner>,
    controller: Mutex<Option<JoinHandle<()>>>,
    down: AtomicBool,
}

impl Frontend {
    /// Starts the shard workers (and, when boosting is enabled, the
    /// elastic controller) over `engine`.
    pub fn start(engine: Arc<dyn KvEngine>, mut config: FrontendConfig) -> Self {
        config.shards = config.shards.max(1);
        config.max_workers_per_shard = config.max_workers_per_shard.max(1);
        let inner = Arc::new(Inner {
            engine,
            shards: (0..config.shards)
                .map(|_| ShardState {
                    queue: SubmitQueue::new(config.queue_capacity),
                    target_workers: AtomicUsize::new(1),
                    live_workers: AtomicUsize::new(0),
                })
                .collect(),
            config: config.clone(),
            shutdown: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
            stats: FrontendStats::default(),
        });
        for shard in 0..config.shards {
            spawn_worker(&inner, shard);
        }
        let controller = (config.max_workers_per_shard > 1).then(|| {
            let inner = inner.clone();
            std::thread::spawn(move || controller_loop(inner))
        });
        Self {
            inner,
            controller: Mutex::new(controller),
            down: AtomicBool::new(false),
        }
    }

    /// Operational counters.
    pub fn stats(&self) -> &FrontendStats {
        &self.inner.stats
    }

    /// Shard a key routes to.
    pub fn shard_of(&self, key: &Key) -> usize {
        slot_for_key(key.as_slice()) as usize % self.inner.shards.len()
    }

    /// Queue depth of one shard.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.inner.shards[shard].queue.len()
    }

    /// Requests queued across all shards.
    pub fn total_queue_depth(&self) -> usize {
        self.inner.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Workers currently draining one shard.
    pub fn live_workers(&self, shard: usize) -> usize {
        self.inner.shards[shard].live_workers.load(Ordering::SeqCst)
    }

    /// Submits a request, blocking while the target shard queue is
    /// full — backpressure propagates to the producer. A multi-key
    /// request whose keys span shards resolves to
    /// [`Error::InvalidArgument`]: it would land on one shard's queue
    /// and break the per-shard write ordering other callers rely on
    /// (use [`Frontend::multi_get`]/[`Frontend::multi_put`], which
    /// split by shard).
    pub fn submit(&self, request: Request) -> Ticket {
        match self.route(&request) {
            Ok(shard) => self.submit_to(shard, request),
            Err(e) => {
                let (t, c) = ticket();
                c.complete(Err(e));
                t
            }
        }
    }

    /// Non-blocking submit; a full shard queue sheds the request with
    /// [`Error::Backpressure`]. Multi-shard batches are rejected like
    /// in [`Frontend::submit`].
    pub fn try_submit(&self, request: Request) -> Result<Ticket> {
        if self.down.load(Ordering::SeqCst) {
            return Err(Error::Unavailable("front-end shut down".into()));
        }
        let shard = self.route(&request)?;
        let (t, c) = ticket();
        match self.inner.shards[shard].queue.try_push((request, c)) {
            Ok(()) => {
                FrontendStats::bump(&self.inner.stats.submitted, 1);
                Ok(t)
            }
            Err((PushRefused::Full, (_, c))) => {
                FrontendStats::bump(&self.inner.stats.backpressure_rejections, 1);
                // Resolve the orphan ticket so nothing can wait on it.
                c.complete(Err(Error::Backpressure(format!(
                    "shard {shard} queue full ({} requests)",
                    self.inner.config.queue_capacity
                ))));
                Err(Error::Backpressure(format!("shard {shard} queue full")))
            }
            Err((PushRefused::Closed, (_, c))) => {
                c.complete(Err(Error::Unavailable("front-end shut down".into())));
                Err(Error::Unavailable("front-end shut down".into()))
            }
        }
    }

    fn route(&self, request: &Request) -> Result<usize> {
        match request {
            Request::MultiGet(keys) => self.single_shard_of(keys.iter()),
            Request::MultiPut(pairs) => self.single_shard_of(pairs.iter().map(|(k, _)| k)),
            _ => Ok(request.routing_key().map(|k| self.shard_of(k)).unwrap_or(0)),
        }
    }

    /// Common shard of a multi-key request, or `InvalidArgument` when
    /// the keys span shards.
    fn single_shard_of<'a>(&self, keys: impl Iterator<Item = &'a Key>) -> Result<usize> {
        let mut shard = None;
        for key in keys {
            let s = self.shard_of(key);
            match shard {
                None => shard = Some(s),
                Some(previous) if previous != s => {
                    return Err(Error::InvalidArgument(
                        "multi-key request spans shards; use Frontend::multi_get/multi_put".into(),
                    ))
                }
                Some(_) => {}
            }
        }
        Ok(shard.unwrap_or(0))
    }

    fn submit_to(&self, shard: usize, request: Request) -> Ticket {
        let (t, c) = ticket();
        // Fail fast once shutdown started: producers must stop feeding
        // the queues or the shutdown drain could spin forever.
        if self.down.load(Ordering::SeqCst) {
            c.complete(Err(Error::Unavailable("front-end shut down".into())));
            return t;
        }
        match self.inner.shards[shard].queue.push((request, c)) {
            Ok(()) => FrontendStats::bump(&self.inner.stats.submitted, 1),
            Err((_, c)) => c.complete(Err(Error::Unavailable("front-end shut down".into()))),
        }
        t
    }

    /// Waits until every request queued *before* the call has been
    /// processed (a barrier per shard). Bounded even under sustained
    /// concurrent submission: it waits only on batches drained up to
    /// its own marker, never on later traffic.
    pub fn barrier(&self) {
        let tickets: Vec<Ticket> = (0..self.inner.shards.len())
            .map(|s| self.submit_to(s, Request::MultiGet(Vec::new())))
            .collect();
        let mut targets = Vec::with_capacity(tickets.len());
        for (s, t) in tickets.into_iter().enumerate() {
            let _ = t.wait();
            // The queue is FIFO, so everything enqueued before this
            // marker was drained in a batch numbered no later than the
            // count observed at marker resolution. With boosted
            // workers some of those batches may still be mid-flight in
            // a sibling; wait for exactly them.
            targets.push((s, self.inner.shards[s].queue.drains_started()));
        }
        for (s, target) in targets {
            while self.inner.shards[s].queue.drains_finished() < target {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    // --- synchronous conveniences -----------------------------------

    /// Pipelined point lookup, awaited.
    pub fn get(&self, key: &Key) -> Result<Option<Value>> {
        match self.submit(Request::Get(key.clone())).wait()? {
            Response::Value(v) => Ok(v),
            other => Err(Error::Internal(format!("get resolved to {other:?}"))),
        }
    }

    /// Pipelined write, awaited (durable in group-commit mode).
    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        self.submit(Request::Put(key, value)).wait().map(|_| ())
    }

    /// Pipelined delete, awaited.
    pub fn delete(&self, key: &Key) -> Result<()> {
        self.submit(Request::Delete(key.clone())).wait().map(|_| ())
    }

    /// Pipelined compare-and-set, awaited.
    pub fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        self.submit(Request::Cas {
            key,
            expected: expected.cloned(),
            new,
        })
        .wait()
        .map(|_| ())
    }

    /// Batched lookup: splits the keys by shard, pipelines one
    /// `MultiGet` per shard, reassembles results in request order.
    pub fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        let shards = self.inner.shards.len();
        let mut per: Vec<(Vec<usize>, Vec<Key>)> = vec![(Vec::new(), Vec::new()); shards];
        for (i, key) in keys.iter().enumerate() {
            let s = self.shard_of(key);
            per[s].0.push(i);
            per[s].1.push(key.clone());
        }
        let in_flight: Vec<(Vec<usize>, Ticket)> = per
            .into_iter()
            .enumerate()
            .filter(|(_, (idx, _))| !idx.is_empty())
            .map(|(s, (idx, keys))| (idx, self.submit_to(s, Request::MultiGet(keys))))
            .collect();
        let mut out = vec![None; keys.len()];
        for (idx, t) in in_flight {
            match t.wait()? {
                Response::Values(values) => {
                    for (slot, v) in idx.into_iter().zip(values) {
                        out[slot] = v;
                    }
                }
                other => return Err(Error::Internal(format!("multi_get resolved to {other:?}"))),
            }
        }
        Ok(out)
    }

    /// Batched write: splits the pairs by shard, pipelines one
    /// `MultiPut` per shard, awaits all.
    pub fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        let shards = self.inner.shards.len();
        let mut per: Vec<Vec<(Key, Value)>> = vec![Vec::new(); shards];
        for (k, v) in pairs {
            let s = self.shard_of(&k);
            per[s].push((k, v));
        }
        let in_flight: Vec<Ticket> = per
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(s, p)| self.submit_to(s, Request::MultiPut(p)))
            .collect();
        for t in in_flight {
            t.wait()?;
        }
        Ok(())
    }

    /// Drains the queues, stops workers and controller, joins threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Let queued work finish before stopping the drain loops.
        while self.total_queue_depth() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.queue.close();
        }
        if let Some(c) = self.controller.lock().take() {
            let _ = c.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut self.inner.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_worker(inner: &Arc<Inner>, shard: usize) {
    inner.shards[shard]
        .live_workers
        .fetch_add(1, Ordering::SeqCst);
    let inner2 = inner.clone();
    let handle = std::thread::spawn(move || worker_loop(inner2, shard));
    let mut handles = inner.handles.lock();
    // Reap retired boost workers so a long-running front-end under
    // oscillating load doesn't accumulate handles without bound.
    handles.retain(|h| !h.is_finished());
    handles.push(handle);
}

fn worker_loop(inner: Arc<Inner>, shard_idx: usize) {
    let shard = &inner.shards[shard_idx];
    loop {
        // Boosted workers retire once the controller lowers the target;
        // the CAS keeps at least `target >= 1` workers alive.
        let live = shard.live_workers.load(Ordering::SeqCst);
        if live > shard.target_workers.load(Ordering::SeqCst)
            && shard
                .live_workers
                .compare_exchange(live, live - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            return;
        }
        let batch = shard.queue.drain(inner.config.max_batch, DRAIN_WAIT);
        if batch.is_empty() {
            if inner.shutdown.load(Ordering::SeqCst) && shard.queue.len() == 0 {
                break;
            }
            continue;
        }
        // Contain engine panics: the batch's unresolved completers are
        // dropped by the unwind (their tickets resolve Unavailable, no
        // caller hangs) and the worker lives on to serve the shard —
        // a poisoned engine call must not wedge the whole front-end.
        let batch_len = batch.len() as u64;
        let settled = AtomicU64::new(0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_batch(&inner, batch, &settled);
        }));
        shard.queue.drain_done();
        if outcome.is_err() {
            // The unwind resolved the rest of the batch by dropping its
            // completers; count them so `submitted == completed` holds
            // once every ticket has resolved. Reconciled before the
            // panic counter so observers that saw the panic also see
            // consistent accounting.
            let abandoned = batch_len.saturating_sub(settled.load(Ordering::SeqCst));
            FrontendStats::bump(&inner.stats.completed, abandoned);
            FrontendStats::bump(&inner.stats.worker_panics, 1);
        }
    }
    shard.live_workers.fetch_sub(1, Ordering::SeqCst);
}

/// Resolves one request: the completed-counter bump happens *before*
/// the waiter wakes, so a caller that has awaited all of its tickets
/// observes `submitted == completed`. `settled` is the per-batch count
/// the worker uses to reconcile a panic-abandoned batch.
fn finish(
    stats: &FrontendStats,
    settled: &AtomicU64,
    completer: Completer,
    result: Result<Response>,
) {
    settled.fetch_add(1, Ordering::SeqCst);
    FrontendStats::bump(&stats.completed, 1);
    completer.complete(result);
}

fn process_batch(inner: &Inner, batch: Vec<(Request, Completer)>, settled: &AtomicU64) {
    let engine = inner.engine.as_ref();
    let stats = &inner.stats;
    FrontendStats::bump(&stats.batches, 1);

    // Write acks deferred until the batch's single sync (group commit).
    let mut unsynced: Vec<Completer> = Vec::new();
    let mut dirty = false;
    let mut iter = batch.into_iter().peekable();
    while let Some((req, done)) = iter.next() {
        match req {
            req @ (Request::Put(..) | Request::MultiPut(..)) => {
                let mut pairs: Vec<(Key, Value)> = Vec::new();
                let mut acks: Vec<Completer> = vec![done];
                let absorb = |req: Request, pairs: &mut Vec<(Key, Value)>| match req {
                    Request::Put(k, v) => pairs.push((k, v)),
                    Request::MultiPut(ps) => pairs.extend(ps),
                    _ => unreachable!("absorb only sees put-like requests"),
                };
                absorb(req, &mut pairs);
                // Coalesce the run of adjacent writes into one engine
                // round-trip — only in group-commit mode; the per-op
                // baseline pays full price per write on purpose.
                if inner.config.group_commit {
                    while iter.peek().is_some_and(|(r, _)| r.is_put_like()) {
                        let (r, c) = iter.next().expect("peeked");
                        absorb(r, &mut pairs);
                        acks.push(c);
                    }
                }
                if acks.len() > 1 {
                    FrontendStats::bump(&stats.coalesced_puts, acks.len() as u64);
                }
                let result = engine.multi_put(pairs);
                dirty |= result.is_ok();
                settle_writes(inner, settled, acks, result, &mut unsynced);
            }
            Request::Delete(key) => {
                let result = engine.delete(&key);
                dirty |= result.is_ok();
                settle_writes(inner, settled, vec![done], result, &mut unsynced);
            }
            Request::Cas { key, expected, new } => {
                let result = engine.cas(key, expected.as_ref(), new);
                dirty |= result.is_ok();
                settle_writes(inner, settled, vec![done], result, &mut unsynced);
            }
            Request::Get(key) => {
                finish(stats, settled, done, engine.get(&key).map(Response::Value));
            }
            Request::MultiGet(keys) => {
                finish(
                    stats,
                    settled,
                    done,
                    engine.multi_get(&keys).map(Response::Values),
                );
            }
        }
    }

    if dirty && inner.config.group_commit {
        // The group commit: one durability point for the whole batch.
        let sync_result = engine.sync();
        FrontendStats::bump(&stats.group_syncs, 1);
        for ack in unsynced.drain(..) {
            finish(
                stats,
                settled,
                ack,
                sync_result.clone().map(|_| Response::Done),
            );
        }
    }
}

/// Routes write acks: errors resolve immediately; successful writes
/// either wait for the batch sync (group commit) or sync right now.
fn settle_writes(
    inner: &Inner,
    settled: &AtomicU64,
    acks: Vec<Completer>,
    result: Result<()>,
    unsynced: &mut Vec<Completer>,
) {
    match result {
        Err(e) => {
            for ack in acks {
                finish(&inner.stats, settled, ack, Err(e.clone()));
            }
        }
        Ok(()) if inner.config.group_commit => unsynced.extend(acks),
        Ok(()) => {
            let synced = inner.engine.sync();
            FrontendStats::bump(&inner.stats.per_op_syncs, 1);
            for ack in acks {
                finish(
                    &inner.stats,
                    settled,
                    ack,
                    synced.clone().map(|_| Response::Done),
                );
            }
        }
    }
}

fn controller_loop(inner: Arc<Inner>) {
    let config = &inner.config.elastic;
    let max = inner.config.max_workers_per_shard;
    let mut calm = vec![0u32; inner.shards.len()];
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(config.sample_interval);
        for (i, shard) in inner.shards.iter().enumerate() {
            let depth = shard.queue.len();
            let target = shard.target_workers.load(Ordering::SeqCst);
            if depth >= config.boost_depth && target < max {
                shard.target_workers.store(target + 1, Ordering::SeqCst);
                spawn_worker(&inner, i);
                FrontendStats::bump(&inner.stats.boosts, 1);
                calm[i] = 0;
            } else if depth <= config.shrink_depth && target > 1 {
                calm[i] += 1;
                if calm[i] >= config.shrink_patience {
                    shard.target_workers.store(target - 1, Ordering::SeqCst);
                    FrontendStats::bump(&inner.stats.shrinks, 1);
                    calm[i] = 0;
                }
            } else {
                calm[i] = 0;
            }
        }
    }
}

/// The front-end is itself a [`KvEngine`]: synchronous callers (the
/// replay harness, cluster nodes) drive the pipelined path through the
/// plain engine interface.
impl KvEngine for Frontend {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Frontend::get(self, key)
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        Frontend::put(self, key, value)
    }

    fn delete(&self, key: &Key) -> Result<()> {
        Frontend::delete(self, key)
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        Frontend::multi_get(self, keys)
    }

    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        Frontend::multi_put(self, pairs)
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        Frontend::cas(self, key, expected, new)
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.engine.resident_bytes()
    }

    fn label(&self) -> String {
        format!("frontend<{}>", self.inner.engine.label())
    }

    fn sync(&self) -> Result<()> {
        // Everything already queued lands (and, per batch, group-
        // commits) before the barrier returns; then flush the engine.
        self.barrier();
        self.inner.engine.sync()
    }
}
