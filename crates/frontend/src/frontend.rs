//! The pipelined request front-end.
//!
//! One [`Frontend`] sits between many client threads and a single
//! [`KvEngine`]. Requests hash to a shard (the cluster routing hash,
//! [`slot_for_key`]), enter that shard's bounded submission queue, and
//! are drained in batches by the shard's worker, which:
//!
//! * lowers the whole drained batch into **one**
//!   [`KvEngine::apply_batch`] submission (coalescing consecutive
//!   writes into a single `MultiPut` op), so an engine with a native
//!   submission/completion path — `tb-lsm` — resolves the batch's
//!   reads in one overlapped storage pass instead of serializing them
//!   behind per-op block IO (TierBase §4.1.2 batches the remote tier
//!   the same way). With `LsmConfig::read_pool_threads > 0` that pass
//!   additionally fans the batch's deduped block fetches out over the
//!   engine's shard-local read pool — one pool per engine, so every
//!   worker draining a shard (elastically boosted siblings included)
//!   shares it rather than spawning fetch threads of its own; the pool
//!   counters surface through [`Frontend::stats_snapshot`]. And
//! * group-commits: one `sync()` per dirty batch instead of one per
//!   write, acknowledging the writes only after the batch is durable.
//!
//! Backpressure is the queue bound: blocking `submit` stalls producers
//! when a shard saturates, `try_submit` sheds load with
//! [`Error::Backpressure`]. Under sustained depth the elastic
//! controller (§4.4 watermark policy, configured by
//! [`ElasticConfig`]) boosts extra drain workers for the hot shard and
//! retires them when the burst subsides.

use crate::queue::{PushRefused, SubmitQueue};
use crate::stats::{FrontendStats, FrontendStatsSnapshot};
use crate::ticket::{gather, gather_all, ticket, Completer, Response, Ticket};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tb_common::{
    slot_for_key, BatchReadStats, EngineOp, Error, Key, KvEngine, Lsn, OpOutcome, Result, Value,
};
use tb_elastic::ElasticConfig;

/// How long an idle worker parks between queue polls.
const DRAIN_WAIT: Duration = Duration::from_millis(5);

/// One operation submitted to the front-end.
#[derive(Debug, Clone)]
pub enum Request {
    Get(Key),
    Put(Key, Value),
    Delete(Key),
    /// Batched lookups for one shard; the response aligns with key order.
    MultiGet(Vec<Key>),
    /// Batched writes for one shard.
    MultiPut(Vec<(Key, Value)>),
    Cas {
        key: Key,
        expected: Option<Value>,
        new: Value,
    },
    /// Ordered range scan (`start <= key < end`, at most `limit` live
    /// entries). Routes by `start`: all shards front the same engine,
    /// so any queue serves the full key range — sharding partitions
    /// the *queues*, not the data.
    Scan {
        start: Key,
        end: Option<Key>,
        limit: usize,
    },
}

impl Request {
    /// Key that decides the owning shard. Multi-key requests route by
    /// their first key — [`Frontend::multi_get`]/[`Frontend::multi_put`]
    /// split by shard before submitting, so worker-visible multi
    /// requests are single-shard already.
    fn routing_key(&self) -> Option<&Key> {
        match self {
            Request::Get(k) | Request::Put(k, _) | Request::Delete(k) => Some(k),
            Request::MultiGet(keys) => keys.first(),
            Request::MultiPut(pairs) => pairs.first().map(|(k, _)| k),
            Request::Cas { key, .. } => Some(key),
            Request::Scan { start, .. } => Some(start),
        }
    }

    fn is_put_like(&self) -> bool {
        matches!(self, Request::Put(..) | Request::MultiPut(..))
    }
}

/// Front-end tuning.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Submission queues / event loops.
    pub shards: usize,
    /// Bound of each shard queue (the backpressure watermark).
    pub queue_capacity: usize,
    /// Most requests a worker takes per drain.
    pub max_batch: usize,
    /// `true`: one `sync()` per dirty batch, writes acknowledged after
    /// it; `false`: every write is applied and synced individually (the
    /// per-op-durability baseline the bench compares against).
    pub group_commit: bool,
    /// Workers a hot shard may boost to (1 = boosting disabled).
    pub max_workers_per_shard: usize,
    /// Boost/shrink watermarks for the elastic controller.
    pub elastic: ElasticConfig,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            max_batch: 64,
            group_commit: true,
            max_workers_per_shard: 1,
            elastic: ElasticConfig::default(),
        }
    }
}

impl FrontendConfig {
    /// Config with `n` shards, otherwise defaults.
    pub fn with_shards(n: usize) -> Self {
        Self {
            shards: n.max(1),
            ..Self::default()
        }
    }
}

/// Routing decision for one submitted request.
enum Route {
    /// Lands whole on one shard's queue.
    Shard(usize),
    /// A `MultiGet` spanning shards: split into per-shard sub-batches,
    /// gathered in key order by the returned ticket.
    Scatter,
}

/// One queued request: the op, its ticket's completer, and the
/// telemetry submit stamp (`None` when telemetry is disabled) — the
/// stamp yields the queue-wait histogram at drain and the end-to-end
/// latency histogram at completion.
type Queued = (Request, Completer, Option<Instant>);

struct ShardState {
    queue: SubmitQueue<Queued>,
    /// Workers this shard should run (elastic boost lever).
    target_workers: AtomicUsize,
    /// Workers currently draining this shard.
    live_workers: AtomicUsize,
}

struct Inner {
    engine: Arc<dyn KvEngine>,
    shards: Vec<ShardState>,
    config: FrontendConfig,
    shutdown: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
    stats: FrontendStats,
}

/// Pipelined, sharded serving layer over one [`KvEngine`].
pub struct Frontend {
    inner: Arc<Inner>,
    controller: Mutex<Option<JoinHandle<()>>>,
    down: AtomicBool,
    /// Keeps this front-end's counters and per-shard depth gauges
    /// contributing to [`tb_obs::global`] snapshots; drops with it.
    _obs: tb_obs::SourceGuard,
}

impl Frontend {
    /// Starts the shard workers (and, when boosting is enabled, the
    /// elastic controller) over `engine`.
    pub fn start(engine: Arc<dyn KvEngine>, mut config: FrontendConfig) -> Self {
        config.shards = config.shards.max(1);
        config.max_workers_per_shard = config.max_workers_per_shard.max(1);
        let inner = Arc::new(Inner {
            engine,
            shards: (0..config.shards)
                .map(|_| ShardState {
                    queue: SubmitQueue::new(config.queue_capacity),
                    target_workers: AtomicUsize::new(1),
                    live_workers: AtomicUsize::new(0),
                })
                .collect(),
            config: config.clone(),
            shutdown: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
            stats: FrontendStats::default(),
        });
        for shard in 0..config.shards {
            spawn_worker(&inner, shard);
        }
        let controller = (config.max_workers_per_shard > 1).then(|| {
            let inner = inner.clone();
            std::thread::spawn(move || controller_loop(inner))
        });
        let obs = {
            let inner = inner.clone();
            tb_obs::global().register_source(move |b| {
                let s = &inner.stats;
                let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
                b.counter("frontend_submitted", c(&s.submitted));
                b.counter("frontend_completed", c(&s.completed));
                b.counter("frontend_batches", c(&s.batches));
                b.counter("frontend_group_syncs", c(&s.group_syncs));
                b.counter("frontend_per_op_syncs", c(&s.per_op_syncs));
                b.counter("frontend_coalesced_puts", c(&s.coalesced_puts));
                b.counter(
                    "frontend_backpressure_rejections",
                    c(&s.backpressure_rejections),
                );
                b.counter("frontend_boosts", c(&s.boosts));
                b.counter("frontend_shrinks", c(&s.shrinks));
                b.counter("frontend_worker_panics", c(&s.worker_panics));
                for (i, shard) in inner.shards.iter().enumerate() {
                    b.gauge(
                        &format!("frontend_shard{i}_queue_depth"),
                        shard.queue.len() as i64,
                    );
                    b.gauge(
                        &format!("frontend_shard{i}_live_workers"),
                        shard.live_workers.load(Ordering::SeqCst) as i64,
                    );
                }
            })
        };
        Self {
            inner,
            controller: Mutex::new(controller),
            down: AtomicBool::new(false),
            _obs: obs,
        }
    }

    /// Operational counters.
    pub fn stats(&self) -> &FrontendStats {
        &self.inner.stats
    }

    /// Snapshot of the front-end counters *plus* the wrapped engine's
    /// batched-read counters (block fetches, dedup hits, memtable hits
    /// — zeros for engines without a native batch path).
    pub fn stats_snapshot(&self) -> FrontendStatsSnapshot {
        let mut snapshot = self.inner.stats.snapshot();
        snapshot.engine_batch = self.inner.engine.batch_read_stats();
        snapshot.shard_queue_depths = self.inner.shards.iter().map(|s| s.queue.len()).collect();
        snapshot.shard_live_workers = self
            .inner
            .shards
            .iter()
            .map(|s| s.live_workers.load(Ordering::SeqCst))
            .collect();
        snapshot
    }

    /// Shard a key routes to.
    pub fn shard_of(&self, key: &Key) -> usize {
        slot_for_key(key.as_slice()) as usize % self.inner.shards.len()
    }

    /// Queue depth of one shard.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.inner.shards[shard].queue.len()
    }

    /// Requests queued across all shards.
    pub fn total_queue_depth(&self) -> usize {
        self.inner.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Workers currently draining one shard.
    pub fn live_workers(&self, shard: usize) -> usize {
        self.inner.shards[shard].live_workers.load(Ordering::SeqCst)
    }

    /// Submits a request, blocking while the target shard queue is
    /// full — backpressure propagates to the producer. A `MultiGet`
    /// whose keys span shards is scattered into per-shard sub-batches
    /// and its ticket gathers the results in key order. A spanning
    /// `MultiPut` resolves to [`Error::InvalidArgument`]: each shard's
    /// slice would commit independently (cross-shard write atomicity
    /// is out of scope; use [`Frontend::multi_put`], which splits by
    /// shard explicitly).
    pub fn submit(&self, request: Request) -> Ticket {
        match self.route(&request) {
            Ok(Route::Shard(shard)) => self.submit_to(shard, request),
            Ok(Route::Scatter) => {
                let Request::MultiGet(keys) = request else {
                    unreachable!("only MultiGet scatters")
                };
                let len = keys.len();
                let parts = self
                    .scatter_get(keys)
                    .into_iter()
                    .enumerate()
                    .filter(|(_, (idx, _))| !idx.is_empty())
                    .map(|(s, (idx, keys))| (idx, self.submit_to(s, Request::MultiGet(keys))))
                    .collect();
                gather(parts, len)
            }
            Err(e) => {
                let (t, c) = ticket();
                c.complete(Err(e));
                t
            }
        }
    }

    /// Non-blocking submit; a full shard queue sheds the request with
    /// [`Error::Backpressure`]. A spanning `MultiGet` scatters like in
    /// [`Frontend::submit`]; if any sub-batch is shed the whole request
    /// reports backpressure (already-queued sub-reads drain harmlessly).
    pub fn try_submit(&self, request: Request) -> Result<Ticket> {
        if self.down.load(Ordering::SeqCst) {
            return Err(Error::Unavailable("front-end shut down".into()));
        }
        match self.route(&request)? {
            Route::Shard(shard) => self.try_submit_to(shard, request),
            Route::Scatter => {
                let Request::MultiGet(keys) = request else {
                    unreachable!("only MultiGet scatters")
                };
                let len = keys.len();
                let mut parts = Vec::new();
                for (s, (idx, keys)) in self.scatter_get(keys).into_iter().enumerate() {
                    if idx.is_empty() {
                        continue;
                    }
                    parts.push((idx, self.try_submit_to(s, Request::MultiGet(keys))?));
                }
                Ok(gather(parts, len))
            }
        }
    }

    fn try_submit_to(&self, shard: usize, request: Request) -> Result<Ticket> {
        let (t, c) = ticket();
        match self.inner.shards[shard]
            .queue
            .try_push((request, c, tb_obs::start()))
        {
            Ok(()) => {
                FrontendStats::bump(&self.inner.stats.submitted, 1);
                Ok(t)
            }
            Err((PushRefused::Full, (_, c, _))) => {
                FrontendStats::bump(&self.inner.stats.backpressure_rejections, 1);
                // The queue was at capacity when it refused us; report that
                // depth as the retry-after hint so callers (and the wire
                // protocol's RETRY reply) can scale their backoff.
                let depth = self.inner.shards[shard].queue.len() as u32;
                let err = Error::backpressure_at_depth(
                    format!(
                        "shard {shard} queue full ({} requests)",
                        self.inner.config.queue_capacity
                    ),
                    depth.max(self.inner.config.queue_capacity as u32),
                );
                // Resolve the orphan ticket so nothing can wait on it.
                c.complete(Err(err.clone()));
                Err(err)
            }
            Err((PushRefused::Closed, (_, c, _))) => {
                c.complete(Err(Error::Unavailable("front-end shut down".into())));
                Err(Error::Unavailable("front-end shut down".into()))
            }
        }
    }

    fn route(&self, request: &Request) -> Result<Route> {
        match request {
            Request::MultiGet(keys) => Ok(match self.single_shard_of(keys.iter()) {
                Ok(shard) => Route::Shard(shard),
                // Reads have no write-ordering to protect: scatter them.
                Err(_) => Route::Scatter,
            }),
            Request::MultiPut(pairs) => self
                .single_shard_of(pairs.iter().map(|(k, _)| k))
                .map(Route::Shard),
            _ => Ok(Route::Shard(
                request.routing_key().map(|k| self.shard_of(k)).unwrap_or(0),
            )),
        }
    }

    /// Splits keys into per-shard `(response positions, keys)` buckets.
    fn scatter_get(&self, keys: Vec<Key>) -> Vec<(Vec<usize>, Vec<Key>)> {
        let mut per: Vec<(Vec<usize>, Vec<Key>)> =
            vec![(Vec::new(), Vec::new()); self.inner.shards.len()];
        for (i, key) in keys.into_iter().enumerate() {
            let s = self.shard_of(&key);
            per[s].0.push(i);
            per[s].1.push(key);
        }
        per
    }

    /// Common shard of a multi-key request, or `InvalidArgument` when
    /// the keys span shards.
    fn single_shard_of<'a>(&self, keys: impl Iterator<Item = &'a Key>) -> Result<usize> {
        let mut shard = None;
        for key in keys {
            let s = self.shard_of(key);
            match shard {
                None => shard = Some(s),
                Some(previous) if previous != s => {
                    return Err(Error::InvalidArgument(
                        "multi-key write spans shards; use Frontend::multi_put".into(),
                    ))
                }
                Some(_) => {}
            }
        }
        Ok(shard.unwrap_or(0))
    }

    fn submit_to(&self, shard: usize, request: Request) -> Ticket {
        let (t, c) = ticket();
        // Fail fast once shutdown started: producers must stop feeding
        // the queues or the shutdown drain could spin forever.
        if self.down.load(Ordering::SeqCst) {
            c.complete(Err(Error::Unavailable("front-end shut down".into())));
            return t;
        }
        match self.inner.shards[shard]
            .queue
            .push((request, c, tb_obs::start()))
        {
            Ok(()) => FrontendStats::bump(&self.inner.stats.submitted, 1),
            Err((_, c, _)) => c.complete(Err(Error::Unavailable("front-end shut down".into()))),
        }
        t
    }

    /// Waits until every request queued *before* the call has been
    /// processed (a barrier per shard). Bounded even under sustained
    /// concurrent submission: it waits only on batches drained up to
    /// its own marker, never on later traffic.
    pub fn barrier(&self) {
        let tickets: Vec<Ticket> = (0..self.inner.shards.len())
            .map(|s| self.submit_to(s, Request::MultiGet(Vec::new())))
            .collect();
        let mut targets = Vec::with_capacity(tickets.len());
        for (s, t) in tickets.into_iter().enumerate() {
            let _ = t.wait();
            // The queue is FIFO, so everything enqueued before this
            // marker was drained in a batch numbered no later than the
            // count observed at marker resolution. With boosted
            // workers some of those batches may still be mid-flight in
            // a sibling; wait for exactly them.
            targets.push((s, self.inner.shards[s].queue.drains_started()));
        }
        for (s, target) in targets {
            while self.inner.shards[s].queue.drains_finished() < target {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    // --- synchronous conveniences -----------------------------------

    /// Pipelined point lookup, awaited.
    pub fn get(&self, key: &Key) -> Result<Option<Value>> {
        match self.submit(Request::Get(key.clone())).wait()? {
            Response::Value(v) => Ok(v),
            other => Err(Error::Internal(format!("get resolved to {other:?}"))),
        }
    }

    /// Pipelined write, awaited (durable in group-commit mode).
    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        self.submit(Request::Put(key, value)).wait().map(|_| ())
    }

    /// Pipelined delete, awaited.
    pub fn delete(&self, key: &Key) -> Result<()> {
        self.submit(Request::Delete(key.clone())).wait().map(|_| ())
    }

    /// Pipelined compare-and-set, awaited.
    pub fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        self.submit(Request::Cas {
            key,
            expected: expected.cloned(),
            new,
        })
        .wait()
        .map(|_| ())
    }

    /// Batched lookup, awaited: single-shard batches pipeline directly,
    /// spanning batches scatter per shard and gather in request order
    /// (the same path as a raw `submit(Request::MultiGet(..))`).
    pub fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        match self.submit(Request::MultiGet(keys.to_vec())).wait()? {
            Response::Values(values) => Ok(values),
            other => Err(Error::Internal(format!("multi_get resolved to {other:?}"))),
        }
    }

    /// Batched write: splits the pairs by shard, pipelines one
    /// `MultiPut` per shard, awaits all.
    ///
    /// # Cross-shard semantics: independent commit, not a transaction
    ///
    /// Each per-shard slice commits on its own; there is no cross-shard
    /// atomicity and no rollback. When one shard fails mid-batch the
    /// documented (and regression-tested) partial state is:
    ///
    /// * every pair routed to a *healthy* shard is applied and durable
    ///   per that shard's sync policy;
    /// * the pairs of the *failing* shard follow the engine's error
    ///   contract for that slice (indeterminate on error — see the
    ///   LSN/ack contract in `tb_common::engine`);
    /// * the call reports the first shard error. Callers needing
    ///   per-pair attribution submit per-shard batches themselves.
    ///
    /// The tb-server wire protocol inherits exactly these semantics for
    /// its `MULTIPUT` frame and never converts a partial failure into
    /// an all-or-nothing ack: each op in a pipelined burst gets its own
    /// positional outcome reply.
    pub fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        self.scatter_put(pairs).wait().map(|_| ())
    }

    /// Pipelined range scan, awaited. One op in its shard's drained
    /// batch; the result reflects the engine state when that batch ran
    /// — writes still queued on *other* shards are not yet visible
    /// (the cross-shard consistency caveat of a sharded front-end).
    pub fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        let request = Request::Scan {
            start: start.clone(),
            end: end.cloned(),
            limit,
        };
        match self.submit(request).wait()? {
            Response::Range(rows) => Ok(rows),
            other => Err(Error::Internal(format!("scan resolved to {other:?}"))),
        }
    }

    /// Splits a multi-key write by shard and pipelines one `MultiPut`
    /// per shard; the ticket resolves `Done` once every slice acked
    /// (first error wins). Slices commit independently — cross-shard
    /// write atomicity stays out of scope.
    fn scatter_put(&self, pairs: Vec<(Key, Value)>) -> Ticket {
        let mut per: Vec<Vec<(Key, Value)>> = vec![Vec::new(); self.inner.shards.len()];
        for (k, v) in pairs {
            let s = self.shard_of(&k);
            per[s].push((k, v));
        }
        let parts: Vec<Ticket> = per
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(s, p)| self.submit_to(s, Request::MultiPut(p)))
            .collect();
        if parts.is_empty() {
            // Empty write: resolved on the spot, covering nothing.
            let (t, c) = ticket();
            c.complete(Ok(Response::Done(Lsn::NONE)));
            return t;
        }
        gather_all(parts)
    }

    /// Drains the queues, stops workers and controller, joins threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Let queued work finish before stopping the drain loops.
        while self.total_queue_depth() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.queue.close();
        }
        if let Some(c) = self.controller.lock().take() {
            let _ = c.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut self.inner.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_worker(inner: &Arc<Inner>, shard: usize) {
    inner.shards[shard]
        .live_workers
        .fetch_add(1, Ordering::SeqCst);
    let inner2 = inner.clone();
    let handle = std::thread::spawn(move || worker_loop(inner2, shard));
    let mut handles = inner.handles.lock();
    // Reap retired boost workers so a long-running front-end under
    // oscillating load doesn't accumulate handles without bound.
    handles.retain(|h| !h.is_finished());
    handles.push(handle);
}

fn worker_loop(inner: Arc<Inner>, shard_idx: usize) {
    let shard = &inner.shards[shard_idx];
    loop {
        // Boosted workers retire once the controller lowers the target;
        // the CAS keeps at least `target >= 1` workers alive.
        let live = shard.live_workers.load(Ordering::SeqCst);
        if live > shard.target_workers.load(Ordering::SeqCst)
            && shard
                .live_workers
                .compare_exchange(live, live - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            return;
        }
        let batch = shard.queue.drain(inner.config.max_batch, DRAIN_WAIT);
        if batch.is_empty() {
            if inner.shutdown.load(Ordering::SeqCst) && shard.queue.len() == 0 {
                break;
            }
            continue;
        }
        // Queue wait: submit stamp → drain. The stamp stays with the
        // request so completion can record the full end-to-end latency.
        if tb_obs::enabled() {
            let waits = tb_obs::histo!("frontend_queue_wait_ns");
            for (_, _, stamp) in &batch {
                waits.record_since(*stamp);
            }
        }
        // Contain engine panics: the batch's unresolved completers are
        // dropped by the unwind (their tickets resolve Unavailable, no
        // caller hangs) and the worker lives on to serve the shard —
        // a poisoned engine call must not wedge the whole front-end.
        let batch_len = batch.len() as u64;
        let settled = AtomicU64::new(0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_batch(&inner, batch, &settled);
        }));
        shard.queue.drain_done();
        if outcome.is_err() {
            // The unwind resolved the rest of the batch by dropping its
            // completers; count them so `submitted == completed` holds
            // once every ticket has resolved. Reconciled before the
            // panic counter so observers that saw the panic also see
            // consistent accounting.
            let abandoned = batch_len.saturating_sub(settled.load(Ordering::SeqCst));
            FrontendStats::bump(&inner.stats.completed, abandoned);
            FrontendStats::bump(&inner.stats.worker_panics, 1);
        }
    }
    shard.live_workers.fetch_sub(1, Ordering::SeqCst);
}

/// A completer still awaiting its result, paired with the request's
/// telemetry submit stamp (for the end-to-end latency histogram).
type Pending = (Completer, Option<Instant>);

/// Resolves one request: the completed-counter bump happens *before*
/// the waiter wakes, so a caller that has awaited all of its tickets
/// observes `submitted == completed`. `settled` is the per-batch count
/// the worker uses to reconcile a panic-abandoned batch.
fn finish(stats: &FrontendStats, settled: &AtomicU64, pending: Pending, result: Result<Response>) {
    let (completer, stamp) = pending;
    settled.fetch_add(1, Ordering::SeqCst);
    FrontendStats::bump(&stats.completed, 1);
    tb_obs::histo!("frontend_e2e_ns").record_since(stamp);
    completer.complete(result);
}

/// How the completion of one lowered [`EngineOp`] settles back into
/// request tickets.
enum OpAcks {
    /// A write op (one request, or a coalesced put-like run): every
    /// completer acks together — deferred to the group sync on success.
    Write(Vec<Pending>),
    /// A `Get` awaiting [`OpOutcome::Value`].
    Get(Pending),
    /// A `MultiGet` awaiting [`OpOutcome::Values`].
    MultiGet(Pending),
    /// A `Scan` awaiting [`OpOutcome::Range`].
    Scan(Pending),
}

fn process_batch(inner: &Inner, batch: Vec<Queued>, settled: &AtomicU64) {
    FrontendStats::bump(&inner.stats.batches, 1);
    if !inner.config.group_commit {
        // The per-op-durability baseline: every request is its own
        // engine call and every write its own sync, on purpose.
        return process_batch_per_op(inner, batch, settled);
    }
    let stats = &inner.stats;

    // --- lower the drained batch into one engine submission ----------
    // Adjacent put-likes coalesce into a single MultiPut op (one WAL/
    // memtable pass, acked together at the group sync); everything else
    // maps 1:1. `acks[i]` settles `ops[i]`.
    let mut ops: Vec<EngineOp> = Vec::with_capacity(batch.len());
    let mut acks: Vec<OpAcks> = Vec::with_capacity(batch.len());
    let mut iter = batch.into_iter().peekable();
    while let Some((req, c, stamp)) = iter.next() {
        let done = (c, stamp);
        match req {
            req @ (Request::Put(..) | Request::MultiPut(..)) => {
                let mut pairs: Vec<(Key, Value)> = Vec::new();
                let mut writers: Vec<Pending> = vec![done];
                let absorb = |req: Request, pairs: &mut Vec<(Key, Value)>| match req {
                    Request::Put(k, v) => pairs.push((k, v)),
                    Request::MultiPut(ps) => pairs.extend(ps),
                    _ => unreachable!("absorb only sees put-like requests"),
                };
                absorb(req, &mut pairs);
                while iter.peek().is_some_and(|(r, _, _)| r.is_put_like()) {
                    let (r, c, stamp) = iter.next().expect("peeked");
                    absorb(r, &mut pairs);
                    writers.push((c, stamp));
                }
                if writers.len() > 1 {
                    FrontendStats::bump(&stats.coalesced_puts, writers.len() as u64);
                }
                ops.push(EngineOp::MultiPut(pairs));
                acks.push(OpAcks::Write(writers));
            }
            Request::Delete(key) => {
                ops.push(EngineOp::Delete(key));
                acks.push(OpAcks::Write(vec![done]));
            }
            Request::Cas { key, expected, new } => {
                ops.push(EngineOp::Cas { key, expected, new });
                acks.push(OpAcks::Write(vec![done]));
            }
            Request::Get(key) => {
                ops.push(EngineOp::Get(key));
                acks.push(OpAcks::Get(done));
            }
            Request::MultiGet(keys) => {
                ops.push(EngineOp::MultiGet(keys));
                acks.push(OpAcks::MultiGet(done));
            }
            Request::Scan { start, end, limit } => {
                ops.push(EngineOp::Scan { start, end, limit });
                acks.push(OpAcks::Scan(done));
            }
        }
    }

    // --- one storage pass for the whole batch -------------------------
    // An engine with a native submission/completion path (tb-lsm)
    // resolves every read here with its block IO deduped across the
    // batch; the default trait implementation degrades to the old
    // per-op loop.
    let outcomes = inner.engine.apply_batch(ops);

    // --- completion: settle each op's tickets in submission order -----
    let mut unsynced: Vec<(Pending, Lsn)> = Vec::new();
    let mut dirty = false;
    for (ack, outcome) in acks.into_iter().zip(outcomes) {
        match ack {
            OpAcks::Write(writers) => match outcome {
                // Write acks defer to the batch's single sync below,
                // each carrying the LSN the engine assigned to its op
                // (coalesced writers share the covering MultiPut LSN).
                Ok(o) => {
                    let lsn = match o {
                        OpOutcome::Done(l) => l,
                        _ => Lsn::NONE,
                    };
                    dirty = true;
                    unsynced.extend(writers.into_iter().map(|w| (w, lsn)));
                }
                Err(e) => {
                    for w in writers {
                        finish(stats, settled, w, Err(e.clone()));
                    }
                }
            },
            OpAcks::Get(done) => {
                let result = outcome.and_then(|o| match o {
                    OpOutcome::Value(v) => Ok(Response::Value(v)),
                    other => Err(Error::Internal(format!("get completed as {other:?}"))),
                });
                finish(stats, settled, done, result);
            }
            OpAcks::MultiGet(done) => {
                let result = outcome.and_then(|o| match o {
                    OpOutcome::Values(v) => Ok(Response::Values(v)),
                    other => Err(Error::Internal(format!("multi_get completed as {other:?}"))),
                });
                finish(stats, settled, done, result);
            }
            OpAcks::Scan(done) => {
                let result = outcome.and_then(|o| match o {
                    OpOutcome::Range(rows) => Ok(Response::Range(rows)),
                    other => Err(Error::Internal(format!("scan completed as {other:?}"))),
                });
                finish(stats, settled, done, result);
            }
        }
    }

    if dirty {
        // The group commit: one durability point for the whole batch.
        let t0 = tb_obs::start();
        let sync_result = inner.engine.sync();
        tb_obs::histo!("frontend_group_sync_ns").record_since(t0);
        FrontendStats::bump(&stats.group_syncs, 1);
        for (ack, lsn) in unsynced.drain(..) {
            finish(
                stats,
                settled,
                ack,
                sync_result.clone().map(|_| Response::Done(lsn)),
            );
        }
    }
}

/// The group-commit-disabled baseline: each request is applied and (for
/// writes) synced individually.
fn process_batch_per_op(inner: &Inner, batch: Vec<Queued>, settled: &AtomicU64) {
    let engine = inner.engine.as_ref();
    let stats = &inner.stats;
    let settle_write = |result: Result<()>, done: Pending| match result {
        Err(e) => finish(stats, settled, done, Err(e)),
        Ok(()) => {
            // The engine's applied LSN after a successful write covers
            // it (the per-op path applies writes one at a time).
            let lsn = engine.applied_lsn();
            let synced = engine.sync();
            FrontendStats::bump(&stats.per_op_syncs, 1);
            finish(stats, settled, done, synced.map(|_| Response::Done(lsn)));
        }
    };
    for (req, c, stamp) in batch {
        let done = (c, stamp);
        match req {
            Request::Put(key, value) => settle_write(engine.put(key, value), done),
            Request::MultiPut(pairs) => settle_write(engine.multi_put(pairs), done),
            Request::Delete(key) => settle_write(engine.delete(&key), done),
            Request::Cas { key, expected, new } => {
                settle_write(engine.cas(key, expected.as_ref(), new), done)
            }
            Request::Get(key) => {
                finish(stats, settled, done, engine.get(&key).map(Response::Value));
            }
            Request::MultiGet(keys) => {
                finish(
                    stats,
                    settled,
                    done,
                    engine.multi_get(&keys).map(Response::Values),
                );
            }
            Request::Scan { start, end, limit } => {
                finish(
                    stats,
                    settled,
                    done,
                    engine
                        .scan(&start, end.as_ref(), limit)
                        .map(Response::Range),
                );
            }
        }
    }
}

fn controller_loop(inner: Arc<Inner>) {
    let config = &inner.config.elastic;
    let max = inner.config.max_workers_per_shard;
    let mut calm = vec![0u32; inner.shards.len()];
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(config.sample_interval);
        for (i, shard) in inner.shards.iter().enumerate() {
            let depth = shard.queue.len();
            let target = shard.target_workers.load(Ordering::SeqCst);
            if depth >= config.boost_depth && target < max {
                shard.target_workers.store(target + 1, Ordering::SeqCst);
                spawn_worker(&inner, i);
                FrontendStats::bump(&inner.stats.boosts, 1);
                calm[i] = 0;
            } else if depth <= config.shrink_depth && target > 1 {
                calm[i] += 1;
                if calm[i] >= config.shrink_patience {
                    shard.target_workers.store(target - 1, Ordering::SeqCst);
                    FrontendStats::bump(&inner.stats.shrinks, 1);
                    calm[i] = 0;
                }
            } else {
                calm[i] = 0;
            }
        }
    }
}

/// The front-end is itself a [`KvEngine`]: synchronous callers (the
/// replay harness, cluster nodes) drive the pipelined path through the
/// plain engine interface.
impl KvEngine for Frontend {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Frontend::get(self, key)
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        Frontend::put(self, key, value)
    }

    fn delete(&self, key: &Key) -> Result<()> {
        Frontend::delete(self, key)
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        Frontend::multi_get(self, keys)
    }

    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        Frontend::multi_put(self, pairs)
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        Frontend::cas(self, key, expected, new)
    }

    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        Frontend::scan(self, start, end, limit)
    }

    /// Batch submission with the trait's submission-order semantics.
    ///
    /// With one worker per shard (boosting disabled), every op is
    /// submitted before any is awaited: ops on different shards
    /// overlap, ops sharing a worker batch share its single storage
    /// pass and group commit, and per-shard FIFO *execution* preserves
    /// order for same-key ops (which route to one shard). With elastic
    /// boosting enabled, sibling workers can execute one shard's
    /// batches concurrently — FIFO dequeue no longer implies FIFO
    /// execution — so each op is awaited before the next is submitted:
    /// correctness over overlap. Scans barrier the batch either way
    /// (see below).
    fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        let submit_op = |op: EngineOp| -> Ticket {
            match op {
                // A multi-key write splits by shard (like
                // `Frontend::multi_put`) — the engine batch contract
                // accepts arbitrary key sets.
                EngineOp::MultiPut(pairs) => self.scatter_put(pairs),
                op => self.submit(match op {
                    EngineOp::Get(key) => Request::Get(key),
                    EngineOp::Put(key, value) => Request::Put(key, value),
                    EngineOp::Delete(key) => Request::Delete(key),
                    EngineOp::Cas { key, expected, new } => Request::Cas { key, expected, new },
                    EngineOp::MultiGet(keys) => Request::MultiGet(keys),
                    EngineOp::Scan { start, end, limit } => Request::Scan { start, end, limit },
                    EngineOp::MultiPut(_) => unreachable!("handled above"),
                }),
            }
        };
        let complete = |t: Ticket| -> Result<OpOutcome> {
            t.wait().map(|response| match response {
                Response::Value(v) => OpOutcome::Value(v),
                Response::Values(v) => OpOutcome::Values(v),
                Response::Range(rows) => OpOutcome::Range(rows),
                Response::Done(l) => OpOutcome::Done(l),
            })
        };
        if self.inner.config.max_workers_per_shard > 1 {
            return ops.into_iter().map(|op| complete(submit_op(op))).collect();
        }
        // A scan is a cross-shard read: unlike MultiGet/MultiPut it
        // cannot scatter along per-shard FIFO order (every shard owns
        // part of any range), so submission-order semantics make it a
        // batch barrier — every earlier op completes before the scan
        // is submitted, and the scan completes before later ops are.
        // Scan-free batches keep the fully pipelined path.
        let mut results: Vec<Option<Result<OpOutcome>>> = Vec::new();
        let mut pending: Vec<(usize, Ticket)> = Vec::new();
        for op in ops {
            let i = results.len();
            results.push(None);
            if matches!(op, EngineOp::Scan { .. }) {
                for (j, t) in pending.drain(..) {
                    results[j] = Some(complete(t));
                }
                results[i] = Some(complete(submit_op(op)));
            } else {
                pending.push((i, submit_op(op)));
            }
        }
        for (j, t) in pending {
            results[j] = Some(complete(t));
        }
        results
            .into_iter()
            .map(|r| r.expect("every op completed"))
            .collect()
    }

    fn batch_read_stats(&self) -> BatchReadStats {
        self.inner.engine.batch_read_stats()
    }

    fn applied_lsn(&self) -> Lsn {
        self.inner.engine.applied_lsn()
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.engine.resident_bytes()
    }

    fn label(&self) -> String {
        format!("frontend<{}>", self.inner.engine.label())
    }

    fn sync(&self) -> Result<()> {
        // Everything already queued lands (and, per batch, group-
        // commits) before the barrier returns; then flush the engine.
        self.barrier();
        self.inner.engine.sync()
    }
}
