//! Theorem 2.1 — the Optimal Cost Theorem.
//!
//! Over a set of storage configurations `S`, the optimal cost is
//! `C* = min_s max(PC_s, SC_s)`, and along a space-performance trade-off
//! frontier it is achieved where `PC = SC`. [`optimal_config`] performs
//! the discrete selection; [`ConfigCost`] carries the per-configuration
//! breakdown the figures plot.

use crate::model::{CostMetrics, WorkloadDemand};

/// Cost breakdown of one candidate configuration for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigCost {
    pub name: String,
    pub performance_cost: f64,
    pub space_cost: f64,
}

impl ConfigCost {
    pub fn new(name: impl Into<String>, pc: f64, sc: f64) -> Self {
        Self {
            name: name.into(),
            performance_cost: pc,
            space_cost: sc,
        }
    }

    /// Evaluates a configuration's metrics against a workload.
    pub fn from_metrics(name: impl Into<String>, m: &CostMetrics, w: &WorkloadDemand) -> Self {
        Self::new(name, m.performance_cost(w), m.space_cost(w))
    }

    /// `max(PC, SC)` — what the deployment actually pays.
    pub fn total(&self) -> f64 {
        self.performance_cost.max(self.space_cost)
    }

    /// `|PC − SC|` — distance from the theorem's balance point.
    pub fn imbalance(&self) -> f64 {
        (self.performance_cost - self.space_cost).abs()
    }
}

/// Selects the cost-optimal configuration: `argmin_s max(PC_s, SC_s)`.
/// Returns `None` for an empty candidate set.
pub fn optimal_config(candidates: &[ConfigCost]) -> Option<&ConfigCost> {
    candidates.iter().min_by(|a, b| {
        a.total()
            .partial_cmp(&b.total())
            .expect("costs must be finite")
    })
}

/// Selects the most *balanced* configuration: `argmin_s |PC_s − SC_s|`.
/// Along a dense trade-off frontier this coincides with
/// [`optimal_config`] (the theorem); on sparse candidate sets they can
/// differ, which is why both selectors exist.
pub fn most_balanced_config(candidates: &[ConfigCost]) -> Option<&ConfigCost> {
    candidates.iter().min_by(|a, b| {
        a.imbalance()
            .partial_cmp(&b.imbalance())
            .expect("costs must be finite")
    })
}

/// Generates the cost frontier of Figure 2(a): sweeps a parametric
/// trade-off `CPQPS = f(CPGB)` and reports each point's costs. `f` must
/// be non-increasing (Definition 3).
pub fn sweep_frontier(
    cpgb_points: &[f64],
    f: impl Fn(f64) -> f64,
    w: &WorkloadDemand,
) -> Vec<ConfigCost> {
    cpgb_points
        .iter()
        .map(|&cpgb| {
            let cpqps = f(cpgb);
            ConfigCost::new(
                format!("cpgb={cpgb:.4}"),
                cpqps * w.qps,
                cpgb * w.data_size_gb,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn optimal_picks_min_total() {
        let cands = vec![
            ConfigCost::new("a", 4.0, 1.0), // total 4
            ConfigCost::new("b", 2.0, 2.5), // total 2.5  ← optimal
            ConfigCost::new("c", 1.0, 3.0), // total 3
        ];
        assert_eq!(optimal_config(&cands).unwrap().name, "b");
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert!(optimal_config(&[]).is_none());
        assert!(most_balanced_config(&[]).is_none());
    }

    #[test]
    fn balanced_picks_min_imbalance() {
        let cands = vec![
            ConfigCost::new("a", 4.0, 1.0),
            ConfigCost::new("b", 2.0, 2.1),
            ConfigCost::new("c", 1.0, 3.0),
        ];
        assert_eq!(most_balanced_config(&cands).unwrap().name, "b");
    }

    #[test]
    fn theorem_on_dense_frontier() {
        // Trade-off: CPQPS = k / CPGB (hyperbolic frontier), workload with
        // equal demands. The theorem says the optimum sits at PC = SC.
        let w = WorkloadDemand::new(100.0, 100.0);
        let points: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.001).collect();
        let cands = sweep_frontier(&points, |cpgb| 0.0001 / cpgb, &w);
        let opt = optimal_config(&cands).unwrap();
        let bal = most_balanced_config(&cands).unwrap();
        // Dense frontier ⇒ the two selectors agree (within grid step).
        assert!(
            (opt.total() - bal.total()).abs() / opt.total() < 0.05,
            "optimal {} vs balanced {}",
            opt.total(),
            bal.total()
        );
        // And the optimum is near-balanced.
        assert!(
            opt.imbalance() / opt.total() < 0.1,
            "imbalance {} of total {}",
            opt.imbalance(),
            opt.total()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Theorem invariant: on any non-increasing frontier the minimal
        /// max(PC, SC) point has |PC − SC| no larger than the frontier's
        /// granularity allows — i.e. no candidate strictly dominates it.
        #[test]
        fn prop_no_candidate_beats_optimal(
            seed_costs in proptest::collection::vec((0.01f64..10.0, 0.01f64..10.0), 1..40)
        ) {
            let cands: Vec<ConfigCost> = seed_costs
                .iter()
                .enumerate()
                .map(|(i, &(pc, sc))| ConfigCost::new(format!("c{i}"), pc, sc))
                .collect();
            let opt = optimal_config(&cands).unwrap();
            for c in &cands {
                prop_assert!(c.total() >= opt.total() - 1e-12);
            }
        }

        /// On a hyperbolic frontier with positive demands, the optimum's
        /// relative imbalance shrinks as the grid refines — sanity check
        /// of the continuous theorem's discrete analog.
        #[test]
        fn prop_dense_frontier_balances(k in 0.0001f64..0.1, qps in 10.0f64..10_000.0, gb in 10.0f64..10_000.0) {
            // The continuous balance point solves k*qps/cpgb = cpgb*gb;
            // the theorem's PC = SC claim only applies when that point
            // lies inside the swept configuration set (Theorem 2.1
            // assumes the trade-off can actually be made in both
            // directions). Skip boundary-optimum draws.
            let balance_cpgb = (k * qps / gb).sqrt();
            prop_assume!((0.01..=3.5).contains(&balance_cpgb));
            let w = WorkloadDemand::new(qps, gb);
            let points: Vec<f64> = (1..=2000).map(|i| i as f64 * 0.002).collect();
            let cands = sweep_frontier(&points, |cpgb| k / cpgb, &w);
            let opt = optimal_config(&cands).unwrap();
            // The grid optimum should be within a few steps of balance.
            prop_assert!(opt.imbalance() / opt.total() < 0.25,
                "imbalance {} total {}", opt.imbalance(), opt.total());
        }
    }
}
