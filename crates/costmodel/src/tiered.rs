//! Tiered-storage cost model (paper §2.4, §5.2).
//!
//! A tiered deployment pays for a cache tier sized to a *cache ratio*
//! `CR` (cached capacity / total capacity) and a storage tier absorbing
//! the *miss ratio* `MR` of requests. The two are linked by the
//! workload's miss-ratio curve `MR = f(CR)`, and Theorem 5.1 locates the
//! optimal `CR*` where the cache tier's performance cost (including miss
//! penalty) equals its space cost.

use tb_workload::Trace;

/// A workload's miss-ratio curve: `MR = f(CR)`, non-increasing,
/// `f(0) = 1`, `f(1) = 0` for cacheable workloads.
pub trait MissRatioCurve: Send + Sync {
    /// Miss ratio at cache ratio `cr ∈ [0, 1]`.
    fn miss_ratio(&self, cr: f64) -> f64;
}

/// Analytic MRC for a zipfian workload: caching the hottest `CR`
/// fraction of items captures `CR^(1-θ)` of accesses, so
/// `MR(CR) = 1 − CR^(1−θ)`. Steeper skew (θ → 1) ⇒ tiny caches absorb
/// almost everything — the regime where tiered storage wins (§2.5.2).
pub struct ZipfianMrc {
    theta: f64,
}

/// Builds the zipfian analytic curve (θ ∈ [0, 1)).
pub fn zipfian_miss_ratio_curve(theta: f64) -> ZipfianMrc {
    assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
    ZipfianMrc { theta }
}

impl MissRatioCurve for ZipfianMrc {
    fn miss_ratio(&self, cr: f64) -> f64 {
        let cr = cr.clamp(0.0, 1.0);
        if cr == 0.0 {
            return 1.0;
        }
        1.0 - cr.powf(1.0 - self.theta)
    }
}

/// Empirical MRC measured from a trace with the Mattson stack algorithm
/// (exact LRU miss ratios at every cache size in one pass).
pub struct MeasuredMrc {
    /// `points[k]` = miss ratio with a cache of `k+1` *items*;
    /// interpolated over the unique-key count to map to cache *ratio*.
    points: Vec<f64>,
}

impl MeasuredMrc {
    /// Builds a curve from raw per-item-count miss ratios (the sampled
    /// estimator in [`crate::shards`] produces these).
    pub(crate) fn from_points(points: Vec<f64>) -> Self {
        Self { points }
    }

    /// Number of cache-size points (= unique keys observed).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Computes the LRU miss-ratio curve of `trace` (§5.2's `f(CR)`).
///
/// Item-granular (uniform record sizes assumed); cold misses count.
pub fn lru_miss_ratio_curve(trace: &Trace) -> MeasuredMrc {
    use std::collections::HashMap;
    // Mattson: maintain an LRU stack; a hit at stack depth d (1-based) is
    // a hit for every cache size >= d.
    let mut stack: Vec<u64> = Vec::new(); // key ids, most recent last
    let mut ids: HashMap<&tb_common::Key, u64> = HashMap::new();
    let mut next_id = 0u64;
    let mut hits_at_depth: Vec<u64> = Vec::new();
    let mut total = 0u64;

    for op in trace.ops() {
        total += 1;
        let id = *ids.entry(op.key()).or_insert_with(|| {
            next_id += 1;
            next_id
        });
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            let depth = stack.len() - pos; // 1-based from the top
            if hits_at_depth.len() < depth {
                hits_at_depth.resize(depth, 0);
            }
            hits_at_depth[depth - 1] += 1;
            stack.remove(pos);
        }
        stack.push(id);
    }

    let unique = stack.len().max(1);
    let mut points = Vec::with_capacity(unique);
    let mut cum_hits = 0u64;
    for k in 0..unique {
        cum_hits += hits_at_depth.get(k).copied().unwrap_or(0);
        let miss = 1.0 - cum_hits as f64 / total.max(1) as f64;
        points.push(miss);
    }
    MeasuredMrc { points }
}

impl MissRatioCurve for MeasuredMrc {
    fn miss_ratio(&self, cr: f64) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let cr = cr.clamp(0.0, 1.0);
        if cr == 0.0 {
            return 1.0;
        }
        let n = self.points.len();
        let items = cr * n as f64;
        let k = (items.ceil() as usize).clamp(1, n);
        self.points[k - 1]
    }
}

/// Workload-level cost parameters for the tiered model (Eq. 3). All
/// costs are for the *whole workload*: e.g. `pc_cache` is what serving
/// every request from cache costs, `sc_cache` what caching every byte
/// costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredCostParams {
    /// `PC_cache` — performance cost of the request stream on the cache tier.
    pub pc_cache: f64,
    /// `PC_miss` — additional performance cost if *every* request missed
    /// (multiplied by MR in the model).
    pub pc_miss: f64,
    /// `SC_cache` — space cost of holding *all* data in the cache tier
    /// (multiplied by CR).
    pub sc_cache: f64,
    /// `PC_storage` — performance cost of the full stream on the storage
    /// tier (multiplied by MR).
    pub pc_storage: f64,
    /// `SC_storage` — space cost of all data on the storage tier.
    pub sc_storage: f64,
}

/// Cache-tier cost at a given cache ratio (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheTierCost {
    pub cache_ratio: f64,
    pub miss_ratio: f64,
    pub performance_cost: f64,
    pub space_cost: f64,
}

impl CacheTierCost {
    pub fn total(&self) -> f64 {
        self.performance_cost.max(self.space_cost)
    }
}

/// The tiered cost model: parameters + a miss-ratio curve.
pub struct TieredCostModel<M: MissRatioCurve> {
    pub params: TieredCostParams,
    pub mrc: M,
}

impl<M: MissRatioCurve> TieredCostModel<M> {
    pub fn new(params: TieredCostParams, mrc: M) -> Self {
        Self { params, mrc }
    }

    /// Cache-tier cost at `cr` (Eq. 6):
    /// `max(PC_cache + PC_miss × MR, SC_cache × CR)`.
    pub fn cache_tier_cost(&self, cr: f64) -> CacheTierCost {
        let mr = self.mrc.miss_ratio(cr);
        let p = &self.params;
        CacheTierCost {
            cache_ratio: cr,
            miss_ratio: mr,
            performance_cost: p.pc_cache + p.pc_miss * mr,
            space_cost: p.sc_cache * cr,
        }
    }

    /// Storage-tier cost at `cr`: `max(PC_storage × MR, SC_storage)`.
    pub fn storage_tier_cost(&self, cr: f64) -> f64 {
        let mr = self.mrc.miss_ratio(cr);
        (self.params.pc_storage * mr).max(self.params.sc_storage)
    }

    /// Full tiered cost (Eq. 3): cache tier + storage tier.
    pub fn total_cost(&self, cr: f64) -> f64 {
        self.cache_tier_cost(cr).total() + self.storage_tier_cost(cr)
    }

    /// Theorem 5.1: the optimal cache ratio `CR*` solves
    /// `PC_cache + PC_miss × f(CR) = SC_cache × CR` — the intersection
    /// of the non-increasing g and the increasing h. Solved by bisection;
    /// returns the boundary optimum when the curves do not cross.
    pub fn optimal_cache_ratio(&self) -> CacheTierCost {
        let g = |cr: f64| self.params.pc_cache + self.params.pc_miss * self.mrc.miss_ratio(cr);
        let h = |cr: f64| self.params.sc_cache * cr;

        // g(0) >= h(0) = 0 always. If g(1) > h(1), g never crosses below
        // h: cache everything (performance dominates regardless).
        if g(1.0) >= h(1.0) {
            return self.cache_tier_cost(1.0);
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if g(mid) >= h(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.cache_tier_cost(0.5 * (lo + hi))
    }

    /// §2.4: tiered storage is cost-effective when
    /// `C_tiered < min(C_cache_only, C_storage_only)`.
    /// Cache-only cost: `max(PC_cache, SC_cache)`; storage-only:
    /// `max(PC_storage, SC_storage)`.
    pub fn tiered_wins(&self) -> bool {
        let tiered = self.total_cost(self.optimal_cache_ratio().cache_ratio);
        let cache_only = self.params.pc_cache.max(self.params.sc_cache);
        let storage_only = self.params.pc_storage.max(self.params.sc_storage);
        tiered < cache_only.min(storage_only)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_common::Key;
    use tb_workload::Op;

    fn skewed_params() -> TieredCostParams {
        // Cache is fast but expensive; storage cheap but slow; misses
        // carry a moderate penalty.
        TieredCostParams {
            pc_cache: 1.0,
            pc_miss: 4.0,
            sc_cache: 20.0,
            pc_storage: 30.0,
            sc_storage: 2.0,
        }
    }

    #[test]
    fn zipfian_mrc_shape() {
        let mrc = zipfian_miss_ratio_curve(0.99);
        assert_eq!(mrc.miss_ratio(0.0), 1.0);
        assert!(mrc.miss_ratio(1.0).abs() < 1e-12);
        // Skewed: 1% of items absorb most accesses.
        assert!(mrc.miss_ratio(0.01) < 0.1);
        // Monotone non-increasing.
        let mut prev = 1.0;
        for i in 0..=100 {
            let mr = mrc.miss_ratio(i as f64 / 100.0);
            assert!(mr <= prev + 1e-12);
            prev = mr;
        }
    }

    #[test]
    fn uniform_zipf_theta0_is_linear() {
        let mrc = zipfian_miss_ratio_curve(0.0);
        assert!((mrc.miss_ratio(0.3) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn measured_mrc_from_cyclic_trace() {
        // Round-robin over 4 keys: LRU of size < 4 always misses,
        // size >= 4 hits after the first cycle.
        let keys = ["a", "b", "c", "d"];
        let ops: Vec<Op> = (0..400)
            .map(|i| Op::Read {
                key: Key::from(keys[i % 4]),
            })
            .collect();
        let mrc = lru_miss_ratio_curve(&Trace::new(ops));
        assert!(mrc.miss_ratio(0.75) > 0.95, "LRU<4 must thrash");
        assert!(mrc.miss_ratio(1.0) < 0.05, "LRU=4 must hit");
    }

    #[test]
    fn measured_mrc_skewed_trace() {
        // 90% of accesses to one key: tiny cache already absorbs most.
        let mut ops = vec![];
        for i in 0..1000 {
            let key = if i % 10 == 0 {
                Key::from(format!("cold{}", i))
            } else {
                Key::from("hot")
            };
            ops.push(Op::Read { key });
        }
        let mrc = lru_miss_ratio_curve(&Trace::new(ops));
        assert!(mrc.miss_ratio(0.02) < 0.2, "mr {}", mrc.miss_ratio(0.02));
    }

    #[test]
    fn eq3_components_add_up() {
        let m = TieredCostModel::new(skewed_params(), zipfian_miss_ratio_curve(0.99));
        let cr = 0.1;
        let cache = m.cache_tier_cost(cr);
        let total = m.total_cost(cr);
        assert!((total - (cache.total() + m.storage_tier_cost(cr))).abs() < 1e-12);
    }

    #[test]
    fn theorem51_balance_point() {
        let m = TieredCostModel::new(skewed_params(), zipfian_miss_ratio_curve(0.99));
        let opt = m.optimal_cache_ratio();
        // Interior optimum: g(CR*) == h(CR*).
        assert!(
            (opt.performance_cost - opt.space_cost).abs() / opt.total() < 1e-6,
            "PC {} != SC {}",
            opt.performance_cost,
            opt.space_cost
        );
        // And it is no worse than a scan of the ratio space.
        for i in 1..=100 {
            let cr = i as f64 / 100.0;
            assert!(
                m.cache_tier_cost(cr).total() >= opt.total() - 1e-9,
                "cr={cr} beats the 'optimal'"
            );
        }
    }

    #[test]
    fn boundary_case_cache_everything() {
        // Space nearly free ⇒ no crossing ⇒ CR* = 1.
        let params = TieredCostParams {
            pc_cache: 5.0,
            pc_miss: 10.0,
            sc_cache: 0.5,
            pc_storage: 1.0,
            sc_storage: 0.1,
        };
        let m = TieredCostModel::new(params, zipfian_miss_ratio_curve(0.9));
        assert_eq!(m.optimal_cache_ratio().cache_ratio, 1.0);
    }

    #[test]
    fn tiered_wins_on_skewed_workloads() {
        // §2.5.2's three conditions hold: skew, cost disparity, low miss
        // penalty ⇒ tiering beats both single-tier options.
        let m = TieredCostModel::new(skewed_params(), zipfian_miss_ratio_curve(0.99));
        assert!(m.tiered_wins());
    }

    #[test]
    fn tiered_loses_on_uniform_workloads() {
        // No skew: every miss is expensive and the cache can't be small.
        let params = TieredCostParams {
            pc_cache: 1.0,
            pc_miss: 30.0,
            sc_cache: 3.0,
            pc_storage: 50.0,
            sc_storage: 2.5,
        };
        let m = TieredCostModel::new(params, zipfian_miss_ratio_curve(0.0));
        assert!(!m.tiered_wins());
    }

    #[test]
    fn empty_trace_mrc_defaults_to_miss() {
        let mrc = lru_miss_ratio_curve(&Trace::default());
        assert_eq!(mrc.miss_ratio(0.5), 1.0);
    }
}
