//! The Five-Minute Rule, classic and adapted (paper §5.1).
//!
//! Gray & Putzolu's rule prices the choice "keep a page in RAM vs. fetch
//! it from disk on demand": below a break-even access interval, memory is
//! cheaper. The paper restates it for modern tiered deployments in cost-
//! model terms (Eq. 5):
//!
//! ```text
//! BreakEvenInterval = CPQPS_slow / (CPGB_fast × AverageRecordSize)
//! ```
//!
//! A record accessed more often than once per interval belongs in the
//! fast (performance-optimized) configuration; rarer records belong in
//! the slow (space-optimized) one. Table 3 computes these intervals
//! between TierBase configurations.

use crate::model::CostMetrics;

/// Classic 1987 formulation (Eq. 4): pages per MB of RAM, accesses per
/// second per disk, price per disk drive, price per MB of RAM.
pub fn classic_five_minute_rule(
    pages_per_mb_ram: f64,
    accesses_per_second_per_disk: f64,
    price_per_disk: f64,
    price_per_mb_ram: f64,
) -> f64 {
    (pages_per_mb_ram / accesses_per_second_per_disk) * (price_per_disk / price_per_mb_ram)
}

/// Adapted rule (Eq. 5). `record_size_gb` is the average record size in
/// GB (bytes / 2^30) so units cancel: seconds per access.
pub fn break_even_interval(cpqps_slow: f64, cpgb_fast: f64, avg_record_size_bytes: f64) -> f64 {
    let record_gb = avg_record_size_bytes / (1u64 << 30) as f64;
    cpqps_slow / (cpgb_fast * record_gb)
}

/// One row of Table 3: the break-even interval between a fast and a slow
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakEvenRow {
    pub fast: String,
    pub slow: String,
    pub interval_seconds: f64,
}

/// Pairwise break-even table over named configurations (Table 3).
#[derive(Debug, Clone, Default)]
pub struct BreakEvenTable {
    pub rows: Vec<BreakEvenRow>,
}

impl BreakEvenTable {
    /// Builds all fast/slow pairs from configurations ordered however
    /// the caller likes. A pair (a, b) appears when `a` has lower CPQPS
    /// (faster) and `b` has lower CPGB (more space-efficient) — the only
    /// direction where a break-even exists.
    pub fn build(configs: &[(String, CostMetrics)], avg_record_size_bytes: f64) -> Self {
        let mut rows = Vec::new();
        for (fast_name, fast) in configs {
            for (slow_name, slow) in configs {
                if fast_name == slow_name {
                    continue;
                }
                if fast.cpqps() < slow.cpqps() && slow.cpgb() < fast.cpgb() {
                    rows.push(BreakEvenRow {
                        fast: fast_name.clone(),
                        slow: slow_name.clone(),
                        interval_seconds: break_even_interval(
                            slow.cpqps(),
                            fast.cpgb(),
                            avg_record_size_bytes,
                        ),
                    });
                }
            }
        }
        Self { rows }
    }

    /// Recommends the config for a record with the given mean access
    /// interval: the *fast* side below break-even, the *slow* side above.
    /// With several applicable rows the tightest (largest) break-even
    /// wins, mirroring the paper's laddered recommendation (Table 3).
    pub fn recommend(&self, access_interval_seconds: f64) -> Option<&str> {
        // Candidate slow configs whose break-even is exceeded.
        let exceeded = self
            .rows
            .iter()
            .filter(|r| access_interval_seconds > r.interval_seconds)
            .max_by(|a, b| {
                a.interval_seconds
                    .partial_cmp(&b.interval_seconds)
                    .expect("finite")
            });
        if let Some(row) = exceeded {
            return Some(&row.slow);
        }
        // Otherwise the fastest config with the smallest break-even.
        self.rows
            .iter()
            .min_by(|a, b| {
                a.interval_seconds
                    .partial_cmp(&b.interval_seconds)
                    .expect("finite")
            })
            .map(|r| r.fast.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_rule_1987_numbers() {
        // Gray & Putzolu's original: 1MB RAM holds ~1000 1KB pages... use
        // the canonical example: 100 pages/MB (10KB pages? historical),
        // 15 accesses/s/disk, $15k/disk, $5/KB→/MB. What matters here is
        // the formula's structure; check proportionality.
        let base = classic_five_minute_rule(100.0, 15.0, 15000.0, 50.0);
        let double_disk_price = classic_five_minute_rule(100.0, 15.0, 30000.0, 50.0);
        assert!((double_disk_price / base - 2.0).abs() < 1e-9);
        let double_ram_price = classic_five_minute_rule(100.0, 15.0, 15000.0, 100.0);
        assert!((double_ram_price / base - 0.5).abs() < 1e-9);
    }

    #[test]
    fn break_even_units() {
        // Slow config: 1e-5 cost per QPS; fast config: 0.25 per GB;
        // 1 KB records.
        let s = break_even_interval(1e-5, 0.25, 1024.0);
        // = 1e-5 / (0.25 * 1024/2^30) ≈ 41.9 s
        assert!((s - 41.943).abs() < 0.1, "{s}");
    }

    #[test]
    fn bigger_records_break_even_sooner() {
        let small = break_even_interval(1e-5, 0.25, 128.0);
        let large = break_even_interval(1e-5, 0.25, 4096.0);
        assert!(large < small);
    }

    fn three_configs() -> Vec<(String, CostMetrics)> {
        // Mirrors Table 3's ladder: Raw (fast, space-hungry), PMem
        // (middle), PBC compression (slow, space-frugal).
        vec![
            ("raw".into(), CostMetrics::new(120_000.0, 3.0, 1.0)),
            ("pmem".into(), CostMetrics::new(100_000.0, 8.0, 1.0)),
            ("pbc".into(), CostMetrics::new(60_000.0, 12.0, 1.0)),
        ]
    }

    #[test]
    fn table_has_expected_pairs() {
        let t = BreakEvenTable::build(&three_configs(), 200.0);
        let pairs: Vec<(String, String)> = t
            .rows
            .iter()
            .map(|r| (r.fast.clone(), r.slow.clone()))
            .collect();
        assert!(pairs.contains(&("raw".into(), "pmem".into())));
        assert!(pairs.contains(&("raw".into(), "pbc".into())));
        assert!(pairs.contains(&("pmem".into(), "pbc".into())));
        assert_eq!(pairs.len(), 3, "{pairs:?}");
        // Ladder ordering like Table 3: raw→pmem < raw→pbc < pmem→pbc.
        let get = |f: &str, s: &str| {
            t.rows
                .iter()
                .find(|r| r.fast == f && r.slow == s)
                .unwrap()
                .interval_seconds
        };
        assert!(get("raw", "pmem") < get("raw", "pbc"));
        assert!(get("raw", "pbc") < get("pmem", "pbc"));
    }

    #[test]
    fn recommend_follows_interval() {
        let t = BreakEvenTable::build(&three_configs(), 200.0);
        let max_interval = t
            .rows
            .iter()
            .map(|r| r.interval_seconds)
            .fold(0.0f64, f64::max);
        let min_interval = t
            .rows
            .iter()
            .map(|r| r.interval_seconds)
            .fold(f64::INFINITY, f64::min);
        // Hot data (interval below every break-even) → fast config.
        assert_eq!(t.recommend(min_interval * 0.5), Some("raw"));
        // Cold data (beyond every break-even) → most space-efficient.
        assert_eq!(t.recommend(max_interval * 2.0), Some("pbc"));
    }

    #[test]
    fn empty_table_recommends_nothing() {
        let t = BreakEvenTable::default();
        assert_eq!(t.recommend(100.0), None);
    }
}
