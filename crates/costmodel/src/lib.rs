//! The Space-Performance Cost Model (paper §2 and §5).
//!
//! The model prices a workload on a fleet of identical resource
//! instances: the *performance cost* `PC` pays for enough instances to
//! serve the workload's QPS, the *space cost* `SC` pays for enough
//! instances to hold its data, and the bill is `C = max(PC, SC)` because
//! a shared-nothing deployment must provision for the larger demand.
//!
//! Modules:
//! * [`model`] — Definitions 1–2: `PC`, `SC`, `CPQPS`, `CPGB`, instance
//!   and workload descriptions, tolerance ratios.
//! * [`optimal`] — Theorem 2.1 (Optimal Cost): configuration selection
//!   and the `PC = SC` balance point.
//! * [`tiered`] — §2.4/§5.2: the tiered-storage cost model (Eq. 3/6),
//!   miss-ratio curves, and Theorem 5.1's optimal cache ratio.
//! * [`five_minute`] — §5.1: the adapted Five-Minute Rule and break-even
//!   intervals (Eq. 5, Table 3).
//! * [`framework`] — §5.3: the sample → load → replay → calculate →
//!   iterate evaluation loop over live engines.

pub mod advisor;
pub mod five_minute;
pub mod framework;
pub mod model;
pub mod optimal;
pub mod shards;
pub mod tiered;

pub use advisor::{
    advise, classify, option_shortlist, options_for, Advice, AdvisorThresholds, OptimizationOption,
    WorkloadFeature, WorkloadProfile,
};
pub use five_minute::{break_even_interval, classic_five_minute_rule, BreakEvenTable};
pub use framework::{
    evaluate_engine, CostEvaluator, EvaluationReport, MeasuredConfig, ReplayMeasurement,
};
pub use model::{CostMetrics, InstanceSpec, WorkloadDemand};
pub use optimal::{most_balanced_config, optimal_config, sweep_frontier, ConfigCost};
pub use shards::{shards_miss_ratio_curve, ShardsConfig};
pub use tiered::{
    lru_miss_ratio_curve, zipfian_miss_ratio_curve, CacheTierCost, MissRatioCurve, TieredCostModel,
    TieredCostParams,
};
