//! SHARDS: sampled miss-ratio-curve estimation.
//!
//! The exact Mattson construction in [`crate::tiered::lru_miss_ratio_curve`]
//! tracks every reference, which is exactly what the paper's citation on
//! fast MRC modeling ([29], and SHARDS before it) exists to avoid:
//! production traces are long and MRC construction must be cheap enough
//! to run continuously. SHARDS (*spatially hashed approximate reuse
//! distance sampling*) keeps only references whose key hashes below a
//! sampling threshold — a fixed-rate spatial filter, so *all* accesses
//! to a sampled key are kept and reuse distances among sampled keys are
//! unbiased once rescaled by `1/R`.
//!
//! The estimator here implements fixed-rate SHARDS with the standard
//! `SHARDS_adj` correction: the expected number of sampled unique keys
//! is compared with the observed number and the coldest bucket is
//! adjusted, which removes the systematic error on traces whose
//! sampled-set size drifts from expectation.

use crate::tiered::MeasuredMrc;
use tb_common::fx_hash;
use tb_workload::Trace;

/// Fixed-rate SHARDS estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardsConfig {
    /// Spatial sampling rate `R ∈ (0, 1]`. `R = 1` degenerates to the
    /// exact Mattson curve.
    pub sampling_rate: f64,
}

impl Default for ShardsConfig {
    fn default() -> Self {
        Self {
            sampling_rate: 0.01,
        }
    }
}

/// True when `key`'s spatial hash admits it at rate `rate`.
#[inline]
fn sampled(key: &[u8], rate: f64) -> bool {
    // Map the hash to [0, 1) and compare against the rate. Using the
    // high bits keeps the filter independent of the sharding use of the
    // same hash function.
    let h = fx_hash(key);
    (h >> 11) as f64 / (1u64 << 53) as f64 * 1.0 < rate
}

/// Estimates the LRU miss-ratio curve of `trace` by spatial sampling.
///
/// Runtime and memory scale with `R × unique_keys` instead of the full
/// key population; the returned curve plugs into
/// [`TieredCostModel`](crate::tiered::TieredCostModel) exactly like the
/// exact one.
pub fn shards_miss_ratio_curve(trace: &Trace, config: ShardsConfig) -> MeasuredMrc {
    let rate = config.sampling_rate;
    assert!(
        rate > 0.0 && rate <= 1.0,
        "sampling rate must be in (0, 1], got {rate}"
    );

    use std::collections::HashMap;
    let mut stack: Vec<u64> = Vec::new(); // sampled key ids, MRU last
    let mut ids: HashMap<&tb_common::Key, u64> = HashMap::new();
    let mut next_id = 0u64;
    // Hits bucketed by *rescaled* stack depth (depth / R).
    let mut hits_at_scaled_depth: Vec<f64> = Vec::new();
    let mut total_refs = 0u64; // all references, sampled or not
    let mut sampled_refs = 0u64;

    for op in trace.ops() {
        total_refs += 1;
        if !sampled(op.key().as_slice(), rate) {
            continue;
        }
        sampled_refs += 1;
        let id = *ids.entry(op.key()).or_insert_with(|| {
            next_id += 1;
            next_id
        });
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            // 1-based among sampled keys.
            let depth = stack.len() - pos;
            // Rescale: a sampled-set reuse distance d estimates a true
            // distance d / R.
            let scaled = ((depth as f64 / rate).ceil() as usize).max(1);
            if hits_at_scaled_depth.len() < scaled {
                hits_at_scaled_depth.resize(scaled, 0.0);
            }
            hits_at_scaled_depth[scaled - 1] += 1.0;
            stack.remove(pos);
        }
        stack.push(id);
    }

    if total_refs == 0 || sampled_refs == 0 {
        return MeasuredMrc::from_points(Vec::new());
    }

    // Estimated unique-key population.
    let est_unique = ((stack.len() as f64 / rate).ceil() as usize).max(1);
    if hits_at_scaled_depth.len() < est_unique {
        hits_at_scaled_depth.resize(est_unique, 0.0);
    }

    // SHARDS_adj: the sampled trace should contain
    // `total_refs × R` references in expectation; the shortfall (or
    // excess) is attributed to the first bucket, which corrects the
    // curve's vertical offset on drifting traces.
    let expected_sampled = total_refs as f64 * rate;
    let adjustment = expected_sampled - sampled_refs as f64;
    if let Some(first) = hits_at_scaled_depth.first_mut() {
        // Hits scale by 1/R below; apply the correction in sampled
        // units. Clamp so the bucket never goes negative.
        *first = (*first + adjustment).max(0.0);
    }

    // Convert to miss ratios over estimated cache sizes. Each sampled
    // hit represents 1/R true hits.
    let mut points = Vec::with_capacity(est_unique);
    let mut cum_hits = 0.0f64;
    for k in 0..est_unique {
        cum_hits += hits_at_scaled_depth.get(k).copied().unwrap_or(0.0) / rate;
        let miss = (1.0 - cum_hits / total_refs as f64).clamp(0.0, 1.0);
        points.push(miss);
    }
    // Enforce monotonicity (rescaling can locally jitter).
    for k in 1..points.len() {
        if points[k] > points[k - 1] {
            points[k] = points[k - 1];
        }
    }
    MeasuredMrc::from_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiered::{lru_miss_ratio_curve, MissRatioCurve};
    use proptest::prelude::*;
    use tb_common::Key;
    use tb_workload::Op;

    /// Zipf-like synthetic trace: key `i` is accessed with weight
    /// proportional to rank, deterministic.
    fn skewed_trace(keys: usize, refs: usize) -> Trace {
        let mut ops = Vec::with_capacity(refs);
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..refs {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Square the uniform draw to skew toward low ranks.
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let rank = ((u * u) * keys as f64) as usize;
            ops.push(Op::Read {
                key: Key::from(format!("key-{:06}", rank.min(keys - 1))),
            });
        }
        Trace::new(ops)
    }

    #[test]
    fn rate_one_matches_exact_curve() {
        let trace = skewed_trace(200, 5_000);
        let exact = lru_miss_ratio_curve(&trace);
        let full = shards_miss_ratio_curve(&trace, ShardsConfig { sampling_rate: 1.0 });
        for i in 0..=20 {
            let cr = i as f64 / 20.0;
            assert!(
                (exact.miss_ratio(cr) - full.miss_ratio(cr)).abs() < 1e-9,
                "cr={cr}: exact {} vs shards@1.0 {}",
                exact.miss_ratio(cr),
                full.miss_ratio(cr)
            );
        }
    }

    #[test]
    fn sampled_curve_approximates_exact() {
        let trace = skewed_trace(2_000, 60_000);
        let exact = lru_miss_ratio_curve(&trace);
        let approx = shards_miss_ratio_curve(&trace, ShardsConfig { sampling_rate: 0.1 });
        // Mean absolute error over the CR grid — SHARDS reports ~0.01
        // at R=0.01 on real traces; our synthetic traces are small, so
        // allow a looser (but still meaningful) bound.
        let mut err_sum = 0.0;
        let mut n = 0;
        for i in 1..=50 {
            let cr = i as f64 / 50.0;
            err_sum += (exact.miss_ratio(cr) - approx.miss_ratio(cr)).abs();
            n += 1;
        }
        let mae = err_sum / n as f64;
        assert!(mae < 0.08, "mean absolute error too high: {mae}");
    }

    #[test]
    fn sampled_curve_is_monotone() {
        let trace = skewed_trace(1_000, 20_000);
        let m = shards_miss_ratio_curve(&trace, ShardsConfig { sampling_rate: 0.2 });
        let mut prev = 1.0;
        for i in 0..=100 {
            let mr = m.miss_ratio(i as f64 / 100.0);
            assert!(mr <= prev + 1e-12, "MRC must be non-increasing");
            prev = mr;
        }
    }

    #[test]
    fn empty_trace_is_all_miss() {
        let m = shards_miss_ratio_curve(&Trace::default(), ShardsConfig::default());
        assert_eq!(m.miss_ratio(0.5), 1.0);
        assert!(m.is_empty());
    }

    #[test]
    fn sampling_shrinks_tracked_state() {
        let trace = skewed_trace(5_000, 50_000);
        let exact = lru_miss_ratio_curve(&trace);
        let approx = shards_miss_ratio_curve(
            &trace,
            ShardsConfig {
                sampling_rate: 0.05,
            },
        );
        // The sampled estimator still produces a full-resolution curve
        // (scaled), with far fewer tracked keys internally; its size
        // estimate should be within 2x of truth for this trace.
        let est = approx.len() as f64;
        let truth = exact.len() as f64;
        assert!(
            est > truth * 0.5 && est < truth * 2.0,
            "unique-key estimate {est} vs true {truth}"
        );
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_rejected() {
        let _ = shards_miss_ratio_curve(&Trace::default(), ShardsConfig { sampling_rate: 0.0 });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For arbitrary small traces and rates, the estimator stays in
        /// [0,1], is monotone, and R=1 equals the exact curve.
        #[test]
        fn prop_estimator_well_formed(
            key_ids in proptest::collection::vec(0u32..64, 1..400),
            rate in 0.05f64..1.0
        ) {
            let ops: Vec<Op> = key_ids
                .iter()
                .map(|i| Op::Read { key: Key::from(format!("k{i}")) })
                .collect();
            let trace = Trace::new(ops);
            let m = shards_miss_ratio_curve(&trace, ShardsConfig { sampling_rate: rate });
            let mut prev = 1.0f64;
            for i in 0..=40 {
                let mr = m.miss_ratio(i as f64 / 40.0);
                prop_assert!((0.0..=1.0).contains(&mr));
                prop_assert!(mr <= prev + 1e-12);
                prev = mr;
            }
        }
    }
}
