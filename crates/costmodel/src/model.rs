//! Core cost definitions (paper §2.1–§2.2).

/// A resource instance: the unit of allocation in the data center
/// (a container with fixed CPU and memory and a monetary price).
///
/// The paper's standard container is 1 CPU core + 4 GB at relative cost
/// 1.0; multi-thread experiments use 4 cores + 16 GB.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    /// Monetary cost of one instance per unit time (relative units).
    pub cost: f64,
    /// CPU cores in the instance.
    pub cpu_cores: u32,
    /// Memory capacity in GB.
    pub memory_gb: f64,
    /// Human-readable label.
    pub name: String,
}

impl InstanceSpec {
    /// The paper's standard container: 1 core, 4 GB, relative cost 1.
    pub fn standard() -> Self {
        Self {
            cost: 1.0,
            cpu_cores: 1,
            memory_gb: 4.0,
            name: "standard-1c4g".into(),
        }
    }

    /// The paper's multi-thread/persistent-database container: 4 cores,
    /// 16 GB, relative cost 4 (prices scale linearly with allocation).
    pub fn large() -> Self {
        Self {
            cost: 4.0,
            cpu_cores: 4,
            memory_gb: 16.0,
            name: "large-4c16g".into(),
        }
    }
}

/// A workload's resource demands: `QPS(w)` and `DataSize(w)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadDemand {
    pub qps: f64,
    pub data_size_gb: f64,
}

impl WorkloadDemand {
    pub fn new(qps: f64, data_size_gb: f64) -> Self {
        assert!(qps >= 0.0 && data_size_gb >= 0.0);
        Self { qps, data_size_gb }
    }
}

/// Measured capability of one (instance, configuration) pair, plus the
/// derived cost metrics of Definition 2.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMetrics {
    /// `MaxPerf(w, i, s)` — sustainable queries/second on one instance.
    pub max_perf_qps: f64,
    /// `MaxSpace(w, i, s)` — storable data in GB on one instance.
    pub max_space_gb: f64,
    /// `Cost(i)` — the instance's price.
    pub instance_cost: f64,
    /// Tolerance ratio reserved against performance variance (≥ 1);
    /// effective capability is divided by it (§2.1 "tolerance ratios").
    pub perf_tolerance: f64,
    /// Tolerance ratio reserved against uneven sharding (≥ 1).
    pub space_tolerance: f64,
}

impl CostMetrics {
    /// Metrics with no redundancy headroom.
    pub fn new(max_perf_qps: f64, max_space_gb: f64, instance_cost: f64) -> Self {
        assert!(max_perf_qps > 0.0, "MaxPerf must be positive");
        assert!(max_space_gb > 0.0, "MaxSpace must be positive");
        Self {
            max_perf_qps,
            max_space_gb,
            instance_cost,
            perf_tolerance: 1.0,
            space_tolerance: 1.0,
        }
    }

    /// Applies tolerance ratios (both ≥ 1).
    pub fn with_tolerance(mut self, perf: f64, space: f64) -> Self {
        assert!(perf >= 1.0 && space >= 1.0, "tolerances must be >= 1");
        self.perf_tolerance = perf;
        self.space_tolerance = space;
        self
    }

    /// Effective per-instance QPS after tolerance.
    fn effective_perf(&self) -> f64 {
        self.max_perf_qps / self.perf_tolerance
    }

    /// Effective per-instance GB after tolerance.
    fn effective_space(&self) -> f64 {
        self.max_space_gb / self.space_tolerance
    }

    /// `CPQPS = Cost(i) / MaxPerf` — cost of each query/second served.
    pub fn cpqps(&self) -> f64 {
        self.instance_cost / self.effective_perf()
    }

    /// `CPGB = Cost(i) / MaxSpace` — cost of each GB stored.
    pub fn cpgb(&self) -> f64 {
        self.instance_cost / self.effective_space()
    }

    /// Performance cost of a workload: `Cost(i) × ceil(QPS / MaxPerf)`
    /// (Definition 1, with the ceiling — whole instances are rented).
    pub fn performance_cost_ceil(&self, w: &WorkloadDemand) -> f64 {
        self.instance_cost * (w.qps / self.effective_perf()).ceil()
    }

    /// Space cost of a workload with the instance-count ceiling.
    pub fn space_cost_ceil(&self, w: &WorkloadDemand) -> f64 {
        self.instance_cost * (w.data_size_gb / self.effective_space()).ceil()
    }

    /// Fluid performance cost `CPQPS × QPS` (Definition 2 / Eq. 2 —
    /// ceiling dropped for workloads spanning many instances).
    pub fn performance_cost(&self, w: &WorkloadDemand) -> f64 {
        self.cpqps() * w.qps
    }

    /// Fluid space cost `CPGB × DataSize`.
    pub fn space_cost(&self, w: &WorkloadDemand) -> f64 {
        self.cpgb() * w.data_size_gb
    }

    /// Total workload cost `C = max(PC, SC)` (Eq. 2).
    pub fn total_cost(&self, w: &WorkloadDemand) -> f64 {
        self.performance_cost(w).max(self.space_cost(w))
    }

    /// Total cost with instance-count ceilings (Definition 1 / Eq. 1).
    pub fn total_cost_ceil(&self, w: &WorkloadDemand) -> f64 {
        self.performance_cost_ceil(w).max(self.space_cost_ceil(w))
    }

    /// True when the workload is performance-critical under this
    /// configuration (PC > SC; Figure 2a's upper region).
    pub fn is_performance_critical(&self, w: &WorkloadDemand) -> bool {
        self.performance_cost(w) > self.space_cost(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> CostMetrics {
        // 1-cost instance serving 100k QPS or holding 4 GB.
        CostMetrics::new(100_000.0, 4.0, 1.0)
    }

    #[test]
    fn cpqps_and_cpgb() {
        let m = metrics();
        assert!((m.cpqps() - 1.0 / 100_000.0).abs() < 1e-12);
        assert!((m.cpgb() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fluid_costs_scale_linearly() {
        let m = metrics();
        let w = WorkloadDemand::new(200_000.0, 10.0);
        assert!((m.performance_cost(&w) - 2.0).abs() < 1e-12);
        assert!((m.space_cost(&w) - 2.5).abs() < 1e-12);
        assert!((m.total_cost(&w) - 2.5).abs() < 1e-12);
        assert!(!m.is_performance_critical(&w));
    }

    #[test]
    fn ceiling_rounds_up_instances() {
        let m = metrics();
        // 150k QPS needs 2 instances; 9 GB needs 3 instances.
        let w = WorkloadDemand::new(150_000.0, 9.0);
        assert_eq!(m.performance_cost_ceil(&w), 2.0);
        assert_eq!(m.space_cost_ceil(&w), 3.0);
        assert_eq!(m.total_cost_ceil(&w), 3.0);
    }

    #[test]
    fn ceil_cost_dominates_fluid_cost() {
        let m = metrics();
        for (qps, gb) in [(1.0, 0.1), (99_999.0, 3.9), (100_001.0, 4.1), (1e6, 40.0)] {
            let w = WorkloadDemand::new(qps, gb);
            assert!(
                m.total_cost_ceil(&w) >= m.total_cost(&w) - 1e-9,
                "ceil < fluid at qps={qps} gb={gb}"
            );
        }
    }

    #[test]
    fn tolerance_raises_costs() {
        let m = metrics();
        let t = metrics().with_tolerance(1.25, 1.5);
        let w = WorkloadDemand::new(100_000.0, 4.0);
        assert!(t.performance_cost(&w) > m.performance_cost(&w));
        assert!(t.space_cost(&w) > m.space_cost(&w));
        assert!((t.performance_cost(&w) - 1.25).abs() < 1e-12);
        assert!((t.space_cost(&w) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn performance_critical_classification() {
        let m = metrics();
        let perf_heavy = WorkloadDemand::new(1_000_000.0, 1.0);
        let space_heavy = WorkloadDemand::new(1_000.0, 100.0);
        assert!(m.is_performance_critical(&perf_heavy));
        assert!(!m.is_performance_critical(&space_heavy));
    }

    #[test]
    fn instance_presets() {
        let s = InstanceSpec::standard();
        let l = InstanceSpec::large();
        assert_eq!(s.cpu_cores, 1);
        assert_eq!(l.cpu_cores, 4);
        assert!((l.cost / s.cost - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "MaxPerf must be positive")]
    fn zero_maxperf_rejected() {
        CostMetrics::new(0.0, 1.0, 1.0);
    }
}
