//! The cost-optimization framework (paper §5.3): sample → load → replay
//! → calculate → iterate.
//!
//! A recorded workload trace is replayed against a live engine per
//! candidate configuration; the measured `MaxPerf`/`MaxSpace` feed the
//! cost model, and iterating over candidates approaches the cost-optimal
//! configuration.

use crate::model::{CostMetrics, InstanceSpec, WorkloadDemand};
use crate::optimal::{optimal_config, ConfigCost};
use std::time::Instant;
use tb_common::{Histogram, KvEngine, Result};
use tb_workload::{Op, Trace};

/// Raw measurements from one replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayMeasurement {
    /// Operations per second sustained during the run phase.
    pub achieved_qps: f64,
    /// Engine-reported expensive-resource footprint after the load.
    pub resident_bytes: u64,
    /// Logical bytes stored (keys + final values), for the expansion
    /// factor.
    pub logical_bytes: u64,
    /// p99 operation latency in nanoseconds.
    pub p99_latency_ns: u64,
    /// Mean operation latency in nanoseconds.
    pub mean_latency_ns: f64,
    /// Operations that returned an error (backpressure etc.).
    pub error_count: u64,
}

impl ReplayMeasurement {
    /// Bytes of resource consumed per logical byte stored (≥ 0; > 1 for
    /// engines with index/replica overhead, < 1 with compression).
    pub fn expansion_factor(&self) -> f64 {
        if self.logical_bytes == 0 {
            1.0
        } else {
            self.resident_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// Steps 2–3 of the framework: load the snapshot, replay the recorded
/// operations, and measure performance and space.
pub fn evaluate_engine(
    engine: &dyn KvEngine,
    load: &Trace,
    run: &Trace,
) -> Result<ReplayMeasurement> {
    // Load phase (not timed — the paper measures the run phase).
    let mut logical = std::collections::HashMap::new();
    for op in load.ops() {
        apply(engine, op)?;
        track_logical(&mut logical, op);
    }
    engine.sync()?;

    // Run phase, timed per-op.
    let hist = Histogram::new();
    let mut errors = 0u64;
    let started = Instant::now();
    for op in run.ops() {
        let t0 = Instant::now();
        if apply(engine, op).is_err() {
            errors += 1;
        }
        hist.record(t0.elapsed().as_nanos() as u64);
        track_logical(&mut logical, op);
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    engine.sync()?;

    Ok(ReplayMeasurement {
        achieved_qps: run.len() as f64 / elapsed,
        resident_bytes: engine.resident_bytes(),
        logical_bytes: logical.values().sum(),
        p99_latency_ns: hist.p99(),
        mean_latency_ns: hist.mean(),
        error_count: errors,
    })
}

fn apply(engine: &dyn KvEngine, op: &Op) -> Result<()> {
    match op {
        Op::Read { key } => engine.get(key).map(|_| ()),
        Op::Insert { key, value } | Op::Update { key, value } => {
            engine.put(key.clone(), value.clone())
        }
        Op::Delete { key } => engine.delete(key),
        Op::ReadModifyWrite { key, value } => {
            engine.get(key)?;
            engine.put(key.clone(), value.clone())
        }
        Op::Scan { start, end, limit } => {
            engine.scan(start, Some(end), *limit as usize).map(|_| ())
        }
    }
}

fn track_logical(map: &mut std::collections::HashMap<tb_common::Key, u64>, op: &Op) {
    match op {
        Op::Insert { key, value }
        | Op::Update { key, value }
        | Op::ReadModifyWrite { key, value } => {
            map.insert(key.clone(), (key.len() + value.len()) as u64);
        }
        Op::Delete { key } => {
            map.remove(key);
        }
        Op::Read { .. } | Op::Scan { .. } => {}
    }
}

/// A named configuration with its derived cost metrics (step 4 output).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredConfig {
    pub name: String,
    pub metrics: CostMetrics,
    pub measurement: ReplayMeasurement,
}

/// Step 4–5 driver: converts measurements into cost metrics against an
/// instance spec and workload demand, and selects the optimum.
pub struct CostEvaluator {
    pub instance: InstanceSpec,
    pub demand: WorkloadDemand,
    /// Space capacity of one instance in GB for the engine class under
    /// test (memory capacity for caching systems, provisioned disk for
    /// persistent ones).
    pub instance_capacity_gb: f64,
}

impl CostEvaluator {
    pub fn new(instance: InstanceSpec, demand: WorkloadDemand) -> Self {
        let cap = instance.memory_gb;
        Self {
            instance,
            demand,
            instance_capacity_gb: cap,
        }
    }

    /// Overrides the per-instance space capacity (disk-based engines).
    pub fn with_capacity_gb(mut self, gb: f64) -> Self {
        self.instance_capacity_gb = gb;
        self
    }

    /// Step 4: derive `CostMetrics` from a replay measurement.
    ///
    /// `MaxPerf` is the measured sustainable QPS; `MaxSpace` is the
    /// instance capacity divided by the engine's expansion factor
    /// (overheads shrink it, compression grows it).
    pub fn measure(
        &self,
        name: impl Into<String>,
        engine: &dyn KvEngine,
        load: &Trace,
        run: &Trace,
    ) -> Result<MeasuredConfig> {
        let m = evaluate_engine(engine, load, run)?;
        let max_space = self.instance_capacity_gb / m.expansion_factor().max(1e-9);
        let metrics = CostMetrics::new(m.achieved_qps.max(1e-9), max_space, self.instance.cost);
        Ok(MeasuredConfig {
            name: name.into(),
            metrics,
            measurement: m,
        })
    }

    /// Step 5: evaluate all candidates and pick the cost-optimal one.
    pub fn report(&self, configs: Vec<MeasuredConfig>) -> EvaluationReport {
        let costs: Vec<ConfigCost> = configs
            .iter()
            .map(|c| ConfigCost::from_metrics(c.name.clone(), &c.metrics, &self.demand))
            .collect();
        let optimal = optimal_config(&costs).map(|c| c.name.clone());
        EvaluationReport {
            configs,
            costs,
            optimal,
        }
    }
}

/// Final framework output: per-config costs and the selected optimum.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    pub configs: Vec<MeasuredConfig>,
    pub costs: Vec<ConfigCost>,
    /// Name of the cost-optimal configuration (None if no candidates).
    pub optimal: Option<String>,
}

impl EvaluationReport {
    /// Cost row for a named configuration.
    pub fn cost_of(&self, name: &str) -> Option<&ConfigCost> {
        self.costs.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use tb_common::{Key, Value};
    use tb_workload::{Workload, WorkloadSpec};

    /// Deterministic toy engine: a map with a simulated space overhead.
    struct ToyEngine {
        map: Mutex<BTreeMap<Key, Value>>,
        overhead_num: u64,
        overhead_den: u64,
    }

    impl ToyEngine {
        fn with_expansion(num: u64, den: u64) -> Self {
            Self {
                map: Mutex::new(BTreeMap::new()),
                overhead_num: num,
                overhead_den: den,
            }
        }
    }

    impl KvEngine for ToyEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.map.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn resident_bytes(&self) -> u64 {
            let logical: u64 = self
                .map
                .lock()
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum();
            logical * self.overhead_num / self.overhead_den
        }
        fn label(&self) -> String {
            "toy".into()
        }
    }

    fn small_traces() -> (Trace, Trace) {
        Workload::new(WorkloadSpec::ycsb_a(200, 1000)).generate()
    }

    #[test]
    fn replay_measures_space_and_latency() {
        let (load, run) = small_traces();
        let e = ToyEngine::with_expansion(2, 1); // 2x overhead
        let m = evaluate_engine(&e, &load, &run).unwrap();
        assert!(m.achieved_qps > 0.0);
        assert!(m.logical_bytes > 0);
        assert!(
            (m.expansion_factor() - 2.0).abs() < 0.01,
            "{}",
            m.expansion_factor()
        );
        assert!(m.p99_latency_ns > 0);
        assert_eq!(m.error_count, 0);
    }

    #[test]
    fn compressed_engine_gets_more_max_space() {
        let (load, run) = small_traces();
        let demand = WorkloadDemand::new(80_000.0, 10.0);
        let ev = CostEvaluator::new(InstanceSpec::standard(), demand);

        let raw = ev
            .measure("raw", &ToyEngine::with_expansion(1, 1), &load, &run)
            .unwrap();
        let compressed = ev
            .measure("pbc", &ToyEngine::with_expansion(1, 2), &load, &run)
            .unwrap();
        assert!(
            compressed.metrics.max_space_gb > raw.metrics.max_space_gb * 1.5,
            "compression must raise MaxSpace: {} vs {}",
            compressed.metrics.max_space_gb,
            raw.metrics.max_space_gb
        );
    }

    #[test]
    fn report_selects_min_total_cost() {
        let (load, run) = small_traces();
        // Space-critical demand: compression should win.
        let demand = WorkloadDemand::new(10.0, 1000.0);
        let ev = CostEvaluator::new(InstanceSpec::standard(), demand);
        let raw = ev
            .measure("raw", &ToyEngine::with_expansion(1, 1), &load, &run)
            .unwrap();
        let pbc = ev
            .measure("pbc", &ToyEngine::with_expansion(1, 4), &load, &run)
            .unwrap();
        let report = ev.report(vec![raw, pbc]);
        assert_eq!(report.optimal.as_deref(), Some("pbc"));
        assert!(report.cost_of("raw").unwrap().total() > report.cost_of("pbc").unwrap().total());
    }

    #[test]
    fn capacity_override_scales_max_space() {
        let (load, run) = small_traces();
        let demand = WorkloadDemand::new(100.0, 10.0);
        let small = CostEvaluator::new(InstanceSpec::standard(), demand);
        let big = CostEvaluator::new(InstanceSpec::standard(), demand).with_capacity_gb(400.0);
        let e1 = ToyEngine::with_expansion(1, 1);
        let e2 = ToyEngine::with_expansion(1, 1);
        let a = small.measure("a", &e1, &load, &run).unwrap();
        let b = big.measure("b", &e2, &load, &run).unwrap();
        assert!((b.metrics.max_space_gb / a.metrics.max_space_gb - 100.0).abs() < 1.0);
    }

    #[test]
    fn empty_report() {
        let ev = CostEvaluator::new(InstanceSpec::standard(), WorkloadDemand::new(1.0, 1.0));
        let r = ev.report(vec![]);
        assert!(r.optimal.is_none());
    }
}
