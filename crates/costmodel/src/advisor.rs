//! The Table 1 advisor: workload features → optimization options.
//!
//! Section 2.5.3 introduces "a general framework for mapping workload
//! characteristics to optimization strategies" and Table 1 spells the
//! mapping out. This module is that table as code: classify a workload
//! profile into the paper's feature rows, then emit the option column
//! for every matched row. It is the *planning-time* complement to the
//! live-counter `Insight` service in `tierbase-core` — this advisor
//! needs only a workload description, no running store.

use crate::model::CostMetrics;

/// An offline description of a workload, the advisor's input.
/// Estimates are fine; the thresholds below are deliberately coarse,
/// matching how the paper's Table 1 is phrased.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Aggregate queries per second.
    pub qps: f64,
    /// Total data volume in GB.
    pub data_size_gb: f64,
    /// Fraction of operations that are reads (`[0, 1]`).
    pub read_fraction: f64,
    /// Access-skew estimate as a zipfian θ (`0` uniform, `→1` extreme).
    pub zipf_theta: f64,
    /// p99 latency budget in milliseconds.
    pub p99_budget_ms: f64,
}

impl WorkloadProfile {
    pub fn new(qps: f64, data_size_gb: f64) -> Self {
        Self {
            qps,
            data_size_gb,
            read_fraction: 0.5,
            zipf_theta: 0.0,
            p99_budget_ms: f64::INFINITY,
        }
    }

    pub fn read_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.read_fraction = f;
        self
    }

    pub fn zipf_theta(mut self, theta: f64) -> Self {
        assert!((0.0..1.0).contains(&theta));
        self.zipf_theta = theta;
        self
    }

    pub fn p99_budget_ms(mut self, ms: f64) -> Self {
        self.p99_budget_ms = ms;
        self
    }
}

/// Table 1's left column: workload features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFeature {
    /// A small subset of data accessed frequently.
    SkewedAccess,
    /// Low latency requirements.
    LowLatency,
    /// Large volume, low throughput.
    SpaceCritical,
    /// High throughput, small volume.
    PerformanceCritical,
    /// Read-heavy, write-less.
    ReadHeavy,
    /// Write-heavy.
    WriteHeavy,
}

/// Table 1's right column: optimization options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptimizationOption {
    TieredStorage,
    ElasticThreading,
    InMemoryMode,
    PmemUsage,
    LargerStorageInstance,
    PretrainedCompression,
    PmemForPersistence,
    WriteBackCaching,
    PmemWal,
}

/// One matched Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    pub feature: WorkloadFeature,
    pub options: Vec<OptimizationOption>,
    pub reason: String,
}

/// Classification thresholds. The defaults encode the paper's informal
/// language ("a small subset accessed frequently", "low latency", ...);
/// override them when calibrating against a specific fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorThresholds {
    /// θ at or above which access counts as skewed.
    pub skew_theta: f64,
    /// p99 budgets at or below this are "low latency" (ms).
    pub low_latency_ms: f64,
    /// PC/SC above this ⇒ performance-critical; below its inverse ⇒
    /// space-critical (computed on the reference configuration).
    pub criticality_ratio: f64,
    /// Read fraction at or above this is read-heavy.
    pub read_heavy_fraction: f64,
    /// Write fraction at or above this is write-heavy.
    pub write_heavy_fraction: f64,
}

impl Default for AdvisorThresholds {
    fn default() -> Self {
        Self {
            skew_theta: 0.6,
            low_latency_ms: 2.0,
            criticality_ratio: 2.0,
            read_heavy_fraction: 0.8,
            write_heavy_fraction: 0.4,
        }
    }
}

/// Classifies a profile into Table 1 features. `reference` supplies the
/// CPQPS/CPGB of the fleet's standard configuration, from which the
/// space-critical / performance-critical split is computed exactly as
/// the cost model defines it (PC vs SC, §2.1).
pub fn classify(
    profile: &WorkloadProfile,
    reference: &CostMetrics,
    t: &AdvisorThresholds,
) -> Vec<WorkloadFeature> {
    let mut out = Vec::new();
    if profile.zipf_theta >= t.skew_theta {
        out.push(WorkloadFeature::SkewedAccess);
    }
    if profile.p99_budget_ms <= t.low_latency_ms {
        out.push(WorkloadFeature::LowLatency);
    }
    let demand = crate::model::WorkloadDemand::new(profile.qps, profile.data_size_gb);
    let pc = reference.performance_cost(&demand);
    let sc = reference.space_cost(&demand);
    if sc > pc * t.criticality_ratio {
        out.push(WorkloadFeature::SpaceCritical);
    } else if pc > sc * t.criticality_ratio {
        out.push(WorkloadFeature::PerformanceCritical);
    }
    if profile.read_fraction >= t.read_heavy_fraction {
        out.push(WorkloadFeature::ReadHeavy);
    }
    if 1.0 - profile.read_fraction >= t.write_heavy_fraction {
        out.push(WorkloadFeature::WriteHeavy);
    }
    out
}

/// Table 1, row by row.
pub fn options_for(feature: WorkloadFeature) -> (Vec<OptimizationOption>, &'static str) {
    use OptimizationOption::*;
    match feature {
        WorkloadFeature::SkewedAccess => (
            vec![TieredStorage, ElasticThreading],
            "a small hot set serves most requests: cache it in a small tier \
             and let hot shards borrow idle cores",
        ),
        WorkloadFeature::LowLatency => (
            vec![InMemoryMode, PmemUsage],
            "sub-millisecond budgets rule out storage-tier reads on the hot path",
        ),
        WorkloadFeature::SpaceCritical => (
            vec![LargerStorageInstance, TieredStorage, PretrainedCompression],
            "space cost dominates: shrink bytes (compression), move them to \
             cheaper media (tiering), or buy denser instances",
        ),
        WorkloadFeature::PerformanceCritical => (
            vec![InMemoryMode, PmemForPersistence],
            "throughput dominates: keep everything memory-resident; PMem \
             gives persistence without the IOPS ceiling",
        ),
        WorkloadFeature::ReadHeavy => (
            vec![ElasticThreading, PretrainedCompression],
            "reads decompress nearly for free (§4.2) and scale across \
             elastic threads without write contention",
        ),
        WorkloadFeature::WriteHeavy => (
            vec![WriteBackCaching, PmemWal],
            "write-back batches storage round-trips; a PMem WAL absorbs the \
             per-write persistence cost (§4.1.3, §4.3)",
        ),
    }
}

/// Runs the full Table 1 mapping: classify, then emit one [`Advice`]
/// per matched feature.
pub fn advise(
    profile: &WorkloadProfile,
    reference: &CostMetrics,
    thresholds: &AdvisorThresholds,
) -> Vec<Advice> {
    classify(profile, reference, thresholds)
        .into_iter()
        .map(|feature| {
            let (options, reason) = options_for(feature);
            Advice {
                feature,
                options,
                reason: reason.to_string(),
            }
        })
        .collect()
}

/// Deduplicated union of all recommended options, ordered by how many
/// feature rows recommend each (most-supported first) — a shortlist for
/// the §5.3 evaluation loop to measure.
pub fn option_shortlist(advice: &[Advice]) -> Vec<(OptimizationOption, usize)> {
    use std::collections::BTreeMap;
    let mut votes: BTreeMap<OptimizationOption, usize> = BTreeMap::new();
    for a in advice {
        for &opt in &a.options {
            *votes.entry(opt).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(OptimizationOption, usize)> = votes.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostMetrics;

    /// Reference configuration: the paper's standard container sustains
    /// ~80k QPS and holds ~3 GB of data.
    fn reference() -> CostMetrics {
        CostMetrics::new(80_000.0, 3.0, 1.0)
    }

    fn t() -> AdvisorThresholds {
        AdvisorThresholds::default()
    }

    #[test]
    fn case1_user_info_profile() {
        // §6.5 Case 1: 16M reads / 500k writes per second, highly
        // skewed, large footprint, low-latency online serving.
        let profile = WorkloadProfile::new(16_500_000.0, 50_000.0)
            .read_fraction(0.97)
            .zipf_theta(0.9)
            .p99_budget_ms(1.0);
        let features = classify(&profile, &reference(), &t());
        assert!(features.contains(&WorkloadFeature::SkewedAccess));
        assert!(features.contains(&WorkloadFeature::LowLatency));
        assert!(features.contains(&WorkloadFeature::SpaceCritical));
        assert!(features.contains(&WorkloadFeature::ReadHeavy));
        assert!(!features.contains(&WorkloadFeature::WriteHeavy));

        let advice = advise(&profile, &reference(), &t());
        let shortlist = option_shortlist(&advice);
        // Pre-trained compression is the paper's chosen optimization for
        // this case — it must sit in the top vote tier (recommended by
        // both the space-critical and read-heavy rows).
        let top_votes = shortlist[0].1;
        assert_eq!(top_votes, 2);
        assert!(shortlist
            .iter()
            .take_while(|(_, v)| *v == top_votes)
            .any(|(o, _)| *o == OptimizationOption::PretrainedCompression));
    }

    #[test]
    fn case2_reconciliation_profile() {
        // §6.5 Case 2: ~1:1 read/write, strong temporal skew, relaxed
        // latency, cost-sensitive.
        let profile = WorkloadProfile::new(10_000_000.0, 30_000.0)
            .read_fraction(0.5)
            .zipf_theta(0.8)
            .p99_budget_ms(20.0);
        let features = classify(&profile, &reference(), &t());
        assert!(features.contains(&WorkloadFeature::SkewedAccess));
        assert!(features.contains(&WorkloadFeature::WriteHeavy));
        assert!(features.contains(&WorkloadFeature::SpaceCritical));

        let advice = advise(&profile, &reference(), &t());
        let opts: Vec<OptimizationOption> = option_shortlist(&advice)
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        // Tiering + write-back is what the paper deploys for Case 2.
        assert!(opts.contains(&OptimizationOption::TieredStorage));
        assert!(opts.contains(&OptimizationOption::WriteBackCaching));
    }

    #[test]
    fn performance_critical_small_hot_store() {
        let profile = WorkloadProfile::new(1_000_000.0, 2.0).read_fraction(0.6);
        let features = classify(&profile, &reference(), &t());
        assert!(features.contains(&WorkloadFeature::PerformanceCritical));
        assert!(!features.contains(&WorkloadFeature::SpaceCritical));
        let advice = advise(&profile, &reference(), &t());
        let row = advice
            .iter()
            .find(|a| a.feature == WorkloadFeature::PerformanceCritical)
            .unwrap();
        assert!(row.options.contains(&OptimizationOption::InMemoryMode));
        assert!(row
            .options
            .contains(&OptimizationOption::PmemForPersistence));
    }

    #[test]
    fn balanced_workload_matches_no_criticality_row() {
        // PC ≈ SC on the reference configuration: neither row fires.
        let profile = WorkloadProfile::new(80_000.0, 3.0).read_fraction(0.5);
        let features = classify(&profile, &reference(), &t());
        assert!(!features.contains(&WorkloadFeature::SpaceCritical));
        assert!(!features.contains(&WorkloadFeature::PerformanceCritical));
    }

    #[test]
    fn uniform_relaxed_workload_gets_no_skew_or_latency_rows() {
        let profile = WorkloadProfile::new(10_000.0, 1.0)
            .zipf_theta(0.1)
            .p99_budget_ms(100.0);
        let features = classify(&profile, &reference(), &t());
        assert!(!features.contains(&WorkloadFeature::SkewedAccess));
        assert!(!features.contains(&WorkloadFeature::LowLatency));
    }

    #[test]
    fn every_feature_row_has_options() {
        for f in [
            WorkloadFeature::SkewedAccess,
            WorkloadFeature::LowLatency,
            WorkloadFeature::SpaceCritical,
            WorkloadFeature::PerformanceCritical,
            WorkloadFeature::ReadHeavy,
            WorkloadFeature::WriteHeavy,
        ] {
            let (options, reason) = options_for(f);
            assert!(!options.is_empty());
            assert!(!reason.is_empty());
        }
    }

    #[test]
    fn shortlist_orders_by_votes() {
        let advice = vec![
            Advice {
                feature: WorkloadFeature::SpaceCritical,
                options: vec![
                    OptimizationOption::PretrainedCompression,
                    OptimizationOption::TieredStorage,
                ],
                reason: String::new(),
            },
            Advice {
                feature: WorkloadFeature::ReadHeavy,
                options: vec![OptimizationOption::PretrainedCompression],
                reason: String::new(),
            },
        ];
        let shortlist = option_shortlist(&advice);
        assert_eq!(shortlist[0], (OptimizationOption::PretrainedCompression, 2));
        assert_eq!(shortlist[1], (OptimizationOption::TieredStorage, 1));
    }
}
