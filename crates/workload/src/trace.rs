//! Operation traces: the record/replay substrate of the cost-optimization
//! framework (§5.3) — sample a workload once, then replay it against many
//! candidate configurations.

use std::collections::HashMap;
use tb_common::{Key, Value};

/// A single key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    Read {
        key: Key,
    },
    Update {
        key: Key,
        value: Value,
    },
    Insert {
        key: Key,
        value: Value,
    },
    Delete {
        key: Key,
    },
    ReadModifyWrite {
        key: Key,
        value: Value,
    },
    /// Ordered range scan: `start <= key < end`, at most `limit` rows
    /// (YCSB-E's SCAN).
    Scan {
        start: Key,
        end: Key,
        limit: u64,
    },
}

impl Op {
    pub fn key(&self) -> &Key {
        match self {
            Op::Read { key }
            | Op::Update { key, .. }
            | Op::Insert { key, .. }
            | Op::Delete { key }
            | Op::ReadModifyWrite { key, .. } => key,
            // A scan touches a range; its start key stands in wherever
            // a single routing/accounting key is needed.
            Op::Scan { start, .. } => start,
        }
    }

    /// True for operations that write.
    pub fn is_write(&self) -> bool {
        !matches!(self, Op::Read { .. } | Op::Scan { .. })
    }

    /// Payload size contributed to stored data (0 for reads/deletes).
    pub fn value_len(&self) -> usize {
        match self {
            Op::Update { value, .. }
            | Op::Insert { value, .. }
            | Op::ReadModifyWrite { value, .. } => value.len(),
            _ => 0,
        }
    }
}

/// A recorded sequence of operations.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    ops: Vec<Op>,
}

/// Aggregate statistics over a trace, feeding the cost model's workload
/// parameters (`QPS(w)`, `DataSize(w)`, skew, access intervals).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    pub op_count: usize,
    pub read_count: usize,
    pub write_count: usize,
    pub unique_keys: usize,
    /// Total bytes across final values per key (approximates DataSize(w)).
    pub resident_bytes: u64,
    /// Mean bytes per stored value.
    pub avg_value_size: f64,
    /// Fraction of accesses hitting the hottest 1% of keys.
    pub top1pct_share: f64,
    /// Mean number of operations between successive accesses to the same
    /// key (the paper's "average access interval", in op-stream positions;
    /// multiply by mean inter-arrival time to get seconds).
    pub mean_access_interval_ops: f64,
}

impl Trace {
    pub fn new(ops: Vec<Op>) -> Self {
        Self { ops }
    }

    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Concatenates another trace after this one.
    pub fn extend(&mut self, other: Trace) {
        self.ops.extend(other.ops);
    }

    /// Computes aggregate workload statistics in one pass.
    pub fn stats(&self) -> TraceStats {
        let mut reads = 0usize;
        let mut writes = 0usize;
        let mut last_value_len: HashMap<Key, usize> = HashMap::new();
        let mut access_counts: HashMap<Key, u64> = HashMap::new();
        let mut last_seen: HashMap<Key, usize> = HashMap::new();
        let mut interval_sum = 0u64;
        let mut interval_n = 0u64;

        for (pos, op) in self.ops.iter().enumerate() {
            if op.is_write() {
                writes += 1;
            } else {
                reads += 1;
            }
            match op {
                Op::Insert { key, value }
                | Op::Update { key, value }
                | Op::ReadModifyWrite { key, value } => {
                    last_value_len.insert(key.clone(), value.len());
                }
                Op::Delete { key } => {
                    last_value_len.remove(key);
                }
                Op::Read { .. } | Op::Scan { .. } => {}
            }
            let key = op.key().clone();
            *access_counts.entry(key.clone()).or_insert(0) += 1;
            if let Some(prev) = last_seen.insert(key, pos) {
                interval_sum += (pos - prev) as u64;
                interval_n += 1;
            }
        }

        let resident_bytes: u64 = last_value_len.values().map(|&v| v as u64).sum();
        let stored = last_value_len.len().max(1);
        let mut freqs: Vec<u64> = access_counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_n = (freqs.len() / 100).max(1);
        let top_share = if self.ops.is_empty() {
            0.0
        } else {
            freqs.iter().take(top_n).sum::<u64>() as f64 / self.ops.len() as f64
        };

        TraceStats {
            op_count: self.ops.len(),
            read_count: reads,
            write_count: writes,
            unique_keys: access_counts.len(),
            resident_bytes,
            avg_value_size: resident_bytes as f64 / stored as f64,
            top1pct_share: top_share,
            mean_access_interval_ops: if interval_n == 0 {
                f64::INFINITY
            } else {
                interval_sum as f64 / interval_n as f64
            },
        }
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn v(n: usize) -> Value {
        Value::from(vec![b'x'; n])
    }

    #[test]
    fn stats_counts_reads_and_writes() {
        let t = Trace::new(vec![
            Op::Insert {
                key: k("a"),
                value: v(10),
            },
            Op::Read { key: k("a") },
            Op::Update {
                key: k("a"),
                value: v(20),
            },
            Op::Read { key: k("b") },
        ]);
        let s = t.stats();
        assert_eq!(s.op_count, 4);
        assert_eq!(s.read_count, 2);
        assert_eq!(s.write_count, 2);
        assert_eq!(s.unique_keys, 2);
        // Final value of "a" is 20 bytes; "b" never written.
        assert_eq!(s.resident_bytes, 20);
    }

    #[test]
    fn delete_removes_resident_bytes() {
        let t = Trace::new(vec![
            Op::Insert {
                key: k("a"),
                value: v(100),
            },
            Op::Delete { key: k("a") },
        ]);
        assert_eq!(t.stats().resident_bytes, 0);
    }

    #[test]
    fn access_interval_measures_reuse_distance() {
        // "a" accessed at positions 0, 2, 4 → intervals 2 and 2.
        let t = Trace::new(vec![
            Op::Read { key: k("a") },
            Op::Read { key: k("b") },
            Op::Read { key: k("a") },
            Op::Read { key: k("c") },
            Op::Read { key: k("a") },
        ]);
        let s = t.stats();
        assert_eq!(s.mean_access_interval_ops, 2.0);
    }

    #[test]
    fn no_reaccess_means_infinite_interval() {
        let t = Trace::new(vec![Op::Read { key: k("a") }, Op::Read { key: k("b") }]);
        assert!(t.stats().mean_access_interval_ops.is_infinite());
    }

    #[test]
    fn skew_detected_in_top1pct() {
        // 200 keys; key "hot" takes half of all accesses.
        let mut ops = vec![];
        for i in 0..200 {
            ops.push(Op::Read {
                key: k(&format!("k{i}")),
            });
            ops.push(Op::Read { key: k("hot") });
        }
        let s = Trace::new(ops).stats();
        // top 1% of 201 keys = 2 keys; "hot" alone serves 50%.
        assert!(s.top1pct_share >= 0.5, "share {}", s.top1pct_share);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Trace::new(vec![Op::Read { key: k("x") }]);
        let b = Trace::new(vec![Op::Read { key: k("y") }]);
        a.extend(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn rmw_counts_as_write() {
        let op = Op::ReadModifyWrite {
            key: k("a"),
            value: v(5),
        };
        assert!(op.is_write());
        assert_eq!(op.value_len(), 5);
    }
}
