//! Synthetic datasets standing in for the paper's evaluation data.
//!
//! The paper inserts values drawn from the geonames *Cities* dataset and
//! two internal machine-generated datasets (KV1, KV2). None are shipped
//! here, so deterministic generators reproduce their load-bearing
//! properties instead:
//!
//! * **Cities**: semi-structured text records — templated fields (name,
//!   country code, coordinates, population, feature class) with shared
//!   vocabulary, moderately compressible.
//! * **KV1/KV2**: machine-generated serialized records sharing a small
//!   number of rigid templates with high-entropy residual fields — exactly
//!   the shape where pattern-based compression (PBC) shines (§6.3.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible record source.
pub trait Dataset: Send {
    /// Deterministically generates the record with ordinal `i`.
    fn record(&self, i: u64) -> Vec<u8>;

    /// Human-readable dataset name.
    fn name(&self) -> &'static str;

    /// Average record size in bytes (measured over a sample).
    fn avg_record_size(&self) -> usize {
        let n = 256;
        let total: usize = (0..n).map(|i| self.record(i * 31).len()).sum();
        total / n as usize
    }
}

/// Which built-in dataset to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    Cities,
    Kv1,
    Kv2,
}

impl DatasetKind {
    pub fn build(self, seed: u64) -> Box<dyn Dataset> {
        match self {
            DatasetKind::Cities => Box::new(CitiesDataset::new(seed)),
            DatasetKind::Kv1 => Box::new(MachineDataset::kv1(seed)),
            DatasetKind::Kv2 => Box::new(MachineDataset::kv2(seed)),
        }
    }
}

const COUNTRY_CODES: &[&str] = &[
    "CN", "US", "IN", "ID", "BR", "PK", "NG", "BD", "RU", "MX", "JP", "ET", "PH", "EG", "VN", "DE",
    "IR", "TR", "FR", "TH", "GB", "IT", "ZA", "KR", "CO", "ES", "AR", "DZ", "SD", "UA",
];

const NAME_STEMS: &[&str] = &[
    "San", "Santa", "New", "Port", "Lake", "Mount", "North", "South", "East", "West", "Fort",
    "Saint", "Grand", "Little", "Upper", "Lower", "Old", "Great", "Villa", "El",
];

const NAME_BODIES: &[&str] = &[
    "ville", "burg", "ton", "field", "ford", "haven", "wood", "bridge", "mouth", "stad", "grad",
    "pur", "abad", "shire", "minster", "chester", "borough", "polis", "ham", "dale",
];

const FEATURE_CLASSES: &[&str] = &["PPL", "PPLA", "PPLA2", "PPLA3", "PPLC", "PPLX"];

const TIMEZONES: &[&str] = &[
    "Asia/Shanghai",
    "America/New_York",
    "Asia/Kolkata",
    "Asia/Jakarta",
    "America/Sao_Paulo",
    "Europe/Moscow",
    "Europe/Berlin",
    "Asia/Tokyo",
    "Africa/Lagos",
    "Europe/London",
];

/// Geonames-style city records: tab-separated templated text.
pub struct CitiesDataset {
    seed: u64,
}

impl CitiesDataset {
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Dataset for CitiesDataset {
    fn record(&self, i: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let stem = NAME_STEMS[rng.gen_range(0..NAME_STEMS.len())];
        let body = NAME_BODIES[rng.gen_range(0..NAME_BODIES.len())];
        let mid: String = (0..rng.gen_range(2..6))
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        let name = format!(
            "{stem} {}{}{body}",
            mid.to_uppercase().chars().next().unwrap(),
            &mid[1..]
        );
        let ascii_name = name.replace(' ', "-").to_lowercase();
        let lat = rng.gen_range(-90.0..90.0f64);
        let lon = rng.gen_range(-180.0..180.0f64);
        let country = COUNTRY_CODES[rng.gen_range(0..COUNTRY_CODES.len())];
        let feature = FEATURE_CLASSES[rng.gen_range(0..FEATURE_CLASSES.len())];
        let population: u64 = 10u64.pow(rng.gen_range(2..7)) + rng.gen_range(0..9999u64);
        let elevation: i32 = rng.gen_range(-50..4500);
        let tz = TIMEZONES[rng.gen_range(0..TIMEZONES.len())];
        format!(
            "{id}\t{name}\t{ascii_name}\t{lat:.5}\t{lon:.5}\t{feature}\t{country}\t{population}\t{elevation}\t{tz}\t2024-{month:02}-{day:02}",
            id = 1_000_000 + i,
            month = rng.gen_range(1..=12),
            day = rng.gen_range(1..=28),
        )
        .into_bytes()
    }

    fn name(&self) -> &'static str {
        "cities"
    }
}

/// Machine-generated serialized records: a few rigid templates with
/// high-entropy identifiers in fixed slots.
pub struct MachineDataset {
    seed: u64,
    which: &'static str,
    templates: Vec<MachineTemplate>,
}

struct MachineTemplate {
    /// Literal segments; between each pair a variable field is emitted.
    segments: Vec<&'static str>,
    /// Per-gap field kind.
    fields: Vec<FieldKind>,
}

#[derive(Clone, Copy)]
enum FieldKind {
    /// Fixed-width lowercase hex token.
    Hex(usize),
    /// Decimal number up to the given magnitude.
    Number(u64),
    /// Small categorical vocabulary.
    Enum(&'static [&'static str]),
    /// Unix-ish timestamp in a narrow window.
    Timestamp,
}

impl MachineDataset {
    /// KV1: session-/user-state style records (JSON-ish).
    pub fn kv1(seed: u64) -> Self {
        let templates = vec![
            MachineTemplate {
                segments: vec![
                    "{\"uid\":\"",
                    "\",\"sess\":\"",
                    "\",\"dev\":\"",
                    "\",\"ts\":",
                    ",\"geo\":\"",
                    "\",\"score\":",
                    ",\"flags\":[\"login\",\"mobile\"]}",
                ],
                fields: vec![
                    FieldKind::Hex(16),
                    FieldKind::Hex(24),
                    FieldKind::Enum(&["ios", "android", "web", "mini"]),
                    FieldKind::Timestamp,
                    FieldKind::Enum(&["CN-ZJ", "CN-SH", "CN-BJ", "CN-GD", "SG", "US-CA"]),
                    FieldKind::Number(1000),
                ],
            },
            MachineTemplate {
                segments: vec![
                    "{\"uid\":\"",
                    "\",\"risk\":{\"level\":\"",
                    "\",\"rule\":\"R-",
                    "\",\"hit\":",
                    "},\"ver\":\"2.3.1\"}",
                ],
                fields: vec![
                    FieldKind::Hex(16),
                    FieldKind::Enum(&["low", "mid", "high"]),
                    FieldKind::Number(9999),
                    FieldKind::Number(100),
                ],
            },
        ];
        Self {
            seed,
            which: "kv1",
            templates,
        }
    }

    /// KV2: transaction-/ledger-style records (positional wire format).
    pub fn kv2(seed: u64) -> Self {
        let templates = vec![
            MachineTemplate {
                segments: vec!["TXN|v3|", "|AMT:", "|CUR:CNY|CH:", "|ST:", "|SIG:", "|END"],
                fields: vec![
                    FieldKind::Hex(32),
                    FieldKind::Number(10_000_000),
                    FieldKind::Enum(&["alipay", "bank", "card", "hb", "yeb"]),
                    FieldKind::Enum(&["OK", "PENDING", "REFUND"]),
                    FieldKind::Hex(40),
                ],
            },
            MachineTemplate {
                segments: vec!["RCN|v3|", "|LEG:", "|BAL:", "|TS:", "|CRC:", "|END"],
                fields: vec![
                    FieldKind::Hex(32),
                    FieldKind::Number(99),
                    FieldKind::Number(100_000_000),
                    FieldKind::Timestamp,
                    FieldKind::Hex(8),
                ],
            },
        ];
        Self {
            seed,
            which: "kv2",
            templates,
        }
    }
}

impl Dataset for MachineDataset {
    fn record(&self, i: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ i.wrapping_mul(0xa24b_aed4_963e_e407));
        let t = &self.templates[(i % self.templates.len() as u64) as usize];
        let mut out = Vec::with_capacity(160);
        for (j, seg) in t.segments.iter().enumerate() {
            out.extend_from_slice(seg.as_bytes());
            if j < t.fields.len() {
                emit_field(&mut out, t.fields[j], &mut rng);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        self.which
    }
}

fn emit_field(out: &mut Vec<u8>, kind: FieldKind, rng: &mut StdRng) {
    match kind {
        FieldKind::Hex(width) => {
            const HEX: &[u8; 16] = b"0123456789abcdef";
            for _ in 0..width {
                out.push(HEX[rng.gen_range(0..16usize)]);
            }
        }
        FieldKind::Number(max) => {
            let n: u64 = rng.gen_range(0..=max);
            out.extend_from_slice(n.to_string().as_bytes());
        }
        FieldKind::Enum(options) => {
            out.extend_from_slice(options[rng.gen_range(0..options.len())].as_bytes());
        }
        FieldKind::Timestamp => {
            let ts: u64 = 1_700_000_000 + rng.gen_range(0..30_000_000u64);
            out.extend_from_slice(ts.to_string().as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_deterministic() {
        let d1 = CitiesDataset::new(42);
        let d2 = CitiesDataset::new(42);
        for i in [0u64, 1, 1000, 999_999] {
            assert_eq!(d1.record(i), d2.record(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d1 = CitiesDataset::new(1);
        let d2 = CitiesDataset::new(2);
        assert_ne!(d1.record(7), d2.record(7));
    }

    #[test]
    fn cities_are_tab_separated_utf8() {
        let d = CitiesDataset::new(9);
        for i in 0..100 {
            let r = d.record(i);
            let s = String::from_utf8(r).expect("utf8");
            assert_eq!(s.split('\t').count(), 11, "record: {s}");
        }
    }

    #[test]
    fn machine_records_share_templates() {
        let d = MachineDataset::kv2(5);
        let a = d.record(0);
        let b = d.record(2); // same template (templates.len() == 2)
        assert!(a.starts_with(b"TXN|v3|"));
        assert!(b.starts_with(b"TXN|v3|"));
        let c = d.record(1);
        assert!(c.starts_with(b"RCN|v3|"));
    }

    #[test]
    fn avg_sizes_are_plausible() {
        for kind in [DatasetKind::Cities, DatasetKind::Kv1, DatasetKind::Kv2] {
            let d = kind.build(3);
            let avg = d.avg_record_size();
            assert!(
                (40..400).contains(&avg),
                "{}: avg {avg} outside sanity range",
                d.name()
            );
        }
    }

    #[test]
    fn kv_records_differ_in_residuals() {
        let d = MachineDataset::kv1(11);
        let a = d.record(0);
        let b = d.record(2);
        assert_ne!(a, b, "residual fields must vary across records");
    }
}
