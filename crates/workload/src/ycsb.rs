//! YCSB-style workload specification and operation stream.
//!
//! A [`WorkloadSpec`] fixes the op mix, key distribution, dataset and
//! sizes; [`Workload`] turns it into a deterministic stream of operations
//! (load phase + run phase) that any engine can consume.

use crate::dataset::{Dataset, DatasetKind};
use crate::dist::{KeyChooser, LatestChooser, ScrambledZipfian, UniformChooser};
use crate::trace::{Op, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tb_common::{Key, Value};

/// Kind of operation in the request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Read,
    Update,
    Insert,
    ReadModifyWrite,
    Scan,
}

/// Key-popularity distribution selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    Uniform,
    /// Scrambled zipfian with the given theta (YCSB default 0.99).
    Zipfian(f64),
    Latest,
}

/// Declarative description of a workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Record count loaded before the run phase.
    pub record_count: u64,
    /// Operation count in the run phase.
    pub operation_count: u64,
    /// Proportions; must sum to ~1.0.
    pub read_proportion: f64,
    pub update_proportion: f64,
    pub insert_proportion: f64,
    pub rmw_proportion: f64,
    /// Proportion of ordered range scans (YCSB-E's SCAN op).
    pub scan_proportion: f64,
    /// Scan lengths are drawn uniformly from `1..=max_scan_length`
    /// (YCSB's default scanlengthdistribution=uniform).
    pub max_scan_length: u64,
    pub distribution: Distribution,
    pub dataset: DatasetKind,
    /// RNG seed so runs are reproducible.
    pub seed: u64,
}

impl WorkloadSpec {
    /// YCSB Workload A: 50% read / 50% update, zipfian (write-heavy).
    pub fn ycsb_a(record_count: u64, operation_count: u64) -> Self {
        Self {
            record_count,
            operation_count,
            read_proportion: 0.5,
            update_proportion: 0.5,
            insert_proportion: 0.0,
            rmw_proportion: 0.0,
            scan_proportion: 0.0,
            max_scan_length: 100,
            distribution: Distribution::Zipfian(0.99),
            dataset: DatasetKind::Cities,
            seed: 0x5eed,
        }
    }

    /// YCSB Workload E: 95% scan / 5% insert, zipfian scan-start keys,
    /// uniform scan length in `1..=100` (short-ranges workload).
    pub fn ycsb_e(record_count: u64, operation_count: u64) -> Self {
        Self {
            read_proportion: 0.0,
            update_proportion: 0.0,
            insert_proportion: 0.05,
            rmw_proportion: 0.0,
            scan_proportion: 0.95,
            max_scan_length: 100,
            distribution: Distribution::Zipfian(0.99),
            dataset: DatasetKind::Cities,
            seed: 0x5eed0e,
            record_count,
            operation_count,
        }
    }

    /// YCSB Workload B: 95% read / 5% update, zipfian (read-heavy).
    pub fn ycsb_b(record_count: u64, operation_count: u64) -> Self {
        Self {
            read_proportion: 0.95,
            update_proportion: 0.05,
            ..Self::ycsb_a(record_count, operation_count)
        }
    }

    /// YCSB Workload C: 100% read, zipfian.
    pub fn ycsb_c(record_count: u64, operation_count: u64) -> Self {
        Self {
            read_proportion: 1.0,
            update_proportion: 0.0,
            ..Self::ycsb_a(record_count, operation_count)
        }
    }

    /// Case study 1 (§6.5): User Info Service — ~32:1 read:write, highly
    /// skewed, availability-critical.
    pub fn case1_user_info(record_count: u64, operation_count: u64) -> Self {
        Self {
            read_proportion: 0.97,
            update_proportion: 0.03,
            insert_proportion: 0.0,
            rmw_proportion: 0.0,
            scan_proportion: 0.0,
            max_scan_length: 100,
            distribution: Distribution::Zipfian(0.99),
            dataset: DatasetKind::Kv1,
            seed: 0xca5e1,
            record_count,
            operation_count,
        }
    }

    /// Case study 2 (§6.5): Capital Reconciliation — ~1:1 read:write with
    /// temporal access skew (recent data hot), cost-sensitive.
    pub fn case2_reconciliation(record_count: u64, operation_count: u64) -> Self {
        Self {
            read_proportion: 0.5,
            update_proportion: 0.25,
            insert_proportion: 0.25,
            rmw_proportion: 0.0,
            scan_proportion: 0.0,
            max_scan_length: 100,
            distribution: Distribution::Latest,
            dataset: DatasetKind::Kv2,
            seed: 0xca5e2,
            record_count,
            operation_count,
        }
    }

    fn validate(&self) {
        let sum = self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.rmw_proportion
            + self.scan_proportion;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "op proportions must sum to 1.0, got {sum}"
        );
        assert!(self.record_count > 0);
        assert!(
            self.scan_proportion == 0.0 || self.max_scan_length > 0,
            "scans need max_scan_length >= 1"
        );
    }
}

/// A deterministic operation stream realizing a [`WorkloadSpec`].
pub struct Workload {
    spec: WorkloadSpec,
    dataset: Box<dyn Dataset>,
    chooser: Box<dyn KeyChooser>,
    rng: StdRng,
    /// Total records inserted so far (load + run-phase inserts).
    inserted: u64,
}

impl Workload {
    pub fn new(spec: WorkloadSpec) -> Self {
        spec.validate();
        let dataset = spec.dataset.build(spec.seed);
        let chooser: Box<dyn KeyChooser> = match spec.distribution {
            Distribution::Uniform => Box::new(UniformChooser::new(spec.record_count)),
            Distribution::Zipfian(theta) => {
                Box::new(ScrambledZipfian::with_theta(spec.record_count, theta))
            }
            Distribution::Latest => Box::new(LatestChooser::new(spec.record_count)),
        };
        let rng = StdRng::seed_from_u64(spec.seed ^ 0x00c0_ffee);
        Self {
            spec,
            dataset,
            chooser,
            rng,
            inserted: 0,
        }
    }

    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn key_for(&self, ordinal: u64) -> Key {
        Key::from(format!("user{ordinal:012}"))
    }

    fn value_for(&self, ordinal: u64) -> Value {
        Value::from(self.dataset.record(ordinal))
    }

    /// Emits the load phase: one insert per record, in ordinal order.
    pub fn load_ops(&mut self) -> Vec<Op> {
        let mut ops = Vec::with_capacity(self.spec.record_count as usize);
        for i in 0..self.spec.record_count {
            ops.push(Op::Insert {
                key: self.key_for(i),
                value: self.value_for(i),
            });
        }
        self.inserted = self.spec.record_count;
        ops
    }

    /// Draws the next run-phase operation.
    pub fn next_op(&mut self) -> Op {
        let r: f64 = self.rng.gen();
        let s = &self.spec;
        if r < s.read_proportion {
            let idx = self.chooser.next_index(&mut self.rng);
            Op::Read {
                key: self.key_for(idx),
            }
        } else if r < s.read_proportion + s.update_proportion {
            let idx = self.chooser.next_index(&mut self.rng);
            let value = self.value_for(idx ^ 0xdead_beef); // fresh content
            Op::Update {
                key: self.key_for(idx),
                value,
            }
        } else if r < s.read_proportion + s.update_proportion + s.insert_proportion {
            let ordinal = self.inserted;
            self.inserted += 1;
            self.grow_chooser();
            Op::Insert {
                key: self.key_for(ordinal),
                value: self.value_for(ordinal),
            }
        } else if r < s.read_proportion
            + s.update_proportion
            + s.insert_proportion
            + s.scan_proportion
        {
            // YCSB-E SCAN: popular start key, uniform length. The keys
            // are fixed-width ordinals, so `key_for(idx + len)` is the
            // exact exclusive upper bound of a `len`-row window.
            let max_len = s.max_scan_length;
            let idx = self.chooser.next_index(&mut self.rng);
            let len = self.rng.gen_range(1..=max_len);
            Op::Scan {
                start: self.key_for(idx),
                end: self.key_for(idx + len),
                limit: len,
            }
        } else {
            let idx = self.chooser.next_index(&mut self.rng);
            Op::ReadModifyWrite {
                key: self.key_for(idx),
                value: self.value_for(idx ^ 0xfeed_f00d),
            }
        }
    }

    fn grow_chooser(&mut self) {
        // Only Latest/Zipfian care about growth; recreate cheaply via the
        // incremental path where the concrete type supports it.
        let n = self.inserted;
        match self.spec.distribution {
            Distribution::Latest => {
                // Rebuild is avoided: LatestChooser supports growth but we
                // hold it behind the trait. Downcast via recreation at a
                // coarse granularity to amortize the zeta recomputation.
                if n.is_multiple_of(1024) {
                    self.chooser = Box::new(LatestChooser::new(n));
                }
            }
            Distribution::Zipfian(theta) => {
                if n.is_multiple_of(4096) {
                    self.chooser = Box::new(ScrambledZipfian::with_theta(n, theta));
                }
            }
            Distribution::Uniform => {
                if n.is_multiple_of(1024) {
                    self.chooser = Box::new(UniformChooser::new(n));
                }
            }
        }
    }

    /// Materializes the run phase as a trace (for record/replay, §5.3).
    pub fn run_trace(&mut self) -> Trace {
        let ops: Vec<Op> = (0..self.spec.operation_count)
            .map(|_| self.next_op())
            .collect();
        Trace::new(ops)
    }

    /// Convenience: load trace + run trace.
    pub fn generate(mut self) -> (Trace, Trace) {
        let load = Trace::new(self.load_ops());
        let run = self.run_trace();
        (load, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_a_mix_is_half_and_half() {
        let mut w = Workload::new(WorkloadSpec::ycsb_a(1000, 20_000));
        w.load_ops();
        let (mut reads, mut updates) = (0, 0);
        for _ in 0..20_000 {
            match w.next_op() {
                Op::Read { .. } => reads += 1,
                Op::Update { .. } => updates += 1,
                other => panic!("unexpected op {other:?}"),
            }
        }
        let ratio = reads as f64 / (reads + updates) as f64;
        assert!((ratio - 0.5).abs() < 0.02, "read ratio {ratio}");
    }

    #[test]
    fn workload_b_is_read_heavy() {
        let mut w = Workload::new(WorkloadSpec::ycsb_b(1000, 10_000));
        w.load_ops();
        let reads = (0..10_000)
            .filter(|_| matches!(w.next_op(), Op::Read { .. }))
            .count();
        let ratio = reads as f64 / 10_000.0;
        assert!((ratio - 0.95).abs() < 0.02, "read ratio {ratio}");
    }

    #[test]
    fn load_phase_covers_all_records() {
        let mut w = Workload::new(WorkloadSpec::ycsb_c(500, 0));
        let ops = w.load_ops();
        assert_eq!(ops.len(), 500);
        let mut keys: Vec<_> = ops
            .iter()
            .map(|op| match op {
                Op::Insert { key, .. } => key.clone(),
                _ => panic!("load phase must be inserts"),
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn streams_are_reproducible() {
        let gen = |seed| {
            let mut spec = WorkloadSpec::ycsb_a(200, 1000);
            spec.seed = seed;
            let mut w = Workload::new(spec);
            w.load_ops();
            (0..1000).map(|_| w.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(gen(1), gen(1));
        assert_ne!(gen(1), gen(2));
    }

    #[test]
    fn case2_contains_inserts() {
        let mut w = Workload::new(WorkloadSpec::case2_reconciliation(1000, 10_000));
        w.load_ops();
        let inserts = (0..10_000)
            .filter(|_| matches!(w.next_op(), Op::Insert { .. }))
            .count();
        assert!(inserts > 2000, "expected ~25% inserts, got {inserts}");
    }

    #[test]
    fn workload_e_mixes_scans_and_inserts() {
        let mut w = Workload::new(WorkloadSpec::ycsb_e(1000, 20_000));
        w.load_ops();
        let (mut scans, mut inserts) = (0u64, 0u64);
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..20_000 {
            match w.next_op() {
                Op::Scan { start, end, limit } => {
                    scans += 1;
                    assert!((1..=100).contains(&limit), "scan length {limit}");
                    assert!(start < end, "scan range must be non-empty");
                    lengths.insert(limit);
                }
                Op::Insert { .. } => inserts += 1,
                other => panic!("unexpected op {other:?}"),
            }
        }
        let ratio = scans as f64 / (scans + inserts) as f64;
        assert!((ratio - 0.95).abs() < 0.02, "scan ratio {ratio}");
        assert!(
            lengths.len() > 50,
            "uniform lengths should cover most of 1..=100: {}",
            lengths.len()
        );
    }

    #[test]
    fn workload_e_scan_starts_are_skewed() {
        let mut w = Workload::new(WorkloadSpec::ycsb_e(10_000, 0));
        w.load_ops();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            if let Op::Scan { start, .. } = w.next_op() {
                *counts.entry(start).or_insert(0u64) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top_100: u64 = freqs.iter().take(100).sum();
        assert!(
            top_100 as f64 / total as f64 > 0.3,
            "zipfian scan starts, top-100 share {}",
            top_100 as f64 / total as f64
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1.0")]
    fn invalid_proportions_rejected() {
        let mut spec = WorkloadSpec::ycsb_a(10, 10);
        spec.read_proportion = 0.9;
        Workload::new(spec);
    }

    #[test]
    fn zipfian_run_is_skewed() {
        let mut w = Workload::new(WorkloadSpec::ycsb_c(10_000, 0));
        w.load_ops();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            if let Op::Read { key } = w.next_op() {
                *counts.entry(key).or_insert(0u64) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_100: u64 = freqs.iter().take(100).sum();
        // Top 1% of keys should serve a large share of a zipf(0.99) stream.
        assert!(
            top_100 as f64 / 50_000.0 > 0.3,
            "top-100 share {}",
            top_100 as f64 / 50_000.0
        );
    }
}
