//! Key-choosing distributions (YCSB generators).
//!
//! The zipfian generator follows Gray et al.'s rejection-free method as
//! used by YCSB's `ZipfianGenerator`, including the incremental-item-count
//! recomputation and the *scrambled* variant that hashes ranks so hot keys
//! are spread across the keyspace instead of clustered at low ids.

use rand::Rng;
use tb_common::fx_hash;

/// Chooses an item index in `0..n` according to some popularity law.
pub trait KeyChooser: Send {
    /// Draws the next item index using the supplied RNG.
    fn next_index(&mut self, rng: &mut dyn rand::RngCore) -> u64;

    /// Number of items currently addressable.
    fn item_count(&self) -> u64;
}

/// Uniform choice over `0..n`.
pub struct UniformChooser {
    n: u64,
}

impl UniformChooser {
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "item count must be positive");
        Self { n }
    }
}

impl KeyChooser for UniformChooser {
    fn next_index(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        rng.gen_range(0..self.n)
    }

    fn item_count(&self) -> u64 {
        self.n
    }
}

/// Zipfian generator over ranks `0..n` with parameter `theta`.
///
/// Rank 0 is the most popular item. YCSB default `theta = 0.99`.
pub struct ZipfianGen {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianGen {
    /// Creates a generator for `n` items with the YCSB-default skew 0.99.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, 0.99)
    }

    /// Creates a generator with an explicit skew parameter `theta < 1`.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "item count must be positive");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; fine for the item counts used in experiments.
        // For very large n, sample-extrapolate to keep setup fast.
        if n <= 10_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            // Integral approximation with a correction from the first terms.
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Grows the addressable item count (used after inserts), recomputing
    /// constants incrementally like YCSB does.
    pub fn set_item_count(&mut self, n: u64) {
        assert!(n >= self.n, "item count must not shrink");
        if n == self.n {
            return;
        }
        // Incremental zeta update.
        self.zetan += ((self.n + 1)..=n)
            .map(|i| 1.0 / (i as f64).powf(self.theta))
            .sum::<f64>();
        self.n = n;
        self.eta =
            (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2theta / self.zetan);
    }

    /// Draws a zipfian *rank* (0 = hottest).
    pub fn next_rank(&self, rng: &mut dyn rand::RngCore) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

impl KeyChooser for ZipfianGen {
    fn next_index(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        self.next_rank(rng)
    }

    fn item_count(&self) -> u64 {
        self.n
    }
}

/// Scrambled zipfian: zipfian ranks hashed over the item space so the hot
/// set is scattered (YCSB `ScrambledZipfianGenerator`).
pub struct ScrambledZipfian {
    inner: ZipfianGen,
}

impl ScrambledZipfian {
    pub fn new(n: u64) -> Self {
        Self {
            inner: ZipfianGen::new(n),
        }
    }

    pub fn with_theta(n: u64, theta: f64) -> Self {
        Self {
            inner: ZipfianGen::with_theta(n, theta),
        }
    }

    /// Grows the addressable item count after inserts.
    pub fn set_item_count(&mut self, n: u64) {
        self.inner.set_item_count(n);
    }
}

impl KeyChooser for ScrambledZipfian {
    fn next_index(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let rank = self.inner.next_rank(rng);
        fx_hash(&rank.to_le_bytes()) % self.inner.item_count()
    }

    fn item_count(&self) -> u64 {
        self.inner.item_count()
    }
}

/// "Latest" distribution: recency-skewed — most requests target recently
/// inserted items (YCSB `SkewedLatestGenerator`).
pub struct LatestChooser {
    zipf: ZipfianGen,
}

impl LatestChooser {
    pub fn new(n: u64) -> Self {
        Self {
            zipf: ZipfianGen::new(n),
        }
    }

    /// Grows the item count after an insert so the newest item is hottest.
    pub fn set_item_count(&mut self, n: u64) {
        self.zipf.set_item_count(n);
    }
}

impl KeyChooser for LatestChooser {
    fn next_index(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let rank = self.zipf.next_rank(rng);
        self.zipf.item_count() - 1 - rank
    }

    fn item_count(&self) -> u64 {
        self.zipf.item_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw_freqs(chooser: &mut dyn KeyChooser, draws: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; chooser.item_count() as usize];
        for _ in 0..draws {
            counts[chooser.next_index(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_is_flat() {
        let mut c = UniformChooser::new(100);
        let counts = draw_freqs(&mut c, 100_000);
        for &n in &counts {
            assert!((n as f64 - 1000.0).abs() < 250.0, "count {n} deviates");
        }
    }

    #[test]
    fn zipfian_rank0_dominates() {
        let mut z = ZipfianGen::new(1000);
        let counts = draw_freqs(&mut z, 100_000);
        assert!(counts[0] > counts[10] && counts[10] > counts[100]);
        // Rank 0 of a 1000-item zipf(0.99) should take ~13% of draws.
        let share = counts[0] as f64 / 100_000.0;
        assert!(share > 0.08 && share < 0.20, "rank0 share {share}");
    }

    #[test]
    fn zipfian_higher_theta_is_more_skewed() {
        let mut lo = ZipfianGen::with_theta(1000, 0.5);
        let mut hi = ZipfianGen::with_theta(1000, 0.99);
        let c_lo = draw_freqs(&mut lo, 100_000);
        let c_hi = draw_freqs(&mut hi, 100_000);
        assert!(c_hi[0] > c_lo[0] * 2);
    }

    #[test]
    fn zipfian_all_in_range() {
        let mut z = ZipfianGen::new(50);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.next_index(&mut rng) < 50);
        }
    }

    #[test]
    fn incremental_item_count_matches_fresh() {
        let mut grown = ZipfianGen::new(100);
        grown.set_item_count(500);
        let fresh = ZipfianGen::new(500);
        assert!((grown.zetan - fresh.zetan).abs() < 1e-9);
        assert!((grown.eta - fresh.eta).abs() < 1e-9);
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let mut s = ScrambledZipfian::new(1000);
        let counts = draw_freqs(&mut s, 200_000);
        // The single hottest item keeps its zipfian share...
        let max = *counts.iter().max().unwrap();
        assert!(max as f64 / 200_000.0 > 0.08);
        // ...but is not at index 0 with overwhelming probability.
        let argmax = counts.iter().position(|&c| c == max).unwrap();
        assert_ne!(argmax, 0);
    }

    #[test]
    fn latest_prefers_newest() {
        let mut l = LatestChooser::new(1000);
        let counts = draw_freqs(&mut l, 100_000);
        assert!(counts[999] > counts[500]);
        assert!(counts[999] > counts[0]);
    }

    #[test]
    fn latest_tracks_inserts() {
        let mut l = LatestChooser::new(10);
        l.set_item_count(20);
        let mut rng = StdRng::seed_from_u64(3);
        let mut newest = 0;
        for _ in 0..1000 {
            if l.next_index(&mut rng) == 19 {
                newest += 1;
            }
        }
        assert!(newest > 50, "newest item drawn only {newest} times");
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn item_count_cannot_shrink() {
        let mut z = ZipfianGen::new(100);
        z.set_item_count(50);
    }
}
