//! Trace persistence: record a workload once, replay it against every
//! candidate configuration (§5.3 step 1: "record a representative
//! period of workload from production instances").
//!
//! Format: `MAGIC u32 | crc u32 | varint(op_count) | op*` where
//! `op := kind u8 | varint(klen) | key [| varint(vlen) | value]`.
//! The CRC covers everything after the header, so a truncated or
//! corrupted recording is rejected instead of silently replaying a
//! prefix.

use crate::trace::{Op, Trace};
use std::io::Write;
use std::path::Path;
use tb_common::{crc32, read_varint, write_varint, Error, Key, Result, Value};

const MAGIC: u32 = 0x7b72_4563; // "{rEc"

const KIND_READ: u8 = 0;
const KIND_UPDATE: u8 = 1;
const KIND_INSERT: u8 = 2;
const KIND_DELETE: u8 = 3;
const KIND_RMW: u8 = 4;
const KIND_SCAN: u8 = 5;

/// Serializes a trace to bytes.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut body = Vec::new();
    write_varint(&mut body, trace.len() as u64);
    for op in trace.ops() {
        match op {
            Op::Read { key } => {
                body.push(KIND_READ);
                put_bytes(&mut body, key.as_slice());
            }
            Op::Update { key, value } => {
                body.push(KIND_UPDATE);
                put_bytes(&mut body, key.as_slice());
                put_bytes(&mut body, value.as_slice());
            }
            Op::Insert { key, value } => {
                body.push(KIND_INSERT);
                put_bytes(&mut body, key.as_slice());
                put_bytes(&mut body, value.as_slice());
            }
            Op::Delete { key } => {
                body.push(KIND_DELETE);
                put_bytes(&mut body, key.as_slice());
            }
            Op::ReadModifyWrite { key, value } => {
                body.push(KIND_RMW);
                put_bytes(&mut body, key.as_slice());
                put_bytes(&mut body, value.as_slice());
            }
            Op::Scan { start, end, limit } => {
                body.push(KIND_SCAN);
                put_bytes(&mut body, start.as_slice());
                put_bytes(&mut body, end.as_slice());
                write_varint(&mut body, *limit);
            }
        }
    }
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Deserializes a trace from bytes.
pub fn decode_trace(bytes: &[u8]) -> Result<Trace> {
    if bytes.len() < 8 {
        return Err(Error::Corruption("trace file truncated".into()));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(Error::Corruption("bad trace magic".into()));
    }
    let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let body = &bytes[8..];
    if crc32(body) != stored_crc {
        return Err(Error::Corruption("trace crc mismatch".into()));
    }
    let mut pos = 0usize;
    let count = read_varint(body, &mut pos)? as usize;
    let mut ops = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        let kind = *body
            .get(pos)
            .ok_or_else(|| Error::Corruption("trace op truncated".into()))?;
        pos += 1;
        let key = Key::from(get_bytes(body, &mut pos)?);
        let op = match kind {
            KIND_READ => Op::Read { key },
            KIND_UPDATE => Op::Update {
                key,
                value: Value::from(get_bytes(body, &mut pos)?),
            },
            KIND_INSERT => Op::Insert {
                key,
                value: Value::from(get_bytes(body, &mut pos)?),
            },
            KIND_DELETE => Op::Delete { key },
            KIND_RMW => Op::ReadModifyWrite {
                key,
                value: Value::from(get_bytes(body, &mut pos)?),
            },
            KIND_SCAN => Op::Scan {
                start: key,
                end: Key::from(get_bytes(body, &mut pos)?),
                limit: read_varint(body, &mut pos)?,
            },
            other => return Err(Error::Corruption(format!("bad op kind {other}"))),
        };
        ops.push(op);
    }
    if pos != body.len() {
        return Err(Error::Corruption("trailing bytes after trace ops".into()));
    }
    Ok(Trace::new(ops))
}

/// Writes a trace to a file (atomically, via temp + rename).
pub fn save_trace(trace: &Trace, path: &Path) -> Result<()> {
    let bytes = encode_trace(trace);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a trace from a file.
pub fn load_trace(path: &Path) -> Result<Trace> {
    decode_trace(&std::fs::read(path)?)
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let len = read_varint(buf, pos)? as usize;
    if *pos + len > buf.len() {
        return Err(Error::Corruption("trace bytes overflow".into()));
    }
    let out = buf[*pos..*pos + len].to_vec();
    *pos += len;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{Workload, WorkloadSpec};
    use proptest::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tb-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.trace", std::process::id()))
    }

    #[test]
    fn roundtrip_generated_workload() {
        let (load, run) = Workload::new(WorkloadSpec::ycsb_a(200, 1000)).generate();
        for trace in [load, run] {
            let bytes = encode_trace(&trace);
            let back = decode_trace(&bytes).unwrap();
            assert_eq!(back.ops(), trace.ops());
        }
    }

    #[test]
    fn file_save_load() {
        let p = tmp("file");
        let mut w = Workload::new(WorkloadSpec::case2_reconciliation(100, 500));
        let _ = w.load_ops();
        let trace = w.run_trace();
        save_trace(&trace, &p).unwrap();
        let back = load_trace(&p).unwrap();
        assert_eq!(back.ops(), trace.ops());
        // Stats survive the roundtrip exactly.
        assert_eq!(back.stats(), trace.stats());
    }

    #[test]
    fn corruption_detected() {
        let (_, run) = Workload::new(WorkloadSpec::ycsb_b(50, 200)).generate();
        let bytes = encode_trace(&run);
        for i in [0usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            assert!(decode_trace(&bad).is_err(), "corruption at {i} accepted");
        }
        assert!(decode_trace(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_trace(&[]).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::default();
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap().len(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_roundtrip_arbitrary_ops(
            ops in proptest::collection::vec(
                (0u8..6, proptest::collection::vec(any::<u8>(), 0..40),
                 proptest::collection::vec(any::<u8>(), 0..100)),
                0..100,
            )
        ) {
            let trace = Trace::new(
                ops.into_iter()
                    .map(|(kind, k, v)| {
                        let limit = v.len() as u64;
                        let key = tb_common::Key::from(k);
                        let value = tb_common::Value::from(v);
                        match kind {
                            0 => Op::Read { key },
                            1 => Op::Update { key, value },
                            2 => Op::Insert { key, value },
                            3 => Op::Delete { key },
                            4 => Op::ReadModifyWrite { key, value },
                            _ => Op::Scan {
                                start: key,
                                end: tb_common::Key::copy_from(value.as_slice()),
                                limit,
                            },
                        }
                    })
                    .collect(),
            );
            let back = decode_trace(&encode_trace(&trace)).unwrap();
            prop_assert_eq!(back.ops(), trace.ops());
        }
    }
}
