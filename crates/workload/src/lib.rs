//! Workload generation for TierBase experiments.
//!
//! Reimplements the parts of YCSB (Cooper et al., SoCC '10) the paper's
//! evaluation depends on — zipfian/uniform/latest key choosers, the
//! standard Workload A/B/C mixes, and a load phase — plus the synthetic
//! datasets (Cities-style, machine-generated KV1/KV2) and the
//! record-and-replay trace machinery used by the cost-optimization
//! framework (§5.3) and the production case studies (§6.5).

pub mod dataset;
pub mod dist;
pub mod persist;
pub mod trace;
pub mod ycsb;

pub use dataset::{CitiesDataset, Dataset, DatasetKind, MachineDataset};
pub use dist::{KeyChooser, LatestChooser, ScrambledZipfian, UniformChooser, ZipfianGen};
pub use persist::{decode_trace, encode_trace, load_trace, save_trace};
pub use trace::{Op, Trace, TraceStats};
pub use ycsb::{OpKind, Workload, WorkloadSpec};
