//! Bloom filter for SSTable point-lookup short-circuiting.
//!
//! Double hashing (Kirsch–Mitzenmacher): two base hashes generate the k
//! probe positions, which preserves the asymptotic false-positive rate
//! of k independent hashes at a fraction of the cost.

use std::hash::Hasher;
use tb_common::hash::FxHasher;

/// A fixed-size bloom filter.
#[derive(Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    k: u32,
}

fn hash_pair(data: &[u8]) -> (u64, u64) {
    let mut h1 = FxHasher::default();
    h1.write(data);
    let a = h1.finish();
    let mut h2 = FxHasher::default();
    h2.write_u64(a ^ 0x9e37_79b9_7f4a_7c15);
    h2.write(data);
    (a, h2.finish() | 1) // odd second hash avoids degenerate cycles
}

impl BloomFilter {
    /// Sizes the filter for `expected_items` at `bits_per_key` (10 bits
    /// ≈ 1% false positives). `bits_per_key == 0` builds a pass-through
    /// filter (bloom disabled — the `ablation_bloom` baseline).
    pub fn new(expected_items: usize, bits_per_key: usize) -> Self {
        if bits_per_key == 0 {
            // One word, k=0 probes: `may_contain` is vacuously true.
            return Self {
                bits: vec![u64::MAX],
                n_bits: 64,
                k: 0,
            };
        }
        let n_bits = (expected_items.max(1) * bits_per_key.max(1)).next_power_of_two() as u64;
        // Optimal k = ln2 * bits/key, clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 12);
        Self {
            bits: vec![0u64; (n_bits / 64).max(1) as usize],
            n_bits,
            k,
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hash_pair(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// True when the key *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash_pair(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.n_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serializes to bytes (for the SSTable filter block).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.bits.len() * 8);
        out.extend_from_slice(&self.n_bits.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`Self::to_bytes`] output.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 12 {
            return None;
        }
        let n_bits = u64::from_le_bytes(data[0..8].try_into().ok()?);
        let k = u32::from_le_bytes(data[8..12].try_into().ok()?);
        let words = &data[12..];
        // k == 0 is the valid pass-through (bloom-disabled) encoding.
        if !words.len().is_multiple_of(8) || (words.len() as u64 * 8) < n_bits {
            return None;
        }
        let bits = words
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some(Self { bits, n_bits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000 {
            f.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..1000 {
            assert!(f.may_contain(format!("key-{i}").as_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000 {
            f.insert(format!("present-{i}").as_bytes());
        }
        let fp = (0..10_000)
            .filter(|i| f.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        // 10 bits/key targets ~1%; allow generous slack.
        assert!(fp < 500, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = BloomFilter::new(100, 10);
        for i in 0..100 {
            f.insert(format!("k{i}").as_bytes());
        }
        let bytes = f.to_bytes();
        let g = BloomFilter::from_bytes(&bytes).unwrap();
        for i in 0..100 {
            assert!(g.may_contain(format!("k{i}").as_bytes()));
        }
        assert_eq!(f.n_bits, g.n_bits);
        assert_eq!(f.k, g.k);
    }

    #[test]
    fn bad_bytes_rejected() {
        assert!(BloomFilter::from_bytes(&[]).is_none());
        assert!(BloomFilter::from_bytes(&[0u8; 11]).is_none());
        // Claimed bits exceed payload.
        let mut bytes = 1_000_000u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(BloomFilter::from_bytes(&bytes).is_none());
    }

    #[test]
    fn empty_filter_rejects_everything_probabilistically() {
        let f = BloomFilter::new(10, 10);
        let hits = (0..1000)
            .filter(|i| f.may_contain(format!("x{i}").as_bytes()))
            .count();
        assert_eq!(hits, 0);
    }
}
