//! Write-ahead log with CRC-framed, LSN-sequenced records and torn-tail
//! recovery.
//!
//! Record frame: `len u32 | crc u32 | lsn u64 | payload`, where `crc`
//! covers `lsn || payload` and `lsn` is the monotone log sequence
//! number the engine assigned the write (the currency of replication
//! shipping and session guarantees — see `tb_common::engine`). Replay
//! distinguishes the two ways a frame can be invalid:
//!
//! * **Torn tail** — the partial frame a crash leaves at the end of the
//!   log, with nothing valid after it. Replay truncates the file there
//!   so later appends never interleave with garbage.
//! * **Mid-log corruption** — an invalid frame with intact records
//!   *after* it. Truncating would silently drop acknowledged writes, so
//!   replay surfaces [`Error::Corruption`] instead and leaves the file
//!   untouched for inspection.
//!
//! A failed append repairs the log in place (truncate back to the last
//! durable frame) so one transient IO error cannot turn into mid-log
//! corruption on the next successful append.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tb_common::{fault, Crc32, Error, Result};

/// Bytes before the payload: `len u32 | crc u32 | lsn u64`.
const FRAME_HEADER: usize = 16;

/// CRC over `lsn || payload` — the whole checksummed span of a frame.
fn frame_crc(lsn: u64, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&lsn.to_le_bytes()).update(payload);
    c.finalize()
}

/// When the WAL forces data to the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Flush + fsync on every append (safest, slowest).
    EveryWrite,
    /// Flush to the OS on every append, fsync only on [`Wal::sync`]
    /// (the paper's WAL mode: asynchronous disk flush every second).
    OsBuffer,
}

/// An append-only write-ahead log.
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
    policy: SyncPolicy,
    len: u64,
    /// Set when a failed append could not be repaired; all writes fail
    /// until the log is reset or reopened (recovery stays possible —
    /// the file still ends in at worst a torn tail).
    poisoned: bool,
}

impl Wal {
    /// Opens (appending) or creates the WAL at `path`.
    pub fn open(path: &Path, policy: SyncPolicy) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            policy,
            len,
            poisoned: false,
        })
    }

    fn poisoned_err() -> Error {
        Error::Io("WAL poisoned by an unrepaired append failure; reopen to recover".into())
    }

    /// Appends one record sequenced at `lsn`.
    pub fn append(&mut self, lsn: u64, payload: &[u8]) -> Result<()> {
        if self.poisoned {
            return Err(Self::poisoned_err());
        }
        match self.try_append(lsn, payload) {
            Ok(()) => Ok(()),
            Err(e) => {
                // The frame may be partially buffered or flushed; cut
                // the file back to the last complete frame so the log
                // cannot accumulate garbage *between* valid records.
                self.repair();
                Err(e)
            }
        }
    }

    fn try_append(&mut self, lsn: u64, payload: &[u8]) -> Result<()> {
        fault::hit("wal.append.header")?;
        let mut header = [0u8; FRAME_HEADER];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&frame_crc(lsn, payload).to_le_bytes());
        header[8..].copy_from_slice(&lsn.to_le_bytes());
        self.writer.write_all(&header)?;
        fault::write_all("wal.append.payload", &mut self.writer, payload)?;
        match self.policy {
            SyncPolicy::EveryWrite => {
                self.writer.flush()?;
                fault::hit("wal.sync")?;
                self.writer.get_ref().sync_data()?;
            }
            SyncPolicy::OsBuffer => self.writer.flush()?,
        }
        // Count the frame only once it is fully in the OS: `len` is the
        // truncation point `repair` falls back to.
        self.len += (FRAME_HEADER + payload.len()) as u64;
        Ok(())
    }

    /// Best-effort recovery from a failed append: drop whatever the
    /// broken frame left in the buffer (without flushing it) and
    /// truncate the file back to the last complete frame.
    fn repair(&mut self) {
        let reopened = (|| -> std::io::Result<File> {
            let mut f = OpenOptions::new().read(true).write(true).open(&self.path)?;
            f.set_len(self.len)?;
            f.seek(SeekFrom::End(0))?;
            f.sync_data()?;
            Ok(f)
        })();
        match reopened {
            Ok(f) => {
                // Swap in a clean writer; `into_parts` discards the old
                // buffer without flushing its partial frame.
                let old = std::mem::replace(&mut self.writer, BufWriter::new(f));
                let _ = old.into_parts();
            }
            Err(_) => self.poisoned = true,
        }
    }

    /// Forces everything to durable storage.
    pub fn sync(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(Self::poisoned_err());
        }
        self.writer.flush()?;
        fault::hit("wal.sync")?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Truncates the log to empty (after a successful memtable flush).
    pub fn reset(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(Self::poisoned_err());
        }
        fault::hit("wal.reset")?;
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.sync_data()?;
        self.len = 0;
        Ok(())
    }

    /// Replays all intact records as `(lsn, payload)` in log order. A
    /// torn tail (nothing valid after the broken frame) is truncated in
    /// place; an invalid frame with valid records after it is mid-log
    /// corruption and surfaces as [`Error::Corruption`].
    pub fn replay(path: &Path) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
            Err(e) => return Err(e.into()),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let valid_end = loop {
            match parse_frame(&buf, pos) {
                Some((lsn, payload, next)) => {
                    records.push((lsn, payload.to_vec()));
                    pos = next;
                }
                None => break pos,
            }
            if pos == buf.len() {
                break pos;
            }
        };
        if valid_end < buf.len() {
            if has_frame_after(&buf, valid_end) {
                return Err(Error::Corruption(format!(
                    "WAL record at byte {valid_end} is corrupt but valid records follow \
                     (log is {} bytes); refusing to drop acknowledged writes",
                    buf.len()
                )));
            }
            // A torn tail: drop it so the next append starts clean.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(valid_end as u64)?;
            f.sync_data()?;
        }
        Ok(records)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses one complete, checksum-valid frame at `pos`.
fn parse_frame(buf: &[u8], pos: usize) -> Option<(u64, &[u8], usize)> {
    if pos + FRAME_HEADER > buf.len() {
        return None;
    }
    let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
    let lsn = u64::from_le_bytes(buf[pos + 8..pos + 16].try_into().unwrap());
    let start = pos + FRAME_HEADER;
    if start.checked_add(len)? > buf.len() {
        return None;
    }
    let payload = &buf[start..start + len];
    (frame_crc(lsn, payload) == crc).then_some((lsn, payload, start + len))
}

/// True when any complete valid frame starts after `from` — the signal
/// that an invalid frame is mid-log corruption rather than a torn tail.
/// (A byte-by-byte scan; it only runs on an already-broken log, and a
/// 1-in-2^32 checksum collision is the worst a false positive costs.)
/// The inclusive bound matters: an empty-payload frame is exactly
/// [`FRAME_HEADER`] bytes, so the last possible frame start is
/// `len - FRAME_HEADER` itself.
fn has_frame_after(buf: &[u8], from: usize) -> bool {
    (from + 1..=buf.len().saturating_sub(FRAME_HEADER)).any(|pos| parse_frame(buf, pos).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> (tb_common::TestDir, PathBuf) {
        let dir = tb_common::test_dir(&format!("tb-wal-{name}"));
        let p = dir.create().join("WAL");
        (dir, p)
    }

    #[test]
    fn append_replay_roundtrip() {
        let (_dir, p) = tmp("roundtrip");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(1, b"one").unwrap();
            wal.append(2, b"two").unwrap();
            wal.append(7, b"").unwrap();
        }
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(
            recs,
            vec![(1, b"one".to_vec()), (2, b"two".to_vec()), (7, vec![])],
            "records replay with the LSNs they were sequenced at"
        );
    }

    #[test]
    fn missing_file_replays_empty() {
        let (_dir, p) = tmp("missing");
        assert!(Wal::replay(&p).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let (_dir, p) = tmp("torn");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(1, b"intact-record").unwrap();
        }
        // Simulate a torn append: a partial frame at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap(); // length with no payload
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(&2u64.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs, vec![(1, b"intact-record".to_vec())]);
        // File physically truncated: a fresh append then replays cleanly.
        let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
        wal.append(2, b"after-recovery").unwrap();
        drop(wal);
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(
            recs,
            vec![
                (1, b"intact-record".to_vec()),
                (2, b"after-recovery".to_vec())
            ]
        );
    }

    #[test]
    fn corrupted_middle_record_surfaces_error() {
        let (_dir, p) = tmp("corrupt");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(1, b"good").unwrap();
            wal.append(2, b"will-be-corrupted").unwrap();
            wal.append(3, b"reachable-and-valid").unwrap();
        }
        let before = std::fs::read(&p).unwrap();
        {
            let mut f = OpenOptions::new().write(true).open(&p).unwrap();
            // Flip a payload byte of the second record.
            let second_payload = (FRAME_HEADER + 4) + FRAME_HEADER;
            f.seek(SeekFrom::Start(second_payload as u64 + 3)).unwrap();
            f.write_all(b"X").unwrap();
        }
        let err = Wal::replay(&p).unwrap_err();
        assert!(
            matches!(err, Error::Corruption(_)),
            "valid records after a bad frame must not be silently dropped: {err}"
        );
        // The file is left untouched for inspection — no truncation.
        assert_eq!(std::fs::read(&p).unwrap().len(), before.len());
    }

    #[test]
    fn corruption_before_trailing_empty_record_is_surfaced() {
        let (_dir, p) = tmp("corrupt-before-empty");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(1, b"will-be-corrupted").unwrap();
            // Valid header-only frame, last in file.
            wal.append(2, b"").unwrap();
        }
        {
            let mut f = OpenOptions::new().write(true).open(&p).unwrap();
            f.seek(SeekFrom::Start(FRAME_HEADER as u64 + 2)).unwrap();
            f.write_all(b"X").unwrap();
        }
        // The empty record after the bad frame is still acknowledged
        // data; truncating would drop it silently.
        assert!(matches!(Wal::replay(&p).unwrap_err(), Error::Corruption(_)));
    }

    #[test]
    fn corrupted_last_record_is_a_torn_tail() {
        let (_dir, p) = tmp("corrupt-last");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(1, b"good-first").unwrap();
            wal.append(2, b"payload-torn-by-crash").unwrap();
        }
        {
            let len = std::fs::metadata(&p).unwrap().len();
            let mut f = OpenOptions::new().write(true).open(&p).unwrap();
            // Flip a byte inside the *last* record's payload.
            f.seek(SeekFrom::Start(len - 3)).unwrap();
            f.write_all(b"X").unwrap();
        }
        // Nothing valid follows, so this recovers as a torn tail.
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs, vec![(1, b"good-first".to_vec())]);
    }

    #[test]
    fn failed_append_is_repaired_not_left_as_garbage() {
        use tb_common::fault::{self, FaultMode};
        let _g = crate::fault_test_gate();
        let (_dir, p) = tmp("append-repair");
        let mut wal = Wal::open(&p, SyncPolicy::OsBuffer).unwrap();
        wal.append(1, b"before-the-fault").unwrap();
        // The payload write fails after the header entered the buffer.
        // (Scoped: parallel tests in this binary must not trip it.)
        fault::arm_scoped("wal.append.payload", 1, FaultMode::Error);
        let err = wal.append(2, b"never-lands").unwrap_err();
        fault::reset();
        assert!(matches!(err, Error::FaultInjected(_)), "{err}");
        // The log stays usable and the next append lands right after
        // the last complete frame — no garbage in between.
        wal.append(2, b"after-the-fault").unwrap();
        drop(wal);
        assert_eq!(
            Wal::replay(&p).unwrap(),
            vec![
                (1, b"before-the-fault".to_vec()),
                (2, b"after-the-fault".to_vec())
            ]
        );
    }

    #[test]
    fn reset_empties_log() {
        let (_dir, p) = tmp("reset");
        let mut wal = Wal::open(&p, SyncPolicy::OsBuffer).unwrap();
        wal.append(1, b"flushed-to-sstable").unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert!(wal.is_empty());
        drop(wal);
        assert!(Wal::replay(&p).unwrap().is_empty());
    }

    #[test]
    fn reopen_appends_after_existing() {
        let (_dir, p) = tmp("reopen");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(1, b"first").unwrap();
        }
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            assert!(!wal.is_empty());
            wal.append(2, b"second").unwrap();
        }
        assert_eq!(
            Wal::replay(&p).unwrap(),
            vec![(1, b"first".to_vec()), (2, b"second".to_vec())]
        );
    }
}
