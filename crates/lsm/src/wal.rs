//! Write-ahead log with CRC-framed records and torn-tail recovery.
//!
//! Record frame: `len u32 | crc u32 | payload`. Replay stops at the
//! first frame whose length or checksum is invalid — the torn tail left
//! by a crash mid-write — and truncates the file there so later appends
//! never interleave with garbage.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use tb_common::{crc32, Result};

/// When the WAL forces data to the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Flush + fsync on every append (safest, slowest).
    EveryWrite,
    /// Flush to the OS on every append, fsync only on [`Wal::sync`]
    /// (the paper's WAL mode: asynchronous disk flush every second).
    OsBuffer,
}

/// An append-only write-ahead log.
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
    policy: SyncPolicy,
    len: u64,
}

impl Wal {
    /// Opens (appending) or creates the WAL at `path`.
    pub fn open(path: &Path, policy: SyncPolicy) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            policy,
            len,
        })
    }

    /// Appends one record.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(payload).to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.len += 8 + payload.len() as u64;
        match self.policy {
            SyncPolicy::EveryWrite => {
                self.writer.flush()?;
                self.writer.get_ref().sync_data()?;
            }
            SyncPolicy::OsBuffer => self.writer.flush()?,
        }
        Ok(())
    }

    /// Forces everything to durable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Truncates the log to empty (after a successful memtable flush).
    pub fn reset(&mut self) -> Result<()> {
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.sync_data()?;
        self.len = 0;
        Ok(())
    }

    /// Replays all intact records, truncating any torn tail in place.
    pub fn replay(path: &Path) -> Result<Vec<Vec<u8>>> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
            Err(e) => return Err(e.into()),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let valid_end = loop {
            if pos + 8 > buf.len() {
                break pos;
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            if start + len > buf.len() {
                break pos; // torn length
            }
            if crc32(&buf[start..start + len]) != crc {
                break pos; // torn payload
            }
            records.push(buf[start..start + len].to_vec());
            pos = start + len;
        };
        if valid_end < buf.len() {
            // Drop the torn tail so the next append starts clean.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(valid_end as u64)?;
            f.sync_data()?;
        }
        Ok(records)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tb-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_replay_roundtrip() {
        let p = tmp("roundtrip");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.append(b"").unwrap();
        }
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs, vec![b"one".to_vec(), b"two".to_vec(), vec![]]);
    }

    #[test]
    fn missing_file_replays_empty() {
        let p = tmp("missing");
        assert!(Wal::replay(&p).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let p = tmp("torn");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(b"intact-record").unwrap();
        }
        // Simulate a torn append: a partial frame at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap(); // length with no payload
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs, vec![b"intact-record".to_vec()]);
        // File physically truncated: a fresh append then replays cleanly.
        let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
        wal.append(b"after-recovery").unwrap();
        drop(wal);
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(
            recs,
            vec![b"intact-record".to_vec(), b"after-recovery".to_vec()]
        );
    }

    #[test]
    fn corrupted_middle_record_stops_replay() {
        let p = tmp("corrupt");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(b"good").unwrap();
            wal.append(b"will-be-corrupted").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        {
            let mut f = OpenOptions::new().write(true).open(&p).unwrap();
            // Flip a payload byte of the second record.
            f.seek(SeekFrom::Start(8 + 4 + 8 + 3)).unwrap();
            f.write_all(b"X").unwrap();
        }
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs, vec![b"good".to_vec()]);
    }

    #[test]
    fn reset_empties_log() {
        let p = tmp("reset");
        let mut wal = Wal::open(&p, SyncPolicy::OsBuffer).unwrap();
        wal.append(b"flushed-to-sstable").unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert!(wal.is_empty());
        drop(wal);
        assert!(Wal::replay(&p).unwrap().is_empty());
    }

    #[test]
    fn reopen_appends_after_existing() {
        let p = tmp("reopen");
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            wal.append(b"first").unwrap();
        }
        {
            let mut wal = Wal::open(&p, SyncPolicy::EveryWrite).unwrap();
            assert!(!wal.is_empty());
            wal.append(b"second").unwrap();
        }
        assert_eq!(
            Wal::replay(&p).unwrap(),
            vec![b"first".to_vec(), b"second".to_vec()]
        );
    }
}
