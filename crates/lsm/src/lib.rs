//! `tb-lsm`: a from-scratch log-structured merge-tree storage engine.
//!
//! This is the workspace's stand-in for UCS, the internal Ant Group
//! storage engine TierBase uses as its storage tier (§3): an LSM tree
//! with a write-ahead log, block-based SSTables with bloom filters and
//! sparse indexes, leveled compaction, and manifest-based recovery.
//! [`remote::DisaggregatedStore`] wraps the engine in the
//! remote-storage façade the cache tier talks to (simulated network
//! round-trips, batch read/write APIs).
//!
//! Write path: WAL append → memtable insert → (on threshold) flush to an
//! L0 SSTable → leveled compaction toward L_max.
//! Read path: memtable → immutable memtables → L0 (newest first) → L1+
//! (one table per level can contain the key).

pub mod bloom;
pub mod compaction;
pub mod db;
pub mod memtable;
pub mod remote;
pub mod sstable;
pub mod wal;

pub use db::{LsmConfig, LsmDb};
pub use remote::{DisaggregatedStore, NetworkModel};
