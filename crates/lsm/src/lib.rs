//! `tb-lsm`: a from-scratch log-structured merge-tree storage engine.
//!
//! This is the workspace's stand-in for UCS, the internal Ant Group
//! storage engine TierBase uses as its storage tier (§3): an LSM tree
//! with a write-ahead log, block-based SSTables with bloom filters and
//! sparse indexes, leveled compaction, and manifest-based recovery.
//! [`remote::DisaggregatedStore`] wraps the engine in the
//! remote-storage façade the cache tier talks to (simulated network
//! round-trips, batch read/write APIs).
//!
//! Write path: WAL append → memtable insert → (on threshold) flush to an
//! L0 SSTable → leveled compaction toward L_max.
//! Read path: memtable → immutable memtables → L0 (newest first) → L1+
//! (one table per level can contain the key).
//! Batch path ([`db::LsmDb::apply_batch`]): one submission pass stages
//! every SSTable lookup, the staged block reads are deduped per batch,
//! one completion pass fills results in submission order.

pub mod bloom;
pub mod compaction;

/// Unit tests that arm `tb_common::fault` injections serialize on this
/// gate: the registry holds one injection slot per process.
#[cfg(test)]
pub(crate) fn fault_test_gate() -> parking_lot::MutexGuard<'static, ()> {
    static GATE: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    GATE.lock()
}
pub mod db;
pub mod memtable;
pub mod read_pool;
pub mod remote;
pub mod sstable;
pub mod wal;

pub use db::{LsmConfig, LsmDb};
pub use read_pool::ReadPool;
pub use remote::{DisaggregatedStore, NetworkModel};

/// Every named fault point threaded through this crate's IO surface
/// (`tb_common::fault`). Torture harnesses enumerate this list; the
/// `fault_sites_all_reachable` test in `tests/fault_torture.rs` keeps
/// it honest against the code.
pub const FAULT_SITES: &[&str] = &[
    "wal.append.header",
    "wal.append.payload",
    "wal.sync",
    "wal.reset",
    "sst.write.data",
    "sst.write.filter",
    "sst.write.index",
    "sst.write.footer",
    "sst.sync",
    "sst.rename",
    "sst.dir_sync",
    "manifest.write",
    "manifest.sync",
    "manifest.rename",
    "manifest.dir_sync",
    "compact.remove_obsolete",
    "batch.complete",
    "batch.block_read",
    "sst.block_decode",
];

/// The subset of [`FAULT_SITES`] that are buffer writes, where a torn
/// (partial-write-then-crash) injection is meaningful.
pub const FAULT_WRITE_SITES: &[&str] = &[
    "wal.append.payload",
    "sst.write.data",
    "sst.write.filter",
    "sst.write.index",
    "sst.write.footer",
    "manifest.write",
];
