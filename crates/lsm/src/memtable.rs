//! In-memory write buffer: an ordered map of key → entry with size
//! accounting. Deletes are tombstones so they shadow older SSTable
//! versions until compaction drops them at the bottom level.

use std::collections::BTreeMap;
use tb_common::{Key, Value};

/// A live value or a deletion marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    Put(Value),
    Tombstone,
}

impl Entry {
    pub fn as_option(&self) -> Option<&Value> {
        match self {
            Entry::Put(v) => Some(v),
            Entry::Tombstone => None,
        }
    }

    fn cost(&self) -> usize {
        match self {
            Entry::Put(v) => v.len(),
            Entry::Tombstone => 1,
        }
    }
}

/// Sorted in-memory buffer of recent writes.
#[derive(Default)]
pub struct Memtable {
    map: BTreeMap<Key, Entry>,
    approx_bytes: usize,
}

impl Memtable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a put; returns the new approximate size.
    pub fn put(&mut self, key: Key, value: Value) -> usize {
        self.insert(key, Entry::Put(value))
    }

    /// Records a delete (tombstone).
    pub fn delete(&mut self, key: Key) -> usize {
        self.insert(key, Entry::Tombstone)
    }

    fn insert(&mut self, key: Key, entry: Entry) -> usize {
        let key_len = key.len();
        let new_cost = entry.cost();
        match self.map.insert(key, entry) {
            Some(old) => {
                // Key bytes already counted; swap the payload cost.
                self.approx_bytes = self.approx_bytes - old.cost() + new_cost;
            }
            None => {
                self.approx_bytes += key_len + new_cost;
            }
        }
        self.approx_bytes
    }

    /// Point lookup.
    pub fn get(&self, key: &Key) -> Option<&Entry> {
        self.map.get(key)
    }

    /// Approximate resident bytes (keys + values + tombstones).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Ordered iteration for flushing to an SSTable.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Entry)> {
        self.map.iter()
    }

    /// Ordered iteration over keys starting with `prefix`, including
    /// tombstones (they shadow older SSTable versions during scans).
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a Key, &'a Entry)> + 'a {
        self.map
            .range(Key::copy_from(prefix)..)
            .take_while(move |(k, _)| k.as_slice().starts_with(prefix))
    }

    /// Ordered iteration over `start <= key < end` (`end = None` =
    /// unbounded above), including tombstones — the memtable's
    /// contribution to a range scan's merge.
    pub fn scan_range<'a>(
        &'a self,
        start: &Key,
        end: Option<&'a Key>,
    ) -> impl Iterator<Item = (&'a Key, &'a Entry)> + 'a {
        self.map
            .range(start.clone()..)
            .take_while(move |(k, _)| end.is_none_or(|e| *k < e))
    }

    /// Consumes the memtable into its sorted entries.
    pub fn into_entries(self) -> Vec<(Key, Entry)> {
        self.map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn put_get_delete() {
        let mut m = Memtable::new();
        m.put(k("a"), v("1"));
        assert_eq!(m.get(&k("a")), Some(&Entry::Put(v("1"))));
        m.delete(k("a"));
        assert_eq!(m.get(&k("a")), Some(&Entry::Tombstone));
        assert_eq!(m.get(&k("b")), None);
    }

    #[test]
    fn overwrite_updates_size_accounting() {
        let mut m = Memtable::new();
        m.put(k("key"), v("short"));
        let s1 = m.approx_bytes();
        m.put(k("key"), v("a-much-longer-value-here"));
        let s2 = m.approx_bytes();
        assert!(s2 > s1);
        m.put(k("key"), v("s"));
        let s3 = m.approx_bytes();
        assert!(s3 < s2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn size_matches_exact_recount() {
        let mut m = Memtable::new();
        for i in 0..100 {
            m.put(k(&format!("key-{i}")), v(&format!("value-{i}")));
        }
        m.delete(k("key-50"));
        let exact: usize = m.iter().map(|(k, e)| k.len() + e.cost()).sum();
        assert_eq!(m.approx_bytes(), exact);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Memtable::new();
        for key in ["zebra", "apple", "mango"] {
            m.put(k(key), v("x"));
        }
        let keys: Vec<&Key> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&k("apple"), &k("mango"), &k("zebra")]);
    }

    #[test]
    fn scan_range_bounds_and_tombstones() {
        let mut m = Memtable::new();
        for key in ["a", "b", "c", "d"] {
            m.put(k(key), v(key));
        }
        m.delete(k("c"));
        let end = k("d");
        let got: Vec<(&Key, &Entry)> = m.scan_range(&k("b"), Some(&end)).collect();
        assert_eq!(
            got,
            vec![(&k("b"), &Entry::Put(v("b"))), (&k("c"), &Entry::Tombstone)]
        );
        let unbounded: Vec<&Key> = m.scan_range(&k("c"), None).map(|(k, _)| k).collect();
        assert_eq!(unbounded, vec![&k("c"), &k("d")]);
    }

    #[test]
    fn into_entries_preserves_tombstones() {
        let mut m = Memtable::new();
        m.put(k("live"), v("1"));
        m.delete(k("dead"));
        let entries = m.into_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, k("dead"));
        assert_eq!(entries[0].1, Entry::Tombstone);
    }
}
