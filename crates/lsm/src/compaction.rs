//! Merging logic for flush and leveled compaction.
//!
//! Inputs are ordered **newest first**; the first occurrence of a key
//! wins. Tombstones survive the merge unless the output lands in the
//! bottom level (nothing older can exist below it), where they are
//! dropped for good.

use crate::memtable::Entry;
use std::collections::BTreeMap;
use tb_common::Key;

/// Merges entry runs (newest first) into one sorted, deduplicated run.
pub fn merge_runs(inputs: Vec<Vec<(Key, Entry)>>, drop_tombstones: bool) -> Vec<(Key, Entry)> {
    let mut merged: BTreeMap<Key, Entry> = BTreeMap::new();
    for run in inputs {
        for (k, e) in run {
            merged.entry(k).or_insert(e); // first (newest) wins
        }
    }
    merged
        .into_iter()
        .filter(|(_, e)| !(drop_tombstones && *e == Entry::Tombstone))
        .collect()
}

/// Size of one level in bytes given per-table file sizes.
pub fn level_bytes(file_sizes: &[u64]) -> u64 {
    file_sizes.iter().sum()
}

/// Max bytes allowed in level `n` (1-based beyond L0) with the classic
/// 10× fanout.
pub fn level_limit(level: usize, base_bytes: u64) -> u64 {
    base_bytes * 10u64.pow(level.saturating_sub(1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_common::Value;

    fn put(k: &str, v: &str) -> (Key, Entry) {
        (Key::from(k), Entry::Put(Value::from(v)))
    }

    fn del(k: &str) -> (Key, Entry) {
        (Key::from(k), Entry::Tombstone)
    }

    #[test]
    fn newest_version_wins() {
        let newest = vec![put("a", "new")];
        let oldest = vec![put("a", "old"), put("b", "keep")];
        let out = merge_runs(vec![newest, oldest], false);
        assert_eq!(out, vec![put("a", "new"), put("b", "keep")]);
    }

    #[test]
    fn tombstone_shadows_older_put() {
        let newest = vec![del("a")];
        let oldest = vec![put("a", "old")];
        let kept = merge_runs(vec![newest.clone(), oldest.clone()], false);
        assert_eq!(kept, vec![del("a")]);
        let dropped = merge_runs(vec![newest, oldest], true);
        assert!(dropped.is_empty());
    }

    #[test]
    fn older_tombstone_does_not_hide_newer_put() {
        let newest = vec![put("a", "resurrected")];
        let oldest = vec![del("a")];
        let out = merge_runs(vec![newest, oldest], true);
        assert_eq!(out, vec![put("a", "resurrected")]);
    }

    #[test]
    fn output_is_sorted() {
        let r1 = vec![put("m", "1"), put("z", "1")];
        let r2 = vec![put("a", "2"), put("q", "2")];
        let out = merge_runs(vec![r1, r2], false);
        let keys: Vec<&Key> = out.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn three_way_merge_respects_order() {
        let l0_new = vec![put("k", "v3")];
        let l0_old = vec![put("k", "v2")];
        let l1 = vec![put("k", "v1")];
        let out = merge_runs(vec![l0_new, l0_old, l1], false);
        assert_eq!(out, vec![put("k", "v3")]);
    }

    #[test]
    fn level_limits_fan_out() {
        assert_eq!(level_limit(1, 1000), 1000);
        assert_eq!(level_limit(2, 1000), 10_000);
        assert_eq!(level_limit(3, 1000), 100_000);
    }
}
