//! Disaggregated-storage façade (the UCS role in §3).
//!
//! TierBase's cache tier reaches the storage tier over the network, so
//! every call pays a round-trip in addition to the engine's own work —
//! and batch APIs amortize that round-trip, which is precisely why the
//! write-back policy's batched flushes beat per-key write-through on
//! write-heavy workloads. [`NetworkModel`] injects the round-trip;
//! latency is simulated with a busy-wait so it shows up in measured
//! throughput the same way a real RPC stall would.

use crate::db::LsmDb;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tb_common::{BatchReadStats, EngineOp, Key, KvEngine, OpOutcome, Result, Value};

/// Round-trip cost model for cache-tier → storage-tier calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Fixed round-trip latency per call.
    pub rtt_us: u64,
    /// Additional cost per KiB transferred.
    pub per_kib_us: u64,
}

impl NetworkModel {
    /// Typical same-datacenter RPC: ~200 µs RTT, ~2 µs/KiB.
    pub fn datacenter() -> Self {
        Self {
            rtt_us: 200,
            per_kib_us: 2,
        }
    }

    /// No simulated network (unit tests).
    pub fn none() -> Self {
        Self {
            rtt_us: 0,
            per_kib_us: 0,
        }
    }

    fn stall(&self, payload_bytes: usize) {
        let us = self.rtt_us + self.per_kib_us * (payload_bytes as u64).div_ceil(1024);
        if us == 0 {
            return;
        }
        // A network round-trip blocks the caller but must not occupy a
        // core. thread::sleep overshoots badly at sub-millisecond scale
        // under load, so wait in a yield loop: accurate to ~the scheduler
        // quantum while ceding the CPU to runnable threads.
        let deadline = Instant::now() + Duration::from_micros(us);
        if us >= 20 {
            while Instant::now() < deadline {
                std::thread::yield_now();
            }
            return;
        }
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

/// Remote-call counters (observability + cost attribution).
#[derive(Debug, Default)]
pub struct RemoteStats {
    pub calls: AtomicU64,
    pub batched_ops: AtomicU64,
}

/// An [`LsmDb`] behind a simulated network: the storage tier.
pub struct DisaggregatedStore {
    db: Arc<LsmDb>,
    network: NetworkModel,
    pub stats: Arc<RemoteStats>,
    _obs: tb_obs::SourceGuard,
}

impl DisaggregatedStore {
    pub fn new(db: Arc<LsmDb>, network: NetworkModel) -> Self {
        let stats = Arc::new(RemoteStats::default());
        let obs = {
            let stats = stats.clone();
            tb_obs::global().register_source(move |b| {
                b.counter("remote_calls", stats.calls.load(Ordering::Relaxed));
                b.counter(
                    "remote_batched_ops",
                    stats.batched_ops.load(Ordering::Relaxed),
                );
            })
        };
        Self {
            db,
            network,
            stats,
            _obs: obs,
        }
    }

    fn call<T>(&self, payload: usize, f: impl FnOnce() -> Result<T>) -> Result<T> {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        self.network.stall(payload);
        f()
    }

    /// Remote point read (one round-trip).
    pub fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.call(key.len(), || self.db.get(key))
    }

    /// Remote single put (one round-trip).
    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        let payload = key.len() + value.len();
        self.call(payload, || self.db.put(key, value))
    }

    /// Remote delete (one round-trip).
    pub fn delete(&self, key: &Key) -> Result<()> {
        self.call(key.len(), || self.db.delete(key.clone()))
    }

    /// Batched write: one round-trip for the whole batch — the
    /// write-back flush path.
    pub fn batch_put(&self, items: Vec<(Key, Value)>) -> Result<()> {
        let payload: usize = items.iter().map(|(k, v)| k.len() + v.len()).sum();
        self.stats
            .batched_ops
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        self.call(payload, || self.db.multi_put(items))
    }

    /// Batched read: one round-trip fetching many keys — the deferred
    /// cache-fetching path (§4.1.2). Server-side the keys resolve
    /// through the engine's overlapped batch path, so the SSTable
    /// blocks behind them are read once per call.
    pub fn batch_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        let payload: usize = keys.iter().map(|k| k.len()).sum();
        self.stats
            .batched_ops
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.call(payload, || self.db.multi_get(keys))
    }

    /// Submits a heterogeneous op batch over one round-trip; the
    /// engine's native submission/completion pass runs server-side.
    pub fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        let payload: usize = ops
            .iter()
            .map(|op| match op {
                EngineOp::Get(k) | EngineOp::Delete(k) => k.len(),
                EngineOp::Put(k, v) => k.len() + v.len(),
                EngineOp::Cas { key, new, .. } => key.len() + new.len(),
                EngineOp::MultiGet(keys) => keys.iter().map(|k| k.len()).sum(),
                EngineOp::MultiPut(pairs) => pairs.iter().map(|(k, v)| k.len() + v.len()).sum(),
                // Request-side cost only; the (potentially large)
                // response payload is charged by callers that use the
                // dedicated scan entry points.
                EngineOp::Scan { start, end, .. } => start.len() + end.as_ref().map_or(0, Key::len),
            })
            .sum();
        self.stats
            .batched_ops
            .fetch_add(ops.len() as u64, Ordering::Relaxed);
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        self.network.stall(payload);
        self.db.apply_batch(ops)
    }

    /// Remote range scan: one round-trip running the engine's batched
    /// scan server-side (payload cost charged on the result size).
    pub fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let rows = self.db.scan(start, end, limit)?;
        let payload: usize = rows.iter().map(|(k, v)| k.len() + v.len()).sum();
        self.network.stall(payload);
        self.stats
            .batched_ops
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        Ok(rows)
    }

    /// Remote prefix scan: one round-trip returning every live key
    /// under `prefix` (payload cost charged on the result size).
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Key, Value)>> {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let rows = self.db.scan_prefix(prefix)?;
        let payload: usize = rows.iter().map(|(k, v)| k.len() + v.len()).sum();
        self.network.stall(payload);
        self.stats
            .batched_ops
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        Ok(rows)
    }

    /// The wrapped engine (test access).
    pub fn db(&self) -> &Arc<LsmDb> {
        &self.db
    }
}

impl KvEngine for DisaggregatedStore {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        DisaggregatedStore::get(self, key)
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        DisaggregatedStore::put(self, key, value)
    }

    fn delete(&self, key: &Key) -> Result<()> {
        DisaggregatedStore::delete(self, key)
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        DisaggregatedStore::batch_get(self, keys)
    }

    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        DisaggregatedStore::batch_put(self, pairs)
    }

    fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        DisaggregatedStore::apply_batch(self, ops)
    }

    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        DisaggregatedStore::scan(self, start, end, limit)
    }

    fn batch_read_stats(&self) -> BatchReadStats {
        self.db.batch_read_stats()
    }

    fn resident_bytes(&self) -> u64 {
        self.db.disk_bytes()
    }

    fn label(&self) -> String {
        "disaggregated-lsm".into()
    }

    fn sync(&self) -> Result<()> {
        KvEngine::sync(self.db.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::LsmConfig;

    fn store(name: &str, network: NetworkModel) -> (tb_common::TestDir, DisaggregatedStore) {
        let dir = tb_common::test_dir(&format!("tb-remote-{name}"));
        let db = Arc::new(LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap());
        (dir, DisaggregatedStore::new(db, network))
    }

    #[test]
    fn remote_roundtrip() {
        let (_dir, s) = store("rt", NetworkModel::none());
        s.put(Key::from("a"), Value::from("1")).unwrap();
        assert_eq!(s.get(&Key::from("a")).unwrap(), Some(Value::from("1")));
        s.delete(&Key::from("a")).unwrap();
        assert_eq!(s.get(&Key::from("a")).unwrap(), None);
        assert_eq!(s.stats.calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn batch_apis_count_one_call() {
        let (_dir, s) = store("batch", NetworkModel::none());
        let items: Vec<(Key, Value)> = (0..50)
            .map(|i| (Key::from(format!("k{i}")), Value::from(format!("v{i}"))))
            .collect();
        s.batch_put(items).unwrap();
        assert_eq!(s.stats.calls.load(Ordering::Relaxed), 1);
        assert_eq!(s.stats.batched_ops.load(Ordering::Relaxed), 50);

        let keys: Vec<Key> = (0..50).map(|i| Key::from(format!("k{i}"))).collect();
        let got = s.batch_get(&keys).unwrap();
        assert_eq!(s.stats.calls.load(Ordering::Relaxed), 2);
        assert!(got.iter().all(|v| v.is_some()));
    }

    #[test]
    fn network_latency_slows_calls() {
        let (_dir, s) = store(
            "slow",
            NetworkModel {
                rtt_us: 2000,
                per_kib_us: 0,
            },
        );
        let t0 = Instant::now();
        for i in 0..10 {
            s.put(Key::from(format!("k{i}")), Value::from("v")).unwrap();
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "network stall missing: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn batching_amortizes_latency() {
        let net = NetworkModel {
            rtt_us: 1000,
            per_kib_us: 0,
        };
        let (_dir, s1) = store("amort1", net);
        let (_dir, s2) = store("amort2", net);
        let items: Vec<(Key, Value)> = (0..20)
            .map(|i| (Key::from(format!("k{i}")), Value::from("v")))
            .collect();

        let t0 = Instant::now();
        for (k, v) in items.clone() {
            s1.put(k, v).unwrap();
        }
        let individual = t0.elapsed();

        let t1 = Instant::now();
        s2.batch_put(items).unwrap();
        let batched = t1.elapsed();

        assert!(
            batched < individual / 5,
            "batching should amortize RTTs: {batched:?} vs {individual:?}"
        );
    }
}
