//! The LSM database: WAL + memtable + leveled SSTables + manifest.
//!
//! Durability contract: every mutation is WAL-appended before it is
//! visible; the WAL resets only after its contents are safely inside an
//! SSTable named by a durably-written manifest. Recovery = load
//! manifest, open tables, replay WAL.
//!
//! Concurrency: one `RwLock` around the whole tree. Reads share the
//! lock (including their block I/O); writes serialize. This favors
//! simplicity — the engine's role in TierBase is the *storage tier*,
//! whose throughput the paper models as RPC-bounded anyway.

use crate::compaction::{level_bytes, level_limit, merge_runs};
use crate::memtable::{Entry, Memtable};
use crate::read_pool::{FetchJob, ReadPool};
use crate::sstable::{
    decode_block, find_in_block, sync_parent_dir, write_sstable_with_stats, BlockBuf,
    SstBuildStats, SstConfig, SstDecodeStats, SstMeta, SstReader,
};
use crate::wal::{SyncPolicy, Wal};
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tb_common::{
    crc32, fault, read_varint, write_varint, BatchReadStats, EngineOp, Error, Key, KvEngine, Lsn,
    OpOutcome, Result, Value,
};

const MANIFEST_MAGIC: u32 = 0x7b4d_414e;

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Data directory (created if absent).
    pub dir: PathBuf,
    /// Memtable flush threshold in bytes.
    pub memtable_bytes: usize,
    /// Number of L0 tables that triggers an L0→L1 compaction.
    pub l0_compaction_trigger: usize,
    /// Byte budget of L1; level N holds 10^(N-1) × this.
    pub level_base_bytes: u64,
    /// Deepest level index (levels are 0..=max_level).
    pub max_level: usize,
    /// SSTable block/bloom parameters.
    pub sst: SstConfig,
    /// WAL sync policy.
    pub wal_sync: SyncPolicy,
    /// Worker threads of the shard-local block-fetch pool used by the
    /// batched read path ([`LsmDb::apply_batch`]'s completion pass).
    /// `0` (the default) keeps the inline path: staged reads fetched
    /// sequentially on the submitting thread. With a pool, the deduped
    /// fetch list is submitted as one chain — adjacent blocks coalesce
    /// into span reads, fetches overlap across workers, results still
    /// fill in submission order.
    pub read_pool_threads: usize,
}

impl LsmConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            memtable_bytes: 4 << 20,
            l0_compaction_trigger: 4,
            level_base_bytes: 16 << 20,
            max_level: 4,
            sst: SstConfig::default(),
            wal_sync: SyncPolicy::OsBuffer,
            read_pool_threads: 0,
        }
    }

    /// Small thresholds for tests: flush/compact often.
    pub fn small_for_tests(dir: impl Into<PathBuf>) -> Self {
        Self {
            memtable_bytes: 4 << 10,
            l0_compaction_trigger: 2,
            level_base_bytes: 32 << 10,
            max_level: 3,
            ..Self::new(dir)
        }
    }
}

/// Operational counters.
#[derive(Debug, Default)]
pub struct LsmStats {
    pub flushes: AtomicU64,
    pub compactions: AtomicU64,
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    /// [`LsmDb::apply_batch`] invocations.
    pub batches: AtomicU64,
    /// Unique SSTable blocks fetched by batched reads.
    pub batch_blocks_read: AtomicU64,
    /// Staged block references satisfied by a block another key in the
    /// same batch already fetched.
    pub batch_block_dedup_hits: AtomicU64,
    /// Batched lookups resolved from the memtable without staging IO.
    pub batch_memtable_hits: AtomicU64,
    /// Blocks fetched through the read pool (subset of
    /// `batch_blocks_read`; zero with `read_pool_threads = 0`).
    pub batch_parallel_fetches: AtomicU64,
    /// High-water mark of block fetches outstanding in the pool at once.
    pub read_pool_queue_depth: AtomicU64,
    /// Block references staged by scans, pre-dedup (the scan share of
    /// the batch fetch lists — lets scan traffic be told apart from
    /// point reads).
    pub batch_scan_blocks_read: AtomicU64,
    /// Range scans submitted (via [`LsmDb::scan`] or a batched
    /// `EngineOp::Scan`).
    pub scans: AtomicU64,
    /// Data blocks whose frame carries a compressed payload (flush and
    /// compaction combined; blocks that didn't shrink fall back to
    /// stored frames and are not counted).
    pub blocks_compressed: AtomicU64,
    /// On-disk data-region bytes written (frames + dict payloads).
    pub compressed_bytes_written: AtomicU64,
    /// Raw block bytes before framing — with
    /// `compressed_bytes_written`, the store's real compression ratio.
    pub uncompressed_bytes_written: AtomicU64,
    /// Decode-side counters (CRC-verified frames, decompressions,
    /// corruption errors), shared by every table this engine opens.
    pub decode: Arc<SstDecodeStats>,
}

impl LsmStats {
    fn add_build(&self, build: &SstBuildStats) {
        self.blocks_compressed
            .fetch_add(build.blocks_compressed, Ordering::Relaxed);
        self.compressed_bytes_written
            .fetch_add(build.compressed_bytes, Ordering::Relaxed);
        self.uncompressed_bytes_written
            .fetch_add(build.uncompressed_bytes, Ordering::Relaxed);
    }
}

/// One batched lookup after the submission pass.
enum Lookup {
    /// Resolved without block IO: memtable hit, or every table ruled
    /// the key out (range/bloom).
    Ready(Option<Value>),
    /// Staged: `candidates[start..end]` of the batch's shared arena
    /// holds this key's `(table, block)` pairs in table-priority order;
    /// the completion pass searches them against the batch's deduped
    /// block fetches. (One arena per batch, not one Vec per key — a
    /// point lookup must not pay an allocation for being batched.)
    Staged { key: Key, start: usize, end: usize },
}

/// One submitted op after the submission pass: writes and memtable-only
/// lookups are done; staged lookups await the completion pass.
enum Slot {
    Done(Result<OpOutcome>),
    Get(Lookup),
    MultiGet(Vec<Lookup>),
    /// A staged range scan: `candidates[cand_start..cand_end]` holds
    /// every block of every overlapping table, pushed in table-priority
    /// order (memtable entries, the highest priority, are snapshotted
    /// into `base` at submission). The completion pass decodes the
    /// staged blocks — deduped and fetched alongside the batch's point
    /// lookups — and merges newest-wins.
    Scan {
        start: Key,
        end: Option<Key>,
        limit: usize,
        base: Vec<(Key, Entry)>,
        cand_start: usize,
        cand_end: usize,
    },
}

struct Inner {
    memtable: Memtable,
    wal: Wal,
    /// `levels[0]` newest-first and overlapping; deeper levels are each
    /// one sorted run (possibly several non-overlapping tables).
    levels: Vec<Vec<Arc<SstReader>>>,
}

/// The LSM storage engine.
pub struct LsmDb {
    inner: RwLock<Inner>,
    config: LsmConfig,
    next_file_id: AtomicU64,
    /// LSN of the newest applied write (see `tb_common::engine` for the
    /// contract). Advanced under the tree's write lock; read lock-free
    /// by [`KvEngine::applied_lsn`]. Persisted in the manifest (the WAL
    /// resets on flush, so frames alone cannot carry the high-water
    /// mark across a flush boundary).
    last_lsn: AtomicU64,
    /// Shard-local block-fetch pool (`config.read_pool_threads > 0`).
    /// One pool per engine: every front-end worker draining batches
    /// onto this shard — boosted siblings included — shares it.
    read_pool: Option<ReadPool>,
    pub stats: Arc<LsmStats>,
    /// Keeps this engine's counters contributing to
    /// [`tb_obs::global`] snapshots; deregisters on drop.
    _obs: tb_obs::SourceGuard,
}

impl LsmDb {
    /// Opens (or creates) a database in `config.dir`, running recovery.
    pub fn open(config: LsmConfig) -> Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let manifest_path = config.dir.join("MANIFEST");
        let (metas, manifest_lsn) = read_manifest(&manifest_path)?;
        // Stats exist before any table opens: every reader shares the
        // engine's decode counters from its first block read.
        let stats = Arc::new(LsmStats::default());
        let mut max_id = 0u64;
        let mut levels: Vec<Vec<Arc<SstReader>>> = vec![Vec::new(); config.max_level + 1];
        for (level, meta) in metas {
            max_id = max_id.max(meta.id);
            if level >= levels.len() {
                return Err(Error::Corruption(format!(
                    "manifest level {level} out of range"
                )));
            }
            levels[level].push(Arc::new(SstReader::open_shared(
                meta,
                stats.decode.clone(),
            )?));
        }

        // Replay the WAL into a fresh memtable, tracking the highest
        // LSN seen: the recovered sequence resumes after the larger of
        // the manifest's flushed high-water mark and the WAL tail.
        let wal_path = config.dir.join("WAL");
        let mut memtable = Memtable::new();
        let mut wal_lsn = 0u64;
        for (lsn, rec) in Wal::replay(&wal_path)? {
            let (key, entry) = decode_wal_record(&rec)?;
            wal_lsn = wal_lsn.max(lsn);
            match entry {
                Entry::Put(v) => memtable.put(key, v),
                Entry::Tombstone => memtable.delete(key),
            };
        }
        let wal = Wal::open(&wal_path, config.wal_sync)?;

        // Sweep crash leftovers: .tmp files from interrupted writes and
        // .sst files no manifest references (a flush or compaction that
        // died between writing the table and installing it).
        let referenced: std::collections::HashSet<PathBuf> = levels
            .iter()
            .flatten()
            .map(|t| t.meta.path.clone())
            .collect();
        for entry in std::fs::read_dir(&config.dir)? {
            let path = entry?.path();
            let ext = path.extension().and_then(|e| e.to_str());
            let orphan = match ext {
                Some("tmp") => true,
                Some("sst") => !referenced.contains(&path),
                _ => false,
            };
            if orphan {
                let _ = std::fs::remove_file(&path);
            }
        }

        let read_pool =
            (config.read_pool_threads > 0).then(|| ReadPool::new(config.read_pool_threads));
        let obs = {
            let stats = stats.clone();
            let pool_depth = read_pool.as_ref().map(ReadPool::depth_handle);
            tb_obs::global().register_source(move |b| {
                let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
                b.counter("lsm_flushes", c(&stats.flushes));
                b.counter("lsm_compactions", c(&stats.compactions));
                b.counter("lsm_gets", c(&stats.gets));
                b.counter("lsm_puts", c(&stats.puts));
                b.counter("lsm_batches", c(&stats.batches));
                b.counter("lsm_batch_blocks_read", c(&stats.batch_blocks_read));
                b.counter(
                    "lsm_batch_block_dedup_hits",
                    c(&stats.batch_block_dedup_hits),
                );
                b.counter("lsm_batch_memtable_hits", c(&stats.batch_memtable_hits));
                b.counter(
                    "lsm_batch_parallel_fetches",
                    c(&stats.batch_parallel_fetches),
                );
                b.counter(
                    "lsm_batch_scan_blocks_read",
                    c(&stats.batch_scan_blocks_read),
                );
                b.counter("lsm_scans", c(&stats.scans));
                b.counter("lsm_blocks_compressed", c(&stats.blocks_compressed));
                b.counter(
                    "lsm_compressed_bytes_written",
                    c(&stats.compressed_bytes_written),
                );
                b.counter(
                    "lsm_uncompressed_bytes_written",
                    c(&stats.uncompressed_bytes_written),
                );
                b.counter(
                    "lsm_blocks_decompressed",
                    c(&stats.decode.blocks_decompressed),
                );
                b.counter(
                    "lsm_block_decode_errors",
                    c(&stats.decode.block_decode_errors),
                );
                if let Some(depth) = &pool_depth {
                    b.gauge("lsm_read_pool_queue_depth", depth.current() as i64);
                    b.gauge("lsm_read_pool_queue_depth_hwm", depth.high_water() as i64);
                }
            })
        };
        Ok(Self {
            inner: RwLock::new(Inner {
                memtable,
                wal,
                levels,
            }),
            next_file_id: AtomicU64::new(max_id + 1),
            last_lsn: AtomicU64::new(manifest_lsn.max(wal_lsn)),
            config,
            read_pool,
            stats,
            _obs: obs,
        })
    }

    /// Threads in the shard-local read pool (0 = inline completion).
    pub fn read_pool_threads(&self) -> usize {
        self.read_pool.as_ref().map_or(0, ReadPool::threads)
    }

    /// Inserts or overwrites a key.
    pub fn put(&self, key: Key, value: Value) -> Result<()> {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.write(key, Entry::Put(value))
    }

    /// Deletes a key (tombstone).
    pub fn delete(&self, key: Key) -> Result<()> {
        self.write(key, Entry::Tombstone)
    }

    fn write(&self, key: Key, entry: Entry) -> Result<()> {
        let mut inner = self.inner.write();
        self.write_locked(&mut inner, key, entry).map(|_| ())
    }

    /// Appends, applies, and sequences one write; returns its assigned
    /// LSN. A failed WAL append consumes no LSN (the write never
    /// applied); a post-apply failure (flush) surfaces as an error with
    /// the LSN already advanced — the write is durable in the WAL and
    /// indeterminate to the caller, exactly the ack contract.
    fn write_locked(&self, inner: &mut Inner, key: Key, entry: Entry) -> Result<u64> {
        let lsn = self.last_lsn.load(Ordering::Relaxed) + 1;
        inner.wal.append(lsn, &encode_wal_record(&key, &entry))?;
        self.last_lsn.store(lsn, Ordering::Release);
        let size = match entry {
            Entry::Put(v) => inner.memtable.put(key, v),
            Entry::Tombstone => inner.memtable.delete(key),
        };
        if size >= self.config.memtable_bytes {
            self.flush_locked(inner)?;
        }
        Ok(lsn)
    }

    /// Point lookup through memtable and levels.
    pub fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        Self::get_locked(&self.inner.read(), key)
    }

    fn get_locked(inner: &Inner, key: &Key) -> Result<Option<Value>> {
        if let Some(entry) = inner.memtable.get(key) {
            return Ok(entry.as_option().cloned());
        }
        for level in &inner.levels {
            for table in level {
                if let Some(entry) = table.get(key)? {
                    return Ok(match entry {
                        Entry::Put(v) => Some(v),
                        Entry::Tombstone => None,
                    });
                }
            }
        }
        Ok(None)
    }

    /// Atomic compare-and-set: the read, the comparison, and the write
    /// all happen under one acquisition of the tree's write lock, so
    /// concurrent writers cannot slip between them (unlike the default
    /// [`KvEngine::cas`], which is unsynchronized read-then-write).
    pub fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        let mut inner = self.inner.write();
        self.cas_locked(&mut inner, key, expected, new).map(|_| ())
    }

    fn cas_locked(
        &self,
        inner: &mut Inner,
        key: Key,
        expected: Option<&Value>,
        new: Value,
    ) -> Result<u64> {
        let current = Self::get_locked(inner, &key)?;
        let matches = match (current.as_ref(), expected) {
            (Some(c), Some(e)) => c == e,
            (None, None) => true,
            _ => false,
        };
        if !matches {
            return Err(Error::CasMismatch);
        }
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.write_locked(inner, key, Entry::Put(new))
    }

    /// Submission/completion op batch — the engine-side half of the
    /// front-end's pipelined batches (io_uring shape: submit N
    /// heterogeneous ops, collect N completions after one storage
    /// pass).
    ///
    /// Submission pass, under one acquisition of the tree lock (write
    /// lock only when the batch contains writes): writes apply in
    /// submission order; lookups resolve immediately from the memtable
    /// or from a range/bloom rule-out, and otherwise *stage* their
    /// candidate `(table, block)` pairs against the level state they
    /// observed. Completion pass, after the lock drops: the staged
    /// block reads are deduped and fetched in `(table, block)` order —
    /// each block is read once per batch and shared across every key
    /// that needs it — then results fill in submission order. The
    /// staged tables are `Arc`-pinned, so the pass reads a consistent
    /// snapshot even if a concurrent flush or compaction rewrites the
    /// levels in between.
    ///
    /// With `read_pool_threads > 0` the completion pass submits the
    /// deduped fetch list to the shard's [`ReadPool`] as one chain:
    /// adjacent blocks coalesce into span reads, fetches overlap across
    /// pool workers, blocks complete out of order into the shared
    /// arena, and results still fill in submission order. Semantics are
    /// identical to the inline path — same blocks, same dedup counters,
    /// same per-slot error scoping, positionally identical
    /// `batch.block_read` fault behavior.
    pub fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        let has_write = ops.iter().any(|op| {
            matches!(
                op,
                EngineOp::Put(..)
                    | EngineOp::Delete(_)
                    | EngineOp::Cas { .. }
                    | EngineOp::MultiPut(_)
            )
        });

        // --- submission pass -----------------------------------------
        // One shared candidate arena for the whole batch; each staged
        // lookup owns a range of it.
        let submit_t0 = tb_obs::start();
        let mut cands: Vec<(Arc<SstReader>, usize)> = Vec::new();
        let slots: Vec<Slot> = if has_write {
            let mut inner = self.inner.write();
            ops.into_iter()
                .map(|op| self.submit_op(&mut inner, op, &mut cands))
                .collect()
        } else {
            let inner = self.inner.read();
            ops.into_iter()
                .map(|op| match op {
                    EngineOp::Get(key) => Slot::Get(self.stage_lookup(&inner, key, &mut cands)),
                    EngineOp::MultiGet(keys) => Slot::MultiGet(
                        keys.into_iter()
                            .map(|k| self.stage_lookup(&inner, k, &mut cands))
                            .collect(),
                    ),
                    EngineOp::Scan { start, end, limit } => {
                        self.stage_scan(&inner, start, end, limit, &mut cands)
                    }
                    _ => unreachable!("write ops take the write-lock path"),
                })
                .collect()
        };

        tb_obs::histo!("lsm_batch_submit_ns").record_since(submit_t0);

        // --- completion pass (no tree lock held) ---------------------
        // Dedup the staged reads: sort the candidate references by
        // `(table, block)` — each table's fetches issue sequentially —
        // then fetch each distinct block once, shared by every
        // candidate that references it.
        let staged_refs = cands.len() as u64;
        let mut order: Vec<u32> = (0..cands.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let (table, idx) = &cands[i as usize];
            (table.meta.id, *idx)
        });
        // `slot_of[c]` = index into `fetches` serving candidate `c`.
        let mut slot_of = vec![0u32; cands.len()];
        let mut fetches: Vec<u32> = Vec::new();
        for &i in &order {
            let (table, idx) = &cands[i as usize];
            let duplicate = fetches.last().is_some_and(|&j| {
                let (t, b) = &cands[j as usize];
                t.meta.id == table.meta.id && b == idx
            });
            if !duplicate {
                fetches.push(i);
            }
            slot_of[i as usize] = fetches.len() as u32 - 1;
        }
        let pass = if fetches.is_empty() {
            Ok(())
        } else {
            fault::hit("batch.complete")
        };
        let fetch_t0 = tb_obs::start();
        // Both fault passes run here, on the submitting thread, in the
        // same sorted fetch order whether or not a pool is configured
        // (positional determinism): `batch.block_read` fails the fetch
        // outright; a surviving fetch then draws its `sst.block_decode`
        // decision — a hit marks the block corrupt, and its frame is
        // deterministically mangled at decode time so the slot fails
        // with the same `Error::Corruption` a rotted disk would cause.
        let decide = || -> Result<bool> {
            fault::hit("batch.block_read")?;
            Ok(fault::hit("sst.block_decode").is_err())
        };
        let blocks: Vec<Result<BlockBuf>> = if pass.is_err() {
            Vec::new()
        } else if let Some(pool) = &self.read_pool {
            // Pooled fetch: the whole deduped list goes to the shard's
            // read pool as one chain — adjacent blocks coalesce into
            // span reads, fetches overlap across pool workers (plus
            // this thread), and results return in submission order.
            //
            // Fault decisions are drawn *here*, pre-dispatch (see
            // `decide` above): a `batch.block_read`-faulted fetch is
            // never dispatched — its error scopes to the slots
            // referencing that block alone, exactly like an inline read
            // error — while a corrupt-marked fetch is dispatched and
            // fails at decode on whichever thread claims it.
            let gates: Vec<Result<bool>> = fetches.iter().map(|_| decide()).collect();
            let jobs: Vec<FetchJob> = fetches
                .iter()
                .zip(&gates)
                .filter_map(|(&i, gate)| {
                    let corrupt = *gate.as_ref().ok()?;
                    let (table, idx) = &cands[i as usize];
                    Some(FetchJob {
                        table: table.clone(),
                        block: *idx,
                        corrupt,
                    })
                })
                .collect();
            self.stats
                .batch_parallel_fetches
                .fetch_add(jobs.len() as u64, Ordering::Relaxed);
            // Dispatch-to-completion span over the pooled chain: slow
            // batches show up in the tracer with the fetch count as
            // detail, and the same window feeds the pool histogram.
            let mut span = tb_obs::tracer().span("lsm.read_pool.fetch");
            if let Some(s) = span.as_mut() {
                s.set_detail(jobs.len() as u64);
            }
            let pool_t0 = tb_obs::start();
            let mut pooled = pool.fetch_chain(&jobs).into_iter();
            tb_obs::histo!("lsm_read_pool_fetch_ns").record_since(pool_t0);
            drop(span);
            self.stats
                .read_pool_queue_depth
                .fetch_max(pool.queue_depth_high_water(), Ordering::Relaxed);
            gates
                .into_iter()
                .map(|gate| match gate {
                    Ok(_) => pooled.next().expect("one pooled result per clean fetch"),
                    Err(e) => Err(e),
                })
                .collect()
        } else {
            fetches
                .iter()
                .map(|&i| {
                    let (table, idx) = &cands[i as usize];
                    decide().and_then(|corrupt| {
                        table
                            .read_block_marked(*idx, corrupt)
                            .map(BlockBuf::from_vec)
                    })
                })
                .collect()
        };
        tb_obs::histo!("lsm_batch_fetch_ns").record_since(fetch_t0);
        // Counted only when the pass ran: an aborted completion pass
        // fetched nothing, and the counters must say so.
        if pass.is_ok() {
            self.stats
                .batch_blocks_read
                .fetch_add(fetches.len() as u64, Ordering::Relaxed);
            self.stats
                .batch_block_dedup_hits
                .fetch_add(staged_refs - fetches.len() as u64, Ordering::Relaxed);
        }

        let complete = |lookup: Lookup| -> Result<Option<Value>> {
            match lookup {
                Lookup::Ready(v) => Ok(v),
                Lookup::Staged { key, start, end } => {
                    pass.clone()?;
                    for slot in &slot_of[start..end] {
                        match &blocks[*slot as usize] {
                            Err(e) => return Err(e.clone()),
                            Ok(bytes) => {
                                if let Some(entry) = find_in_block(bytes.as_slice(), &key)? {
                                    return Ok(entry.as_option().cloned());
                                }
                            }
                        }
                    }
                    Ok(None)
                }
            }
        };
        // Completes a staged scan: decode its staged blocks (any failed
        // fetch fails this slot alone), merge newest-wins — memtable
        // snapshot first, then tables in priority order (`or_insert`
        // keeps the freshest version) — drop tombstones, truncate.
        let complete_scan = |start: Key,
                             end: Option<Key>,
                             limit: usize,
                             base: Vec<(Key, Entry)>,
                             cand_start: usize,
                             cand_end: usize|
         -> Result<Vec<(Key, Value)>> {
            if cand_start < cand_end {
                pass.clone()?;
            }
            let mut merged: std::collections::BTreeMap<Key, Entry> = base.into_iter().collect();
            for slot in &slot_of[cand_start..cand_end] {
                match &blocks[*slot as usize] {
                    Err(e) => return Err(e.clone()),
                    Ok(bytes) => {
                        for (key, entry) in decode_block(bytes.as_slice())? {
                            if key >= start && end.as_ref().is_none_or(|e| &key < e) {
                                merged.entry(key).or_insert(entry);
                            }
                        }
                    }
                }
            }
            Ok(merged
                .into_iter()
                .filter_map(|(k, e)| match e {
                    Entry::Put(v) => Some((k, v)),
                    Entry::Tombstone => None,
                })
                .take(limit)
                .collect())
        };
        let merge_t0 = tb_obs::start();
        let outcomes = slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(r) => r,
                Slot::Get(l) => complete(l).map(OpOutcome::Value),
                Slot::MultiGet(ls) => ls
                    .into_iter()
                    .map(&complete)
                    .collect::<Result<Vec<_>>>()
                    .map(OpOutcome::Values),
                Slot::Scan {
                    start,
                    end,
                    limit,
                    base,
                    cand_start,
                    cand_end,
                } => complete_scan(start, end, limit, base, cand_start, cand_end)
                    .map(OpOutcome::Range),
            })
            .collect();
        tb_obs::histo!("lsm_batch_merge_ns").record_since(merge_t0);
        outcomes
    }

    /// Applies one submitted op under the tree's write lock (writes run
    /// now, in submission order; lookups resolve or stage).
    fn submit_op(
        &self,
        inner: &mut Inner,
        op: EngineOp,
        cands: &mut Vec<(Arc<SstReader>, usize)>,
    ) -> Slot {
        match op {
            EngineOp::Get(key) => Slot::Get(self.stage_lookup(inner, key, cands)),
            EngineOp::MultiGet(keys) => Slot::MultiGet(
                keys.into_iter()
                    .map(|k| self.stage_lookup(inner, k, cands))
                    .collect(),
            ),
            EngineOp::Scan { start, end, limit } => {
                self.stage_scan(inner, start, end, limit, cands)
            }
            EngineOp::Put(key, value) => {
                self.stats.puts.fetch_add(1, Ordering::Relaxed);
                Slot::Done(
                    self.write_locked(inner, key, Entry::Put(value))
                        .map(|l| OpOutcome::Done(Lsn(l))),
                )
            }
            EngineOp::Delete(key) => Slot::Done(
                self.write_locked(inner, key, Entry::Tombstone)
                    .map(|l| OpOutcome::Done(Lsn(l))),
            ),
            // CAS reads its expectation synchronously (possibly block
            // IO) so later ops in the batch observe its effect — the
            // rare op pays; pure lookups stay overlapped.
            EngineOp::Cas { key, expected, new } => Slot::Done(
                self.cas_locked(inner, key, expected.as_ref(), new)
                    .map(|l| OpOutcome::Done(Lsn(l))),
            ),
            EngineOp::MultiPut(pairs) => {
                // The op acks with its *last* pair's LSN — the sequence
                // number that covers every pair before it.
                let mut result = Ok(0u64);
                for (k, v) in pairs {
                    self.stats.puts.fetch_add(1, Ordering::Relaxed);
                    result = self.write_locked(inner, k, Entry::Put(v));
                    if result.is_err() {
                        break;
                    }
                }
                Slot::Done(result.map(|l| OpOutcome::Done(Lsn(l))))
            }
        }
    }

    /// Resolves a batched lookup from the memtable, or stages its
    /// candidate blocks (into the batch's shared arena) against the
    /// current level state.
    fn stage_lookup(
        &self,
        inner: &Inner,
        key: Key,
        cands: &mut Vec<(Arc<SstReader>, usize)>,
    ) -> Lookup {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        if let Some(entry) = inner.memtable.get(&key) {
            self.stats
                .batch_memtable_hits
                .fetch_add(1, Ordering::Relaxed);
            return Lookup::Ready(entry.as_option().cloned());
        }
        let start = cands.len();
        for level in &inner.levels {
            for table in level {
                if let Some(idx) = table.locate(&key) {
                    cands.push((table.clone(), idx));
                }
            }
        }
        if cands.len() == start {
            Lookup::Ready(None)
        } else {
            Lookup::Staged {
                key,
                start,
                end: cands.len(),
            }
        }
    }

    /// Stages a range scan against the level state it observed: the
    /// memtable's contribution is snapshotted immediately (cheap —
    /// refcounted key/value handles), and every block of every
    /// overlapping table joins the batch's shared candidate arena in
    /// table-priority order, so scan fetches dedup against the batch's
    /// point lookups and ride the same (possibly pooled) fetch list.
    /// Unbounded scans (`end = None`) stage the full overlapping block
    /// range regardless of `limit` — O(range), not O(limit); callers
    /// wanting cheap bounded scans should bound `end`.
    fn stage_scan(
        &self,
        inner: &Inner,
        start: Key,
        end: Option<Key>,
        limit: usize,
        cands: &mut Vec<(Arc<SstReader>, usize)>,
    ) -> Slot {
        self.stats.scans.fetch_add(1, Ordering::Relaxed);
        let empty_range = end.as_ref().is_some_and(|e| e <= &start);
        if limit == 0 || empty_range {
            return Slot::Done(Ok(OpOutcome::Range(Vec::new())));
        }
        let base: Vec<(Key, Entry)> = inner
            .memtable
            .scan_range(&start, end.as_ref())
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect();
        let cand_start = cands.len();
        for level in &inner.levels {
            for table in level {
                if let Some((first, count)) = table.locate_range(&start, end.as_ref()) {
                    for j in 0..count {
                        cands.push((table.clone(), first + j));
                    }
                }
            }
        }
        self.stats
            .batch_scan_blocks_read
            .fetch_add((cands.len() - cand_start) as u64, Ordering::Relaxed);
        Slot::Scan {
            start,
            end,
            limit,
            base,
            cand_start,
            cand_end: cands.len(),
        }
    }

    /// Ordered scan of all live keys starting with `prefix`, merging
    /// the memtable and every level with newest-wins semantics.
    /// Tombstones shadow older versions and are dropped from the
    /// result. SSTables whose `[min_key, max_key]` range cannot contain
    /// the prefix are skipped without touching disk.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Key, Value)>> {
        let inner = self.inner.read();
        // Highest priority first: memtable, then L0 newest-first, then
        // deeper levels. `or_insert` keeps the freshest version.
        let mut merged: std::collections::BTreeMap<Key, Entry> = std::collections::BTreeMap::new();
        for (k, e) in inner.memtable.scan_prefix(prefix) {
            merged.entry(k.clone()).or_insert_with(|| e.clone());
        }
        for level in &inner.levels {
            for table in level {
                let overlaps = table.meta.max_key.as_slice() >= prefix
                    && match prefix_successor(prefix) {
                        Some(ref up) => table.meta.min_key.as_slice() < up.as_slice(),
                        None => true,
                    };
                if !overlaps {
                    continue;
                }
                for (k, e) in table.scan()? {
                    if k.as_slice().starts_with(prefix) {
                        merged.entry(k).or_insert(e);
                    }
                }
            }
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, e)| match e {
                Entry::Put(v) => Some((k, v)),
                Entry::Tombstone => None,
            })
            .collect())
    }

    /// Ordered scan of live keys in `start <= key < end` (`end = None`
    /// = unbounded), at most `limit` entries — one `EngineOp::Scan`
    /// through the batched submission/completion path, so the staged
    /// blocks ride the (possibly pooled) deduped fetch list.
    pub fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        match LsmDb::apply_batch(
            self,
            vec![EngineOp::Scan {
                start: start.clone(),
                end: end.cloned(),
                limit,
            }],
        )
        .pop()
        {
            Some(Ok(OpOutcome::Range(rows))) => Ok(rows),
            Some(Err(e)) => Err(e),
            other => Err(Error::Internal(format!("scan batch resolved to {other:?}"))),
        }
    }

    /// Forces the memtable to disk (no-op when empty).
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.memtable.is_empty() {
            return Ok(());
        }
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        // Timed apart from the compaction it may trigger: the histogram
        // answers "how long is a memtable flush", `lsm_compaction_ns`
        // answers the rest.
        let t0 = tb_obs::start();
        let flushed = self.flush_locked_inner(inner);
        tb_obs::histo!("lsm_flush_ns").record_since(t0);
        flushed?;
        self.maybe_compact(inner)
    }

    fn flush_locked_inner(&self, inner: &mut Inner) -> Result<()> {
        let id = self.next_file_id.fetch_add(1, Ordering::SeqCst);
        let path = self.config.dir.join(format!("{id:010}.sst"));
        // The memtable is copied, not taken: if the SSTable write fails
        // partway, the entries must stay readable from memory (the WAL
        // still holds them, but reads never consult the WAL). Cheap:
        // keys and values are refcounted buffers, so this clones
        // handles, not bytes.
        let entries: Vec<(Key, Entry)> = inner
            .memtable
            .iter()
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect();
        let (meta, build) =
            write_sstable_with_stats(id, &path, entries.into_iter(), &self.config.sst)?;
        let reader = match SstReader::open_shared(meta, self.stats.decode.clone()) {
            Ok(r) => r,
            Err(e) => {
                let _ = std::fs::remove_file(&path);
                return Err(e);
            }
        };
        self.stats.add_build(&build);
        // Newest L0 table goes first.
        inner.levels[0].insert(0, Arc::new(reader));
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.write_manifest(inner)?;
        // Only now — table durable and installed in the manifest — can
        // the memtable and WAL drop their copies. (If the manifest
        // write failed above, memtable and L0 briefly hold duplicates;
        // reads stay correct and the next flush retries the manifest.)
        inner.memtable = Memtable::new();
        inner.wal.reset()
    }

    fn maybe_compact(&self, inner: &mut Inner) -> Result<()> {
        // L0 → L1 when too many overlapping tables accumulate.
        if inner.levels[0].len() > self.config.l0_compaction_trigger {
            self.compact_into(inner, 0)?;
        }
        // Size-triggered push-downs.
        for level in 1..self.config.max_level {
            let sizes: Vec<u64> = inner.levels[level]
                .iter()
                .map(|t| t.meta.file_size)
                .collect();
            if level_bytes(&sizes) > level_limit(level, self.config.level_base_bytes) {
                self.compact_into(inner, level)?;
            }
        }
        Ok(())
    }

    /// Merges level `src` and `src + 1` into `src + 1`.
    fn compact_into(&self, inner: &mut Inner, src: usize) -> Result<()> {
        let t0 = tb_obs::start();
        let result = self.compact_into_inner(inner, src);
        tb_obs::histo!("lsm_compaction_ns").record_since(t0);
        result
    }

    fn compact_into_inner(&self, inner: &mut Inner, src: usize) -> Result<()> {
        let dst = src + 1;
        let mut runs: Vec<Vec<(Key, Entry)>> = Vec::new();
        // L0 tables are newest-first already; deeper levels hold one run.
        for table in &inner.levels[src] {
            runs.push(table.scan()?);
        }
        for table in &inner.levels[dst] {
            runs.push(table.scan()?);
        }
        // Tombstones can drop only when nothing lives below dst.
        let nothing_below = inner.levels[dst + 1..].iter().all(|l| l.is_empty());
        let merged = merge_runs(runs, nothing_below);

        let obsolete: Vec<PathBuf> = inner.levels[src]
            .iter()
            .chain(inner.levels[dst].iter())
            .map(|t| t.meta.path.clone())
            .collect();

        // Write the merged table *before* dropping the inputs from the
        // in-memory tree: a failed write must leave the levels serving
        // exactly what they served before.
        let new_table = if merged.is_empty() {
            None
        } else {
            let id = self.next_file_id.fetch_add(1, Ordering::SeqCst);
            let path = self.config.dir.join(format!("{id:010}.sst"));
            // Compaction re-samples the merged input and re-encodes:
            // the output table trains its own dictionary.
            let (meta, build) =
                write_sstable_with_stats(id, &path, merged.into_iter(), &self.config.sst)?;
            match SstReader::open_shared(meta, self.stats.decode.clone()) {
                Ok(r) => {
                    self.stats.add_build(&build);
                    Some(Arc::new(r))
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&path);
                    return Err(e);
                }
            }
        };
        inner.levels[src].clear();
        inner.levels[dst].clear();
        if let Some(table) = new_table {
            inner.levels[dst].push(table);
        }
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.write_manifest(inner)?;
        // Input tables leave the disk only after the manifest stopped
        // referencing them; a crash in between just leaks files, which
        // the orphan sweep in `open` reclaims.
        fault::hit("compact.remove_obsolete")?;
        for path in obsolete {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    fn write_manifest(&self, inner: &Inner) -> Result<()> {
        let manifest_path = self.config.dir.join("MANIFEST");
        let mut body = Vec::new();
        // LSN high-water mark first: the WAL resets after a flush, so
        // the manifest must carry the sequence across that boundary for
        // recovery to resume numbering (and for replication watermarks
        // to stay comparable across restarts).
        write_varint(&mut body, self.last_lsn.load(Ordering::Acquire));
        let tables: Vec<(usize, &SstMeta)> = inner
            .levels
            .iter()
            .enumerate()
            .flat_map(|(lvl, tables)| tables.iter().map(move |t| (lvl, &t.meta)))
            .collect();
        write_varint(&mut body, tables.len() as u64);
        for (lvl, meta) in tables {
            write_varint(&mut body, lvl as u64);
            write_varint(&mut body, meta.id);
            write_varint(&mut body, meta.entry_count as u64);
            write_varint(&mut body, meta.file_size);
            write_varint(&mut body, meta.min_key.len() as u64);
            body.extend_from_slice(meta.min_key.as_slice());
            write_varint(&mut body, meta.max_key.len() as u64);
            body.extend_from_slice(meta.max_key.as_slice());
        }
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        let tmp = manifest_path.with_extension("tmp");
        let written = (|| -> Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            fault::write_all("manifest.write", &mut f, &out)?;
            fault::hit("manifest.sync")?;
            f.sync_all()?;
            Ok(())
        })();
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        fault::hit("manifest.rename")?;
        std::fs::rename(&tmp, &manifest_path)?;
        sync_parent_dir(&manifest_path, "manifest.dir_sync")
    }

    /// Total bytes in SSTables plus the live memtable.
    pub fn disk_bytes(&self) -> u64 {
        let inner = self.inner.read();
        let sst: u64 = inner
            .levels
            .iter()
            .flatten()
            .map(|t| t.meta.file_size)
            .sum();
        sst + inner.memtable.approx_bytes() as u64
    }

    /// Tables per level (diagnostics).
    pub fn level_table_counts(&self) -> Vec<usize> {
        self.inner.read().levels.iter().map(|l| l.len()).collect()
    }

    /// Directory this database lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

impl KvEngine for LsmDb {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        LsmDb::get(self, key)
    }

    fn put(&self, key: Key, value: Value) -> Result<()> {
        LsmDb::put(self, key, value)
    }

    fn delete(&self, key: &Key) -> Result<()> {
        LsmDb::delete(self, key.clone())
    }

    fn cas(&self, key: Key, expected: Option<&Value>, new: Value) -> Result<()> {
        LsmDb::cas(self, key, expected, new)
    }

    fn apply_batch(&self, ops: Vec<EngineOp>) -> Vec<Result<OpOutcome>> {
        LsmDb::apply_batch(self, ops)
    }

    /// Batched lookups ride the overlapped submission/completion path:
    /// one tree-lock pass, block reads deduped across the keys.
    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        match LsmDb::apply_batch(self, vec![EngineOp::MultiGet(keys.to_vec())]).pop() {
            Some(Ok(OpOutcome::Values(values))) => Ok(values),
            Some(Err(e)) => Err(e),
            other => Err(Error::Internal(format!(
                "multi_get batch resolved to {other:?}"
            ))),
        }
    }

    /// Batched writes apply under one tree-lock acquisition instead of
    /// one per pair.
    fn multi_put(&self, pairs: Vec<(Key, Value)>) -> Result<()> {
        match LsmDb::apply_batch(self, vec![EngineOp::MultiPut(pairs)]).pop() {
            Some(Ok(OpOutcome::Done(_))) => Ok(()),
            Some(Err(e)) => Err(e),
            other => Err(Error::Internal(format!(
                "multi_put batch resolved to {other:?}"
            ))),
        }
    }

    /// Ordered range scan through the batched read path.
    fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
        LsmDb::scan(self, start, end, limit)
    }

    fn batch_read_stats(&self) -> BatchReadStats {
        BatchReadStats {
            blocks_read: self.stats.batch_blocks_read.load(Ordering::Relaxed),
            block_dedup_hits: self.stats.batch_block_dedup_hits.load(Ordering::Relaxed),
            memtable_hits: self.stats.batch_memtable_hits.load(Ordering::Relaxed),
            parallel_fetches: self.stats.batch_parallel_fetches.load(Ordering::Relaxed),
            read_pool_queue_depth: self.stats.read_pool_queue_depth.load(Ordering::Relaxed),
            read_pool_depth: self.read_pool.as_ref().map_or(0, ReadPool::queue_depth),
            scan_blocks_read: self.stats.batch_scan_blocks_read.load(Ordering::Relaxed),
            scans: self.stats.scans.load(Ordering::Relaxed),
            blocks_compressed: self.stats.blocks_compressed.load(Ordering::Relaxed),
            compressed_bytes_written: self.stats.compressed_bytes_written.load(Ordering::Relaxed),
            uncompressed_bytes_written: self
                .stats
                .uncompressed_bytes_written
                .load(Ordering::Relaxed),
            blocks_decompressed: self
                .stats
                .decode
                .blocks_decompressed
                .load(Ordering::Relaxed),
            block_decode_errors: self
                .stats
                .decode
                .block_decode_errors
                .load(Ordering::Relaxed),
        }
    }

    fn resident_bytes(&self) -> u64 {
        self.disk_bytes()
    }

    fn applied_lsn(&self) -> Lsn {
        Lsn(self.last_lsn.load(Ordering::Acquire))
    }

    fn label(&self) -> String {
        "lsm".into()
    }

    fn sync(&self) -> Result<()> {
        let t0 = tb_obs::start();
        let synced = self.inner.write().wal.sync();
        tb_obs::histo!("lsm_wal_sync_ns").record_since(t0);
        synced
    }
}

/// Reads `(level, meta)` rows plus the persisted LSN high-water mark
/// from a manifest file; absent file = empty DB at LSN 0.
fn read_manifest(path: &Path) -> Result<(Vec<(usize, SstMeta)>, u64)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((vec![], 0)),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 8 {
        return Err(Error::Corruption("manifest truncated".into()));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MANIFEST_MAGIC {
        return Err(Error::Corruption("bad manifest magic".into()));
    }
    let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let body = &bytes[8..];
    if crc32(body) != stored_crc {
        return Err(Error::Corruption("manifest crc mismatch".into()));
    }
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut pos = 0usize;
    let max_lsn = read_varint(body, &mut pos)?;
    let count = read_varint(body, &mut pos)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let level = read_varint(body, &mut pos)? as usize;
        let id = read_varint(body, &mut pos)?;
        let entry_count = read_varint(body, &mut pos)? as u32;
        let file_size = read_varint(body, &mut pos)?;
        let min_len = read_varint(body, &mut pos)? as usize;
        if pos + min_len > body.len() {
            return Err(Error::Corruption("manifest key truncated".into()));
        }
        let min_key = Key::copy_from(&body[pos..pos + min_len]);
        pos += min_len;
        let max_len = read_varint(body, &mut pos)? as usize;
        if pos + max_len > body.len() {
            return Err(Error::Corruption("manifest key truncated".into()));
        }
        let max_key = Key::copy_from(&body[pos..pos + max_len]);
        pos += max_len;
        out.push((
            level,
            SstMeta {
                id,
                path: dir.join(format!("{id:010}.sst")),
                min_key,
                max_key,
                entry_count,
                file_size,
            },
        ));
    }
    Ok((out, max_lsn))
}

fn encode_wal_record(key: &Key, entry: &Entry) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 16);
    match entry {
        Entry::Put(v) => {
            out.push(0);
            write_varint(&mut out, key.len() as u64);
            out.extend_from_slice(key.as_slice());
            out.extend_from_slice(v.as_slice());
        }
        Entry::Tombstone => {
            out.push(1);
            write_varint(&mut out, key.len() as u64);
            out.extend_from_slice(key.as_slice());
        }
    }
    out
}

/// Smallest byte string strictly greater than every key starting with
/// `prefix`, or `None` when no such bound exists (empty prefix or all
/// `0xff` bytes).
fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut up = prefix.to_vec();
    while let Some(&last) = up.last() {
        if last == 0xff {
            up.pop();
        } else {
            *up.last_mut().expect("non-empty") = last + 1;
            return Some(up);
        }
    }
    None
}

fn decode_wal_record(rec: &[u8]) -> Result<(Key, Entry)> {
    let (&flag, rest) = rec
        .split_first()
        .ok_or_else(|| Error::Corruption("empty WAL record".into()))?;
    let mut pos = 0usize;
    let klen = read_varint(rest, &mut pos)? as usize;
    if pos + klen > rest.len() {
        return Err(Error::Corruption("WAL key overflows record".into()));
    }
    let key = Key::copy_from(&rest[pos..pos + klen]);
    let value_bytes = &rest[pos + klen..];
    match flag {
        0 => Ok((key, Entry::Put(Value::copy_from(value_bytes)))),
        1 => Ok((key, Entry::Tombstone)),
        other => Err(Error::Corruption(format!("bad WAL flag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> tb_common::TestDir {
        tb_common::test_dir(&format!("tb-lsm-{name}"))
    }

    fn k(i: usize) -> Key {
        Key::from(format!("key-{i:06}"))
    }

    fn v(i: usize, tag: &str) -> Value {
        Value::from(format!("value-{tag}-{i}-{}", "p".repeat(i % 37)))
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let dir = tmpdir("basic");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        db.put(k(1), v(1, "a")).unwrap();
        assert_eq!(db.get(&k(1)).unwrap(), Some(v(1, "a")));
        db.delete(k(1)).unwrap();
        assert_eq!(db.get(&k(1)).unwrap(), None);
        assert_eq!(db.get(&k(2)).unwrap(), None);
    }

    #[test]
    fn survives_flush_and_compaction() {
        let dir = tmpdir("compact");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        let n = 2000;
        for i in 0..n {
            db.put(k(i), v(i, "gen1")).unwrap();
        }
        // Overwrite half, delete a quarter.
        for i in 0..n / 2 {
            db.put(k(i), v(i, "gen2")).unwrap();
        }
        for i in (0..n).step_by(4) {
            db.delete(k(i)).unwrap();
        }
        db.flush().unwrap();
        assert!(db.stats.flushes.load(Ordering::Relaxed) > 0);
        assert!(db.stats.compactions.load(Ordering::Relaxed) > 0);

        for i in 0..n {
            let got = db.get(&k(i)).unwrap();
            if i % 4 == 0 {
                assert_eq!(got, None, "key {i} should be deleted");
            } else if i < n / 2 {
                assert_eq!(got, Some(v(i, "gen2")), "key {i} should be gen2");
            } else {
                assert_eq!(got, Some(v(i, "gen1")), "key {i} should be gen1");
            }
        }
    }

    #[test]
    fn recovery_from_wal_without_flush() {
        let dir = tmpdir("walrec");
        {
            let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
            db.put(k(1), v(1, "x")).unwrap();
            db.put(k(2), v(2, "x")).unwrap();
            db.delete(k(1)).unwrap();
            // Drop without flush: WAL is the only durable copy.
        }
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        assert_eq!(db.get(&k(1)).unwrap(), None);
        assert_eq!(db.get(&k(2)).unwrap(), Some(v(2, "x")));
    }

    #[test]
    fn recovery_from_manifest_after_flush() {
        let dir = tmpdir("manifest");
        {
            let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
            for i in 0..500 {
                db.put(k(i), v(i, "m")).unwrap();
            }
            db.flush().unwrap();
        }
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        for i in 0..500 {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i, "m")), "key {i}");
        }
    }

    #[test]
    fn recovery_combines_manifest_and_wal() {
        let dir = tmpdir("mixed");
        {
            let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
            for i in 0..300 {
                db.put(k(i), v(i, "old")).unwrap();
            }
            db.flush().unwrap();
            // Post-flush writes live only in the WAL.
            for i in 0..50 {
                db.put(k(i), v(i, "new")).unwrap();
            }
        }
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        assert_eq!(db.get(&k(0)).unwrap(), Some(v(0, "new")));
        assert_eq!(db.get(&k(100)).unwrap(), Some(v(100, "old")));
    }

    #[test]
    fn applied_lsn_is_monotone_and_survives_reopen() {
        let dir = tmpdir("lsn");
        {
            let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
            assert_eq!(KvEngine::applied_lsn(&db), Lsn::NONE, "fresh DB");
            for i in 0..10 {
                db.put(k(i), v(i, "l")).unwrap();
            }
            db.delete(k(3)).unwrap();
            assert_eq!(KvEngine::applied_lsn(&db), Lsn(11));
            // Flush resets the WAL; the manifest must carry the mark.
            db.flush().unwrap();
            assert_eq!(KvEngine::applied_lsn(&db), Lsn(11));
            // Post-flush writes live only in the WAL.
            db.put(k(50), v(50, "l")).unwrap();
            assert_eq!(KvEngine::applied_lsn(&db), Lsn(12));
        }
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        assert_eq!(
            KvEngine::applied_lsn(&db),
            Lsn(12),
            "recovery resumes the sequence from max(manifest, WAL tail)"
        );
        // The next write continues the sequence, never reuses it.
        let outcome = db.apply_batch(vec![EngineOp::Put(k(60), v(60, "l"))]);
        assert_eq!(outcome[0], Ok(OpOutcome::Done(Lsn(13))));
    }

    #[test]
    fn tombstones_dropped_at_bottom() {
        let dir = tmpdir("tomb");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        for i in 0..1000 {
            db.put(k(i), v(i, "t")).unwrap();
        }
        for i in 0..1000 {
            db.delete(k(i)).unwrap();
        }
        db.flush().unwrap();
        // Force compaction all the way down by flushing repeatedly.
        for round in 0..6 {
            db.put(Key::from(format!("pad-{round}")), v(round, "pad"))
                .unwrap();
            db.flush().unwrap();
        }
        for i in 0..1000 {
            assert_eq!(db.get(&k(i)).unwrap(), None);
        }
    }

    #[test]
    fn overwrites_visible_across_flush_boundary() {
        let dir = tmpdir("over");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        db.put(k(7), v(7, "first")).unwrap();
        db.flush().unwrap();
        db.put(k(7), v(7, "second")).unwrap();
        assert_eq!(db.get(&k(7)).unwrap(), Some(v(7, "second")));
        db.flush().unwrap();
        assert_eq!(db.get(&k(7)).unwrap(), Some(v(7, "second")));
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = tmpdir("conc");
        let db = Arc::new(LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap());
        for i in 0..200 {
            db.put(k(i), v(i, "c")).unwrap();
        }
        let mut handles = vec![];
        for t in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let _ = db.get(&k((i + t * 13) % 200)).unwrap();
                }
            }));
        }
        for i in 200..400 {
            db.put(k(i), v(i, "c")).unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.get(&k(399)).unwrap(), Some(v(399, "c")));
    }

    #[test]
    fn scan_prefix_merges_all_tiers() {
        let dir = tmpdir("scan");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        // Old versions land in SSTables...
        for i in 0..50 {
            db.put(Key::from(format!("user:{i:03}")), v(i, "old"))
                .unwrap();
        }
        for i in 0..50 {
            db.put(Key::from(format!("item:{i:03}")), v(i, "x"))
                .unwrap();
        }
        db.flush().unwrap();
        // ...then fresher versions and a delete stay in the memtable.
        for i in 0..10 {
            db.put(Key::from(format!("user:{i:03}")), v(i, "new"))
                .unwrap();
        }
        db.delete(Key::from("user:020")).unwrap();

        let got = db.scan_prefix(b"user:").unwrap();
        assert_eq!(got.len(), 49, "50 users minus one tombstone");
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(got[0].1, v(0, "new"), "memtable version wins");
        assert_eq!(got[15].1, v(15, "old"), "unchanged keys from SSTable");
        assert!(!got.iter().any(|(k, _)| k == &Key::from("user:020")));

        // Prefix isolation.
        assert_eq!(db.scan_prefix(b"item:").unwrap().len(), 50);
        assert_eq!(db.scan_prefix(b"nope:").unwrap().len(), 0);
        // Empty prefix = full scan.
        assert_eq!(db.scan_prefix(b"").unwrap().len(), 99);
    }

    #[test]
    fn scan_prefix_survives_compaction_and_reopen() {
        let dir = tmpdir("scanreopen");
        {
            let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
            for i in 0..300 {
                db.put(Key::from(format!("p:{i:04}")), v(i, "a")).unwrap();
            }
            db.delete(Key::from("p:0100")).unwrap();
            KvEngine::sync(&db).unwrap();
        }
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        let got = db.scan_prefix(b"p:").unwrap();
        assert_eq!(got.len(), 299);
    }

    #[test]
    fn prefix_successor_edge_cases() {
        assert_eq!(prefix_successor(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_successor(b"a\xff"), Some(b"b".to_vec()));
        assert_eq!(prefix_successor(b"\xff\xff"), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn failed_flush_keeps_memtable_readable() {
        use tb_common::fault::{self, FaultMode};
        let _g = crate::fault_test_gate();
        let dir = tmpdir("flushfail");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        for i in 0..40 {
            db.put(k(i), v(i, "pre")).unwrap();
        }
        fault::arm_scoped("sst.sync", 1, FaultMode::Error);
        let err = db.flush().unwrap_err();
        fault::reset();
        assert!(matches!(err, Error::FaultInjected(_)), "{err}");
        // The entries must still be served from memory — a failed flush
        // that empties the memtable silently loses acknowledged writes.
        for i in 0..40 {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i, "pre")), "key {i}");
        }
        // And the flush succeeds when retried.
        db.flush().unwrap();
        for i in 0..40 {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i, "pre")), "key {i}");
        }
    }

    #[test]
    fn failed_compaction_write_leaves_levels_serving() {
        use tb_common::fault::{self, FaultMode};
        let _g = crate::fault_test_gate();
        let dir = tmpdir("compactfail");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        // Two flushes fill L0 up to the trigger without compacting.
        for round in 0..2 {
            for i in 0..30 {
                db.put(k(i), v(i, &format!("r{round}"))).unwrap();
            }
            db.flush().unwrap();
        }
        assert_eq!(db.stats.compactions.load(Ordering::Relaxed), 0);
        // The third flush trips L0→L1 compaction, whose table write fails.
        for i in 0..30 {
            db.put(k(i), v(i, "r2")).unwrap();
        }
        fault::arm_scoped("sst.write.data", 2, FaultMode::Error);
        let result = db.flush();
        fault::reset();
        assert!(
            matches!(result, Err(Error::FaultInjected(_))),
            "compaction table write was injected to fail: {result:?}"
        );
        // The inputs must still serve reads — clearing the levels before
        // the merged table exists would black-hole every flushed key.
        for i in 0..30 {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i, "r2")), "key {i}");
        }
        // Reopen agrees (WAL + manifest still cover everything).
        drop(db);
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        for i in 0..30 {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i, "r2")), "key {i}");
        }
    }

    #[test]
    fn open_sweeps_orphan_tables_and_tmp_files() {
        let dir = tmpdir("orphans");
        {
            let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
            for i in 0..200 {
                db.put(k(i), v(i, "o")).unwrap();
            }
            db.flush().unwrap();
        }
        // Plant crash leftovers: an unreferenced table and a torn tmp.
        std::fs::write(dir.join("4242424242.sst"), b"orphaned table").unwrap();
        std::fs::write(dir.join("4242424242.tmp"), b"torn tmp").unwrap();
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        assert!(!dir.join("4242424242.sst").exists(), "orphan .sst swept");
        assert!(!dir.join("4242424242.tmp").exists(), "orphan .tmp swept");
        for i in 0..200 {
            assert_eq!(db.get(&k(i)).unwrap(), Some(v(i, "o")), "key {i}");
        }
    }

    #[test]
    fn apply_batch_reads_each_block_once_per_batch() {
        // Big blocks + small values: many keys share one 4 KiB block,
        // so a multi-key batch over a flushed (disk-resident) working
        // set must collapse its staged reads.
        let dir = tmpdir("batchdedup");
        let db = LsmDb::open(LsmConfig::new(dir.path())).unwrap();
        let n = 512;
        for i in 0..n {
            db.put(k(i), v(i, "d")).unwrap();
        }
        db.flush().unwrap();
        let blocks_in_l0: u64 = db.inner.read().levels[0][0].meta.file_size / 4096 + 2;

        let keys: Vec<Key> = (0..n).map(k).collect();
        let before = KvEngine::batch_read_stats(&db);
        let outcomes = db.apply_batch(vec![EngineOp::MultiGet(keys.clone())]);
        let after = KvEngine::batch_read_stats(&db);
        match &outcomes[0] {
            Ok(OpOutcome::Values(values)) => {
                for (i, got) in values.iter().enumerate() {
                    assert_eq!(got.as_ref(), Some(&v(i, "d")), "key {i}");
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let read = after.blocks_read - before.blocks_read;
        let dedup = after.block_dedup_hits - before.block_dedup_hits;
        // Each needed block fetched at most once for the whole batch:
        // far fewer reads than keys, and the dedup counter accounts for
        // every saved fetch.
        assert!(
            read <= blocks_in_l0,
            "batch read {read} blocks; table only has ~{blocks_in_l0}"
        );
        assert!(
            read < n as u64 / 4,
            "block reads did not dedup: {read} reads for {n} keys"
        );
        assert_eq!(dedup, n as u64 - read, "every other reference deduped");

        // Same batch again: same dedup behavior (counters are cumulative).
        db.apply_batch(vec![EngineOp::MultiGet(keys)]);
        let again = KvEngine::batch_read_stats(&db);
        assert_eq!(again.blocks_read - after.blocks_read, read);
    }

    #[test]
    fn apply_batch_mixed_ops_in_submission_order() {
        let dir = tmpdir("batchmix");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        // Seed an SSTable-resident old value.
        db.put(k(1), v(1, "old")).unwrap();
        db.flush().unwrap();
        let outcomes = db.apply_batch(vec![
            EngineOp::Get(k(1)),              // old value, staged from disk
            EngineOp::Put(k(1), v(1, "new")), // overwrites in-batch
            EngineOp::Get(k(1)),              // sees the in-batch put
            EngineOp::Cas {
                key: k(1),
                expected: Some(v(1, "new")),
                new: v(1, "cas"),
            },
            EngineOp::Cas {
                key: k(1),
                expected: Some(v(1, "new")), // stale: the batch's own CAS won
                new: v(1, "never"),
            },
            EngineOp::Delete(k(1)),
            EngineOp::Get(k(1)),
            EngineOp::MultiGet(vec![k(1), k(99)]),
        ]);
        assert_eq!(outcomes[0], Ok(OpOutcome::Value(Some(v(1, "old")))));
        // Write acks carry the engine's monotone LSN: the seed put was
        // 1, so the batch's writes sequence from 2.
        assert_eq!(outcomes[1], Ok(OpOutcome::Done(Lsn(2))));
        assert_eq!(outcomes[2], Ok(OpOutcome::Value(Some(v(1, "new")))));
        assert_eq!(outcomes[3], Ok(OpOutcome::Done(Lsn(3))));
        assert_eq!(outcomes[4], Err(Error::CasMismatch));
        assert_eq!(outcomes[5], Ok(OpOutcome::Done(Lsn(4))));
        assert_eq!(outcomes[6], Ok(OpOutcome::Value(None)));
        assert_eq!(outcomes[7], Ok(OpOutcome::Values(vec![None, None])));
        // The Get staged *before* the Put still answered from the level
        // snapshot — but the final state is the delete.
        assert_eq!(db.get(&k(1)).unwrap(), None);
    }

    #[test]
    fn apply_batch_counts_memtable_hits() {
        let dir = tmpdir("batchmem");
        let db = LsmDb::open(LsmConfig::new(dir.path())).unwrap();
        for i in 0..32 {
            db.put(k(i), v(i, "m")).unwrap(); // stays in the memtable
        }
        let keys: Vec<Key> = (0..32).map(k).collect();
        let outcomes = db.apply_batch(vec![EngineOp::MultiGet(keys)]);
        assert!(matches!(outcomes[0], Ok(OpOutcome::Values(_))));
        let stats = KvEngine::batch_read_stats(&db);
        assert_eq!(stats.memtable_hits, 32);
        assert_eq!(stats.blocks_read, 0, "memtable hits stage no IO");
    }

    #[test]
    fn apply_batch_block_read_fault_fails_only_staged_reads() {
        use tb_common::fault::{self, FaultMode};
        let _g = crate::fault_test_gate();
        let dir = tmpdir("batchfault");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        for i in 0..64 {
            db.put(k(i), v(i, "f")).unwrap();
        }
        db.flush().unwrap();
        fault::arm_scoped("batch.block_read", 1, FaultMode::Error);
        let outcomes = db.apply_batch(vec![
            EngineOp::Put(k(200), v(200, "w")), // write is unaffected
            EngineOp::Get(k(1)),                // staged read hits the fault
        ]);
        fault::reset();
        assert!(matches!(outcomes[0], Ok(OpOutcome::Done(_))));
        assert!(
            matches!(outcomes[1], Err(Error::FaultInjected(_))),
            "staged read must surface the injected error: {:?}",
            outcomes[1]
        );
        // The write landed and the store still serves.
        assert_eq!(db.get(&k(200)).unwrap(), Some(v(200, "w")));
        assert_eq!(db.get(&k(1)).unwrap(), Some(v(1, "f")));
    }

    #[test]
    fn disk_bytes_grows_with_data() {
        let dir = tmpdir("bytes");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        let before = db.disk_bytes();
        for i in 0..500 {
            db.put(k(i), v(i, "b")).unwrap();
        }
        db.flush().unwrap();
        assert!(db.disk_bytes() > before);
    }

    /// Opens two stores over the same on-disk image — one inline, one
    /// pooled — so tests can assert the pooled completion pass is
    /// observationally identical to the inline one.
    fn inline_and_pooled(name: &str, n: usize) -> (tb_common::TestDir, LsmDb, LsmDb) {
        inline_and_pooled_codec(name, n, crate::sstable::BlockCodec::None)
    }

    fn inline_and_pooled_codec(
        name: &str,
        n: usize,
        codec: crate::sstable::BlockCodec,
    ) -> (tb_common::TestDir, LsmDb, LsmDb) {
        let dir = tmpdir(name);
        let mut config = LsmConfig::small_for_tests(dir.path());
        config.sst.codec = codec;
        {
            let db = LsmDb::open(config.clone()).unwrap();
            for i in 0..n {
                db.put(k(i), v(i, "p")).unwrap();
            }
            db.flush().unwrap();
        }
        let inline = LsmDb::open(config.clone()).unwrap();
        config.read_pool_threads = 2;
        // Second handle over the same dir: reads only (no writes below),
        // so the duplicate WAL handle never comes into play.
        let pooled = LsmDb::open(config).unwrap();
        assert_eq!(inline.read_pool_threads(), 0);
        assert_eq!(pooled.read_pool_threads(), 2);
        (dir, inline, pooled)
    }

    #[test]
    fn pooled_completion_matches_inline_results_and_dedup() {
        let n = 600;
        let (_dir, inline, pooled) = inline_and_pooled("poolparity", n);
        let keys: Vec<Key> = (0..n).map(k).collect();
        let a = inline.apply_batch(vec![EngineOp::MultiGet(keys.clone())]);
        let b = pooled.apply_batch(vec![EngineOp::MultiGet(keys)]);
        assert_eq!(a, b, "pooled results diverged from inline");
        let sa = KvEngine::batch_read_stats(&inline);
        let sb = KvEngine::batch_read_stats(&pooled);
        // Same dedup: identical block fetch counts, overlapped IO only.
        assert_eq!(sa.blocks_read, sb.blocks_read);
        assert_eq!(sa.block_dedup_hits, sb.block_dedup_hits);
        assert_eq!(sa.parallel_fetches, 0, "inline path never uses the pool");
        assert_eq!(
            sb.parallel_fetches, sb.blocks_read,
            "every pooled fetch is counted"
        );
        assert!(
            sb.read_pool_queue_depth >= sb.blocks_read.min(2),
            "queue-depth high-water never observed: {sb:?}"
        );
    }

    #[test]
    fn pooled_block_read_fault_is_positionally_deterministic() {
        use tb_common::fault::{self, FaultMode};
        let _g = crate::fault_test_gate();
        let n = 400;
        let (_dir, inline, pooled) = inline_and_pooled("poolfault", n);
        let keys: Vec<Key> = (0..n).map(k).collect();
        // For every hit position the fault can land on, the inline and
        // pooled passes must fail the exact same completion slots.
        let clean = inline.apply_batch(vec![EngineOp::MultiGet(keys.clone())]);
        let total_fetches = KvEngine::batch_read_stats(&inline).blocks_read;
        assert!(total_fetches >= 2, "working set too small to be staged");
        for hit in 1..=total_fetches {
            let mut failed = Vec::new();
            for (which, db) in [(0, &inline), (1, &pooled)] {
                // One Get per key (instead of one MultiGet) so per-slot
                // error scoping is visible in the completions.
                fault::arm_scoped("batch.block_read", hit, FaultMode::Error);
                let per_key =
                    db.apply_batch(keys.iter().map(|key| EngineOp::Get(key.clone())).collect());
                fault::reset();
                let errs: Vec<usize> = per_key
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.is_err().then_some(i))
                    .collect();
                assert!(
                    !errs.is_empty(),
                    "hit {hit} never fired ({which}: fetches={total_fetches})"
                );
                for (i, r) in per_key.iter().enumerate() {
                    if let Ok(outcome) = r {
                        assert_eq!(
                            outcome,
                            &OpOutcome::Value(match &clean[0] {
                                Ok(OpOutcome::Values(vs)) => vs[i].clone(),
                                other => panic!("clean run failed: {other:?}"),
                            }),
                            "slot {i} answered differently under an unrelated fault"
                        );
                    }
                }
                failed.push(errs);
            }
            assert_eq!(
                failed[0], failed[1],
                "hit {hit}: pooled fault landed on different slots than inline"
            );
        }
    }

    #[test]
    fn scan_merges_all_tiers_with_bounds_and_limit() {
        let dir = tmpdir("scanrange");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        // Old versions land in SSTables...
        for i in 0..100 {
            db.put(k(i), v(i, "old")).unwrap();
        }
        db.flush().unwrap();
        // ...fresher versions and a delete stay in the memtable.
        for i in 10..20 {
            db.put(k(i), v(i, "new")).unwrap();
        }
        db.delete(k(15)).unwrap();

        let got = db.scan(&k(10), Some(&k(30)), 1000).unwrap();
        assert_eq!(got.len(), 19, "keys 10..30 minus one tombstone");
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(got[0], (k(10), v(10, "new")), "memtable version wins");
        assert!(
            !got.iter().any(|(key, _)| key == &k(15)),
            "tombstone masked"
        );
        assert_eq!(got.last().unwrap().0, k(29), "end is exclusive");
        assert!(
            got.contains(&(k(25), v(25, "old"))),
            "unchanged from SSTable"
        );

        // Limit truncates to the first live entries.
        assert_eq!(db.scan(&k(10), Some(&k(30)), 3).unwrap(), got[..3]);
        // Unbounded end runs to the tail; degenerate ranges are empty.
        assert_eq!(db.scan(&k(90), None, 1000).unwrap().len(), 10);
        assert_eq!(db.scan(&k(5), Some(&k(5)), 10).unwrap(), []);
        assert_eq!(db.scan(&k(30), Some(&k(10)), 10).unwrap(), []);
        assert_eq!(db.scan(&k(10), Some(&k(30)), 0).unwrap(), []);

        let stats = KvEngine::batch_read_stats(&db);
        assert!(stats.scans >= 6, "every scan counted: {stats:?}");
        assert!(stats.scan_blocks_read > 0, "flushed tables staged blocks");
    }

    #[test]
    fn scan_in_batch_observes_earlier_writes_in_submission_order() {
        let dir = tmpdir("scanbatch");
        let db = LsmDb::open(LsmConfig::small_for_tests(dir.path())).unwrap();
        for i in 0..8 {
            db.put(k(i), v(i, "s")).unwrap();
        }
        db.flush().unwrap();
        let scan = |limit| EngineOp::Scan {
            start: k(0),
            end: Some(k(8)),
            limit,
        };
        let outcomes = db.apply_batch(vec![
            scan(100), // level snapshot, before the batch's writes
            EngineOp::Put(k(2), v(2, "w")),
            EngineOp::Delete(k(3)),
            scan(100), // sees the in-batch put and delete
            scan(2),
        ]);
        let expect_pre: Vec<(Key, Value)> = (0..8).map(|i| (k(i), v(i, "s"))).collect();
        assert_eq!(outcomes[0], Ok(OpOutcome::Range(expect_pre)));
        let expect_post: Vec<(Key, Value)> = (0..8)
            .filter(|&i| i != 3)
            .map(|i| (k(i), if i == 2 { v(2, "w") } else { v(i, "s") }))
            .collect();
        assert_eq!(outcomes[3], Ok(OpOutcome::Range(expect_post.clone())));
        assert_eq!(outcomes[4], Ok(OpOutcome::Range(expect_post[..2].to_vec())));
    }

    #[test]
    fn scan_block_fetch_fault_fails_only_the_scan_slot() {
        use tb_common::fault::{self, FaultMode};
        let _g = crate::fault_test_gate();
        let dir = tmpdir("scanfault");
        let db = LsmDb::open(LsmConfig::new(dir.path())).unwrap();
        for i in 0..256 {
            db.put(k(i), v(i, "f")).unwrap();
        }
        db.flush().unwrap();
        // One table, 4 KiB blocks: the scan's range and the distant get
        // live in different blocks, and the scan's block sorts first.
        fault::arm_scoped("batch.block_read", 1, FaultMode::Error);
        let outcomes = db.apply_batch(vec![
            EngineOp::Put(k(300), v(300, "w")),
            EngineOp::Scan {
                start: k(0),
                end: Some(k(4)),
                limit: 100,
            },
            EngineOp::Get(k(250)),
        ]);
        fault::reset();
        assert!(
            matches!(outcomes[0], Ok(OpOutcome::Done(_))),
            "write unaffected"
        );
        assert!(
            matches!(outcomes[1], Err(Error::FaultInjected(_))),
            "faulted scan fetch must fail the scan's slot: {:?}",
            outcomes[1]
        );
        assert_eq!(
            outcomes[2],
            Ok(OpOutcome::Value(Some(v(250, "f")))),
            "a failed scan fetch poisoned an unrelated slot"
        );
        // Clean retry serves the full range.
        assert_eq!(db.scan(&k(0), Some(&k(4)), 100).unwrap().len(), 4);
    }

    #[test]
    fn pooled_scan_matches_inline_and_reads_each_block_once() {
        let n = 600;
        let (_dir, inline, pooled) = inline_and_pooled("poolscan", n);
        let (start, end) = (k(0), k(n));
        for db in [&inline, &pooled] {
            let before = KvEngine::batch_read_stats(db);
            let rows = db.scan(&start, Some(&end), n + 10).unwrap();
            let after = KvEngine::batch_read_stats(db);
            assert_eq!(rows.len(), n);
            assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
            let read = after.blocks_read - before.blocks_read;
            let staged = after.scan_blocks_read - before.scan_blocks_read;
            assert_eq!(read, staged, "each staged scan block fetched exactly once");
            assert_eq!(after.scans - before.scans, 1);
        }
        assert_eq!(
            inline.scan(&start, Some(&end), n).unwrap(),
            pooled.scan(&start, Some(&end), n).unwrap(),
            "pooled scan diverged from inline"
        );

        // A point get batched with a scan over the same range stages
        // duplicate block refs — the dedup pass makes the get ride the
        // scan's fetches for free.
        let before = KvEngine::batch_read_stats(&inline);
        let outcomes = inline.apply_batch(vec![
            EngineOp::Scan {
                start: start.clone(),
                end: Some(end.clone()),
                limit: n,
            },
            EngineOp::Get(k(5)),
        ]);
        let after = KvEngine::batch_read_stats(&inline);
        assert!(matches!(&outcomes[0], Ok(OpOutcome::Range(rows)) if rows.len() == n));
        assert_eq!(outcomes[1], Ok(OpOutcome::Value(Some(v(5, "p")))));
        assert_eq!(
            after.blocks_read - before.blocks_read,
            after.scan_blocks_read - before.scan_blocks_read,
            "the point get added no fetches beyond the scan's blocks"
        );
        assert!(
            after.block_dedup_hits > before.block_dedup_hits,
            "the get's staged refs deduped against the scan's"
        );
    }

    #[test]
    fn compressed_store_roundtrips_compacts_and_recovers() {
        use crate::sstable::BlockCodec;
        for codec in [BlockCodec::Lz, BlockCodec::Dict, BlockCodec::Pbc] {
            let dir = tmpdir(&format!("codec-{}", codec.name()));
            let mut config = LsmConfig::small_for_tests(dir.path());
            config.sst.codec = codec;
            {
                let db = LsmDb::open(config.clone()).unwrap();
                for i in 0..800 {
                    db.put(k(i), v(i, "gen1")).unwrap();
                }
                for i in 0..400 {
                    db.put(k(i), v(i, "gen2")).unwrap();
                }
                for i in (0..800).step_by(5) {
                    db.delete(k(i)).unwrap();
                }
                db.flush().unwrap();
                assert!(
                    db.stats.compactions.load(Ordering::Relaxed) > 0,
                    "small thresholds should have compacted ({})",
                    codec.name()
                );
                // Flush + compaction re-encoded real data.
                let stats = KvEngine::batch_read_stats(&db);
                assert!(stats.blocks_compressed > 0, "codec {}", codec.name());
                assert!(
                    stats.compressed_bytes_written < stats.uncompressed_bytes_written,
                    "codec {} never shrank the data region: {stats:?}",
                    codec.name()
                );
                assert_eq!(stats.block_decode_errors, 0);
            }
            // Recovery opens the compressed tables from their own dict
            // payloads (no training samples available at open).
            let db = LsmDb::open(config).unwrap();
            for i in 0..800 {
                let got = db.get(&k(i)).unwrap();
                if i % 5 == 0 {
                    assert_eq!(got, None, "key {i} ({})", codec.name());
                } else if i < 400 {
                    assert_eq!(got, Some(v(i, "gen2")), "key {i} ({})", codec.name());
                } else {
                    assert_eq!(got, Some(v(i, "gen1")), "key {i} ({})", codec.name());
                }
            }
            let rows = db.scan(&k(0), None, 10_000).unwrap();
            assert_eq!(rows.len(), 800 - 160, "codec {}", codec.name());
        }
    }

    #[test]
    fn batch_reads_decompress_each_block_once_inline_and_pooled() {
        use crate::sstable::BlockCodec;
        let n = 600;
        let (_dir, inline, pooled) = inline_and_pooled_codec("codecdedup", n, BlockCodec::Dict);
        let keys: Vec<Key> = (0..n).map(k).collect();
        for db in [&inline, &pooled] {
            let decoded_before = db.stats.decode.blocks_decoded.load(Ordering::Relaxed);
            let before = KvEngine::batch_read_stats(db);
            let outcomes = db.apply_batch(vec![EngineOp::MultiGet(keys.clone())]);
            assert!(matches!(outcomes[0], Ok(OpOutcome::Values(_))));
            let decoded = db.stats.decode.blocks_decoded.load(Ordering::Relaxed) - decoded_before;
            let after = KvEngine::batch_read_stats(db);
            let read = after.blocks_read - before.blocks_read;
            // The acceptance contract: each needed block is fetched —
            // and therefore CRC-verified and decompressed — exactly
            // once per batch, inline and pooled alike.
            assert_eq!(
                decoded,
                read,
                "pool={}: {read} fetches decoded {decoded} frames",
                db.read_pool_threads()
            );
            assert!(read < n as u64 / 4, "block reads did not dedup");
            assert!(
                after.blocks_decompressed > before.blocks_decompressed,
                "dict tables should actually decompress"
            );
        }
        assert_eq!(
            inline.apply_batch(vec![EngineOp::MultiGet(keys.clone())]),
            pooled.apply_batch(vec![EngineOp::MultiGet(keys)]),
            "pooled results diverged from inline on a compressed store"
        );
    }

    #[test]
    fn block_decode_fault_is_positionally_deterministic() {
        use tb_common::fault::{self, FaultMode};
        let _g = crate::fault_test_gate();
        let n = 400;
        let (_dir, inline, pooled) =
            inline_and_pooled_codec("decodefault", n, crate::sstable::BlockCodec::Lz);
        let keys: Vec<Key> = (0..n).map(k).collect();
        let clean = inline.apply_batch(vec![EngineOp::MultiGet(keys.clone())]);
        let total_fetches = KvEngine::batch_read_stats(&inline).blocks_read;
        assert!(total_fetches >= 2, "working set too small to be staged");
        // For every block the decode fault can land on, inline and
        // pooled passes must fail the identical slot set with
        // Corruption, unrelated slots answer clean, and the store
        // stays usable afterward.
        for hit in 1..=total_fetches {
            let mut failed = Vec::new();
            for db in [&inline, &pooled] {
                fault::arm_scoped("sst.block_decode", hit, FaultMode::Error);
                let per_key =
                    db.apply_batch(keys.iter().map(|key| EngineOp::Get(key.clone())).collect());
                fault::reset();
                let errs: Vec<usize> = per_key
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.is_err().then_some(i))
                    .collect();
                assert!(
                    !errs.is_empty(),
                    "hit {hit} never fired (pool={}, fetches={total_fetches})",
                    db.read_pool_threads()
                );
                for (i, r) in per_key.iter().enumerate() {
                    match r {
                        Err(e) => assert!(
                            matches!(e, Error::Corruption(_)),
                            "decode fault must surface as Corruption, got {e:?}"
                        ),
                        Ok(outcome) => assert_eq!(
                            outcome,
                            &OpOutcome::Value(match &clean[0] {
                                Ok(OpOutcome::Values(vs)) => vs[i].clone(),
                                other => panic!("clean run failed: {other:?}"),
                            }),
                            "slot {i} answered differently under an unrelated decode fault"
                        ),
                    }
                }
                failed.push(errs);
            }
            assert_eq!(
                failed[0], failed[1],
                "hit {hit}: pooled decode fault landed on different slots than inline"
            );
        }
        // Store stays usable: the corruption was injected, not real.
        assert_eq!(
            inline.apply_batch(vec![EngineOp::MultiGet(keys)]),
            clean,
            "store must serve cleanly after decode faults"
        );
    }

    #[test]
    fn pooled_fetch_failure_scopes_to_slots_sharing_the_block() {
        use tb_common::fault::{self, FaultMode};
        let _g = crate::fault_test_gate();
        let n = 400;
        let (_dir, inline, pooled) = inline_and_pooled("poolscope", n);
        // Two keys far apart: distinct blocks, so a fault on the first
        // key's block must leave the second key's slot untouched.
        let probe = vec![EngineOp::Get(k(2)), EngineOp::Get(k(n - 2))];
        for db in [&inline, &pooled] {
            let clean = db.apply_batch(probe.clone());
            assert_eq!(clean[0], Ok(OpOutcome::Value(Some(v(2, "p")))));
            assert_eq!(clean[1], Ok(OpOutcome::Value(Some(v(n - 2, "p")))));
            fault::arm_scoped("batch.block_read", 1, FaultMode::Error);
            let outcomes = db.apply_batch(probe.clone());
            fault::reset();
            assert!(
                matches!(outcomes[0], Err(Error::FaultInjected(_))),
                "first staged fetch must carry the injected error: {:?}",
                outcomes[0]
            );
            assert_eq!(
                outcomes[1],
                Ok(OpOutcome::Value(Some(v(n - 2, "p")))),
                "a failed fetch poisoned an unrelated slot ({})",
                db.read_pool_threads()
            );
        }
    }
}
