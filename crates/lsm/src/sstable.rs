//! Block-based sorted string tables.
//!
//! File layout:
//!
//! ```text
//! [data block]* [filter block] [index block] [footer]
//! data entry  := flag u8 | varint(klen) | varint(vlen) | key | value
//! index entry := varint(klen) | first_key | off u64 | len u32
//! footer      := index_off u64 | index_len u32 | filter_off u64 |
//!                filter_len u32 | entry_count u32 | crc u32 | MAGIC u32
//! ```
//!
//! Readers keep the sparse index and bloom filter in memory and read one
//! data block per point lookup.

use crate::bloom::BloomFilter;
use crate::memtable::Entry;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use tb_common::{crc32, fault, read_varint, write_varint, Error, Key, Result, Value};

/// Fsyncs `path`'s parent directory so a just-renamed file survives a
/// crash of the directory metadata. `site` names the fault point.
pub(crate) fn sync_parent_dir(path: &Path, site: &'static str) -> Result<()> {
    fault::hit(site)?;
    if let Some(dir) = path.parent() {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

const MAGIC: u32 = 0x7b5d_57a1;
const FOOTER_LEN: usize = 8 + 4 + 8 + 4 + 4 + 4 + 4;
const FLAG_PUT: u8 = 0;
const FLAG_TOMBSTONE: u8 = 1;

/// Build-time options.
#[derive(Debug, Clone, Copy)]
pub struct SstConfig {
    /// Target uncompressed data-block size.
    pub block_size: usize,
    /// Bloom filter bits per key.
    pub bloom_bits_per_key: usize,
}

impl Default for SstConfig {
    fn default() -> Self {
        Self {
            block_size: 4096,
            bloom_bits_per_key: 10,
        }
    }
}

/// Metadata of one table, kept in the manifest and in memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstMeta {
    pub id: u64,
    pub path: PathBuf,
    pub min_key: Key,
    pub max_key: Key,
    pub entry_count: u32,
    pub file_size: u64,
}

/// Writes a sorted entry stream into an SSTable file.
pub fn write_sstable(
    id: u64,
    path: &Path,
    entries: impl Iterator<Item = (Key, Entry)>,
    config: &SstConfig,
) -> Result<SstMeta> {
    let mut data = Vec::new();
    let mut index = Vec::new();
    let mut filter_items: Vec<Key> = Vec::new();
    let mut block_start = 0usize;
    let mut block_first_key: Option<Key> = None;
    let mut min_key: Option<Key> = None;
    let mut max_key: Option<Key> = None;
    let mut entry_count = 0u32;
    let mut prev_key: Option<Key> = None;

    let finish_block = |index: &mut Vec<u8>, first: &Key, start: usize, end: usize| {
        write_varint(index, first.len() as u64);
        index.extend_from_slice(first.as_slice());
        index.extend_from_slice(&(start as u64).to_le_bytes());
        index.extend_from_slice(&((end - start) as u32).to_le_bytes());
    };

    for (key, entry) in entries {
        if let Some(prev) = &prev_key {
            if *prev >= key {
                return Err(Error::InvalidArgument(format!(
                    "entries must be strictly sorted: {prev:?} >= {key:?}"
                )));
            }
        }
        prev_key = Some(key.clone());
        if block_first_key.is_none() {
            block_first_key = Some(key.clone());
        }
        match &entry {
            Entry::Put(v) => {
                data.push(FLAG_PUT);
                write_varint(&mut data, key.len() as u64);
                write_varint(&mut data, v.len() as u64);
                data.extend_from_slice(key.as_slice());
                data.extend_from_slice(v.as_slice());
            }
            Entry::Tombstone => {
                data.push(FLAG_TOMBSTONE);
                write_varint(&mut data, key.len() as u64);
                write_varint(&mut data, 0);
                data.extend_from_slice(key.as_slice());
            }
        }
        filter_items.push(key.clone());
        min_key.get_or_insert_with(|| key.clone());
        max_key = Some(key.clone());
        entry_count += 1;

        if data.len() - block_start >= config.block_size {
            let first = block_first_key.take().expect("block has a first key");
            finish_block(&mut index, &first, block_start, data.len());
            block_start = data.len();
        }
    }
    if let Some(first) = block_first_key.take() {
        finish_block(&mut index, &first, block_start, data.len());
    }
    if entry_count == 0 {
        return Err(Error::InvalidArgument(
            "refusing to write empty sstable".into(),
        ));
    }

    let mut bloom = BloomFilter::new(filter_items.len(), config.bloom_bits_per_key);
    for k in &filter_items {
        bloom.insert(k.as_slice());
    }
    let filter = bloom.to_bytes();

    let filter_off = data.len() as u64;
    let index_off = filter_off + filter.len() as u64;

    let mut footer = Vec::with_capacity(FOOTER_LEN);
    footer.extend_from_slice(&index_off.to_le_bytes());
    footer.extend_from_slice(&(index.len() as u32).to_le_bytes());
    footer.extend_from_slice(&filter_off.to_le_bytes());
    footer.extend_from_slice(&(filter.len() as u32).to_le_bytes());
    footer.extend_from_slice(&entry_count.to_le_bytes());
    let crc = crc32(&footer);
    footer.extend_from_slice(&crc.to_le_bytes());
    footer.extend_from_slice(&MAGIC.to_le_bytes());

    let tmp = path.with_extension("tmp");
    let written = (|| -> Result<()> {
        let mut f = File::create(&tmp)?;
        fault::write_all("sst.write.data", &mut f, &data)?;
        fault::write_all("sst.write.filter", &mut f, &filter)?;
        fault::write_all("sst.write.index", &mut f, &index)?;
        fault::write_all("sst.write.footer", &mut f, &footer)?;
        fault::hit("sst.sync")?;
        f.sync_all()?;
        fault::hit("sst.rename")?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path, "sst.dir_sync")
    })();
    if let Err(e) = written {
        // Don't leave a half-written .tmp behind a transient error.
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }

    let file_size = (data.len() + filter.len() + index.len() + FOOTER_LEN) as u64;
    Ok(SstMeta {
        id,
        path: path.to_path_buf(),
        min_key: min_key.expect("non-empty"),
        max_key: max_key.expect("non-empty"),
        entry_count,
        file_size,
    })
}

struct IndexEntry {
    first_key: Key,
    offset: u64,
    len: u32,
}

/// One fetched data block, possibly a window into a larger coalesced
/// span read shared (refcounted, copy-free) with its neighbor blocks.
#[derive(Debug, Clone)]
pub struct BlockBuf {
    span: std::sync::Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl BlockBuf {
    /// Wraps a single-block buffer (the inline read path).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        let end = buf.len();
        Self {
            span: std::sync::Arc::new(buf),
            start: 0,
            end,
        }
    }

    /// The block's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.span[self.start..self.end]
    }
}

/// An open SSTable: sparse index + bloom filter in memory, data on disk.
///
/// Block reads are positional (`pread`-style), so any number of
/// threads — the tree-lock-free completion pass, the parallel
/// [`crate::read_pool::ReadPool`] workers — can fetch blocks from one
/// reader concurrently without serializing on a seek cursor.
pub struct SstReader {
    file: File,
    /// Platforms without a positional read serialize their shared
    /// seek+read here; unix/windows read positionally, lock-free.
    #[cfg(not(any(unix, windows)))]
    seek_lock: parking_lot::Mutex<()>,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    pub meta: SstMeta,
}

impl SstReader {
    /// Opens and validates a table written by [`write_sstable`].
    pub fn open(meta: SstMeta) -> Result<Self> {
        let mut file = File::open(&meta.path)?;
        let file_len = file.metadata()?.len();
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::Corruption("sstable shorter than footer".into()));
        }
        let mut footer = vec![0u8; FOOTER_LEN];
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        file.read_exact(&mut footer)?;
        let magic = u32::from_le_bytes(footer[FOOTER_LEN - 4..].try_into().unwrap());
        if magic != MAGIC {
            return Err(Error::Corruption("bad sstable magic".into()));
        }
        let stored_crc =
            u32::from_le_bytes(footer[FOOTER_LEN - 8..FOOTER_LEN - 4].try_into().unwrap());
        if crc32(&footer[..FOOTER_LEN - 8]) != stored_crc {
            return Err(Error::Corruption("sstable footer crc mismatch".into()));
        }
        let index_off = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let index_len = u32::from_le_bytes(footer[8..12].try_into().unwrap()) as usize;
        let filter_off = u64::from_le_bytes(footer[12..20].try_into().unwrap());
        let filter_len = u32::from_le_bytes(footer[20..24].try_into().unwrap()) as usize;

        if index_off + index_len as u64 + FOOTER_LEN as u64 != file_len {
            return Err(Error::Corruption(
                "sstable section offsets inconsistent".into(),
            ));
        }

        let mut filter_bytes = vec![0u8; filter_len];
        file.seek(SeekFrom::Start(filter_off))?;
        file.read_exact(&mut filter_bytes)?;
        let bloom = BloomFilter::from_bytes(&filter_bytes)
            .ok_or_else(|| Error::Corruption("bad bloom filter block".into()))?;

        let mut index_bytes = vec![0u8; index_len];
        file.seek(SeekFrom::Start(index_off))?;
        file.read_exact(&mut index_bytes)?;
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos < index_bytes.len() {
            let klen = read_varint(&index_bytes, &mut pos)? as usize;
            if pos + klen + 12 > index_bytes.len() {
                return Err(Error::Corruption("index entry truncated".into()));
            }
            let first_key = Key::copy_from(&index_bytes[pos..pos + klen]);
            pos += klen;
            let offset = u64::from_le_bytes(index_bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let len = u32::from_le_bytes(index_bytes[pos..pos + 4].try_into().unwrap());
            pos += 4;
            index.push(IndexEntry {
                first_key,
                offset,
                len,
            });
        }

        Ok(Self {
            file,
            #[cfg(not(any(unix, windows)))]
            seek_lock: parking_lot::Mutex::new(()),
            index,
            bloom,
            meta,
        })
    }

    /// Point lookup. `None` means "not in this table"; a tombstone is
    /// reported as `Some(Entry::Tombstone)` so callers stop searching
    /// older tables.
    pub fn get(&self, key: &Key) -> Result<Option<Entry>> {
        match self.locate(key) {
            Some(block_idx) => find_in_block(&self.read_block(block_idx)?, key),
            None => Ok(None),
        }
    }

    /// Index of the one data block that could hold `key`, or `None`
    /// when the key-range or bloom filter rules the table out — the
    /// in-memory half of a point lookup, split from the block IO so a
    /// batched read path can stage the IO and dedup it across keys.
    pub fn locate(&self, key: &Key) -> Option<usize> {
        if key < &self.meta.min_key || key > &self.meta.max_key {
            return None;
        }
        if !self.bloom.may_contain(key.as_slice()) {
            return None;
        }
        // Last block whose first key <= key.
        match self.index.binary_search_by(|e| e.first_key.cmp(key)) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// The run of data blocks that could hold keys in
    /// `start <= key < end` (`end = None` = unbounded above), as
    /// `(first_block, count)` — the in-memory half of a range scan,
    /// split from the block IO exactly like [`Self::locate`] so the
    /// batched read path can stage the run into its deduped,
    /// span-coalesced fetch list. `None` when the table's key range
    /// cannot intersect the scan.
    pub fn locate_range(&self, start: &Key, end: Option<&Key>) -> Option<(usize, usize)> {
        if &self.meta.max_key < start {
            return None;
        }
        if let Some(end) = end {
            if &self.meta.min_key >= end {
                return None;
            }
        }
        // First block that could hold `start`: the last block whose
        // first key <= start, or block 0 when start precedes them all.
        let first = match self.index.binary_search_by(|e| e.first_key.cmp(start)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        // Last block whose first key < end still holds in-range keys.
        let last = match end {
            None => self.index.len() - 1,
            Some(end) => match self.index.binary_search_by(|e| e.first_key.cmp(end)) {
                Ok(0) | Err(0) => 0,
                Ok(i) => i - 1,
                Err(i) => i - 1,
            },
        };
        Some((first, last.max(first) - first + 1))
    }

    /// Streams every entry in key order (compaction input).
    pub fn scan(&self) -> Result<Vec<(Key, Entry)>> {
        let mut out = Vec::with_capacity(self.meta.entry_count as usize);
        for i in 0..self.index.len() {
            let block = self.read_block(i)?;
            let mut pos = 0usize;
            while pos < block.len() {
                let (k, entry, next) = decode_entry(&block, pos)?;
                out.push((k, entry));
                pos = next;
            }
        }
        Ok(out)
    }

    /// Reads data block `idx` (the IO half of a point lookup).
    pub fn read_block(&self, idx: usize) -> Result<Vec<u8>> {
        let e = &self.index[idx];
        let mut buf = vec![0u8; e.len as usize];
        self.read_at(&mut buf, e.offset)?;
        Ok(buf)
    }

    /// Number of data blocks in this table.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Reads `count` consecutive data blocks starting at `first` with
    /// one positional read of the whole span — data blocks are laid out
    /// back-to-back, so a sorted per-batch fetch chain can coalesce an
    /// adjacent run into a single syscall (the buffered stand-in for
    /// one io_uring SQE chain over the run). Returns one [`BlockBuf`]
    /// per block, aligned with `first..first + count`; all of them
    /// share the single span allocation (no per-block copy).
    pub fn read_blocks(&self, first: usize, count: usize) -> Result<Vec<BlockBuf>> {
        debug_assert!(count > 0 && first + count <= self.index.len());
        if count == 1 {
            return Ok(vec![BlockBuf::from_vec(self.read_block(first)?)]);
        }
        let run = &self.index[first..first + count];
        let span: u64 = run.iter().map(|e| e.len as u64).sum();
        let contiguous = run
            .windows(2)
            .all(|w| w[0].offset + w[0].len as u64 == w[1].offset);
        if !contiguous {
            // Defensive: a gap in the layout falls back to block reads.
            return run
                .iter()
                .enumerate()
                .map(|(i, _)| Ok(BlockBuf::from_vec(self.read_block(first + i)?)))
                .collect();
        }
        let mut buf = vec![0u8; span as usize];
        self.read_at(&mut buf, run[0].offset)?;
        let span = std::sync::Arc::new(buf);
        let mut out = Vec::with_capacity(count);
        let mut pos = 0usize;
        for e in run {
            out.push(BlockBuf {
                span: span.clone(),
                start: pos,
                end: pos + e.len as usize,
            });
            pos += e.len as usize;
        }
        Ok(out)
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    #[cfg(windows)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        // seek_read moves the handle's cursor, but nothing else relies
        // on it — every read path in this reader is positional.
        use std::os::windows::fs::FileExt;
        let mut pos = 0usize;
        while pos < buf.len() {
            let n = self.file.seek_read(&mut buf[pos..], offset + pos as u64)?;
            if n == 0 {
                return Err(Error::Corruption("sstable read past end of file".into()));
            }
            pos += n;
        }
        Ok(())
    }

    #[cfg(not(any(unix, windows)))]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        // No positional read: serialize seek+read on the *retained*
        // handle. Re-opening by path would break the Arc-pinned
        // snapshot guarantee once a compaction unlinks this table.
        let _guard = self.seek_lock.lock();
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        Ok(())
    }
}

/// Decodes every entry of a data block in key order (a range scan's
/// per-block input).
pub fn decode_block(block: &[u8]) -> Result<Vec<(Key, Entry)>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < block.len() {
        let (k, entry, next) = decode_entry(block, pos)?;
        out.push((k, entry));
        pos = next;
    }
    Ok(out)
}

/// Searches a decoded data block for `key` (entries are sorted, so the
/// scan stops at the first greater key).
pub fn find_in_block(block: &[u8], key: &Key) -> Result<Option<Entry>> {
    let mut pos = 0usize;
    while pos < block.len() {
        let (k, entry, next) = decode_entry(block, pos)?;
        if &k == key {
            return Ok(Some(entry));
        }
        if k > *key {
            return Ok(None);
        }
        pos = next;
    }
    Ok(None)
}

fn decode_entry(block: &[u8], mut pos: usize) -> Result<(Key, Entry, usize)> {
    let flag = *block
        .get(pos)
        .ok_or_else(|| Error::Corruption("entry flag missing".into()))?;
    pos += 1;
    let klen = read_varint(block, &mut pos)? as usize;
    let vlen = read_varint(block, &mut pos)? as usize;
    if pos + klen + vlen > block.len() {
        return Err(Error::Corruption("entry overflows block".into()));
    }
    let key = Key::copy_from(&block[pos..pos + klen]);
    pos += klen;
    let entry = match flag {
        FLAG_PUT => {
            let v = Value::copy_from(&block[pos..pos + vlen]);
            pos += vlen;
            Entry::Put(v)
        }
        FLAG_TOMBSTONE => Entry::Tombstone,
        other => return Err(Error::Corruption(format!("bad entry flag {other}"))),
    };
    Ok((key, entry, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> tb_common::TestDir {
        tb_common::test_dir("tb-sst")
    }

    fn sample_entries(n: usize) -> Vec<(Key, Entry)> {
        (0..n)
            .map(|i| {
                let key = Key::from(format!("key-{i:06}"));
                if i % 7 == 3 {
                    (key, Entry::Tombstone)
                } else {
                    (
                        key,
                        Entry::Put(Value::from(format!("value-{i}-{}", "x".repeat(i % 50)))),
                    )
                }
            })
            .collect()
    }

    fn build(name: &str, entries: Vec<(Key, Entry)>) -> (tb_common::TestDir, SstReader) {
        let dir = tmpdir();
        let path = dir.create().join(name);
        let meta = write_sstable(1, &path, entries.into_iter(), &SstConfig::default()).unwrap();
        (dir, SstReader::open(meta).unwrap())
    }

    #[test]
    fn write_open_get_all() {
        let entries = sample_entries(500);
        let (_dir, r) = build("basic.sst", entries.clone());
        assert_eq!(r.meta.entry_count, 500);
        for (k, e) in &entries {
            let got = r.get(k).unwrap();
            assert_eq!(got.as_ref(), Some(e), "key {k:?}");
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let (_dir, r) = build("absent.sst", sample_entries(100));
        assert_eq!(r.get(&Key::from("nope")).unwrap(), None);
        assert_eq!(r.get(&Key::from("key-000000a")).unwrap(), None);
        assert_eq!(r.get(&Key::from("zzz")).unwrap(), None);
        assert_eq!(r.get(&Key::from("")).unwrap(), None);
    }

    #[test]
    fn scan_returns_sorted_everything() {
        let entries = sample_entries(300);
        let (_dir, r) = build("scan.sst", entries.clone());
        let scanned = r.scan().unwrap();
        assert_eq!(scanned, entries);
    }

    #[test]
    fn unsorted_input_rejected() {
        let dir = tmpdir();
        let path = dir.create().join("unsorted.sst");
        let entries = vec![
            (Key::from("b"), Entry::Put(Value::from("1"))),
            (Key::from("a"), Entry::Put(Value::from("2"))),
        ];
        assert!(write_sstable(1, &path, entries.into_iter(), &SstConfig::default()).is_err());
    }

    #[test]
    fn duplicate_keys_rejected() {
        let dir = tmpdir();
        let path = dir.create().join("dup.sst");
        let entries = vec![
            (Key::from("a"), Entry::Put(Value::from("1"))),
            (Key::from("a"), Entry::Put(Value::from("2"))),
        ];
        assert!(write_sstable(1, &path, entries.into_iter(), &SstConfig::default()).is_err());
    }

    #[test]
    fn empty_table_rejected() {
        let dir = tmpdir();
        let path = dir.create().join("empty.sst");
        assert!(write_sstable(1, &path, std::iter::empty(), &SstConfig::default()).is_err());
    }

    #[test]
    fn corrupted_footer_detected() {
        let dir = tmpdir();
        let path = dir.create().join("corrupt.sst");
        let meta = write_sstable(
            1,
            &path,
            sample_entries(50).into_iter(),
            &SstConfig::default(),
        )
        .unwrap();
        // Flip a footer byte.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(SstReader::open(meta).is_err());
    }

    #[test]
    fn truncated_file_detected() {
        let dir = tmpdir();
        let path = dir.create().join("trunc.sst");
        let meta = write_sstable(
            1,
            &path,
            sample_entries(50).into_iter(),
            &SstConfig::default(),
        )
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(SstReader::open(meta).is_err());
    }

    #[test]
    fn small_blocks_force_multiple_index_entries() {
        let dir = tmpdir();
        let path = dir.create().join("blocks.sst");
        let cfg = SstConfig {
            block_size: 64,
            bloom_bits_per_key: 10,
        };
        let entries = sample_entries(200);
        let meta = write_sstable(1, &path, entries.clone().into_iter(), &cfg).unwrap();
        let r = SstReader::open(meta).unwrap();
        assert!(
            r.index.len() > 5,
            "expected many blocks, got {}",
            r.index.len()
        );
        for (k, e) in &entries {
            assert_eq!(r.get(k).unwrap().as_ref(), Some(e));
        }
    }

    #[test]
    fn single_entry_table() {
        let (_dir, r) = build(
            "single.sst",
            vec![(Key::from("only"), Entry::Put(Value::from("one")))],
        );
        assert_eq!(
            r.get(&Key::from("only")).unwrap(),
            Some(Entry::Put(Value::from("one")))
        );
        assert_eq!(r.meta.min_key, r.meta.max_key);
    }

    #[test]
    fn locate_range_covers_exactly_the_overlapping_blocks() {
        let dir = tmpdir();
        let path = dir.create().join("range.sst");
        let cfg = SstConfig {
            block_size: 64,
            bloom_bits_per_key: 10,
        };
        let entries = sample_entries(200);
        let meta = write_sstable(1, &path, entries.clone().into_iter(), &cfg).unwrap();
        let r = SstReader::open(meta).unwrap();
        assert!(r.block_count() > 5);

        // Any sub-range: decoding exactly the located blocks yields
        // every in-range entry (reference: filter the full entry list).
        let cases = [
            (Key::from("key-000010"), Some(Key::from("key-000050"))),
            (Key::from("key-000000"), Some(Key::from("key-000001"))),
            (Key::from("a"), Some(Key::from("zzz"))),
            (Key::from("key-000150"), None),
            (Key::from("key-000199"), None),
        ];
        for (start, end) in cases {
            let (first, count) = r.locate_range(&start, end.as_ref()).unwrap();
            let mut got = Vec::new();
            for b in first..first + count {
                for (k, e) in decode_block(&r.read_block(b).unwrap()).unwrap() {
                    if k >= start && end.as_ref().is_none_or(|e| &k < e) {
                        got.push((k, e));
                    }
                }
            }
            let expect: Vec<(Key, Entry)> = entries
                .iter()
                .filter(|(k, _)| *k >= start && end.as_ref().is_none_or(|e| k < e))
                .cloned()
                .collect();
            assert_eq!(got, expect, "range {start:?}..{end:?}");
        }

        // Disjoint ranges rule the table out without IO.
        assert!(r.locate_range(&Key::from("zzz"), None).is_none());
        assert!(r
            .locate_range(&Key::from("a"), Some(&Key::from("b")))
            .is_none());
    }

    #[test]
    fn span_read_matches_per_block_reads() {
        let dir = tmpdir();
        let path = dir.create().join("span.sst");
        let cfg = SstConfig {
            block_size: 128,
            bloom_bits_per_key: 10,
        };
        let meta = write_sstable(1, &path, sample_entries(300).into_iter(), &cfg).unwrap();
        let r = SstReader::open(meta).unwrap();
        let blocks = r.block_count();
        assert!(blocks > 8, "span test needs many blocks, got {blocks}");
        // Every run shape: full table, interior runs, single block, tail.
        for (first, count) in [(0, blocks), (1, blocks - 2), (3, 1), (blocks - 2, 2)] {
            let spans = r.read_blocks(first, count).unwrap();
            assert_eq!(spans.len(), count);
            for (i, span) in spans.iter().enumerate() {
                assert_eq!(
                    span.as_slice(),
                    r.read_block(first + i).unwrap().as_slice(),
                    "span read of block {} diverged",
                    first + i
                );
            }
        }
    }

    #[test]
    fn concurrent_positional_reads_share_one_reader() {
        let dir = tmpdir();
        let path = dir.create().join("pread.sst");
        let entries = sample_entries(400);
        let meta = write_sstable(
            1,
            &path,
            entries.clone().into_iter(),
            &SstConfig {
                block_size: 256,
                bloom_bits_per_key: 10,
            },
        )
        .unwrap();
        let r = std::sync::Arc::new(SstReader::open(meta).unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = r.clone();
                let entries = &entries;
                s.spawn(move || {
                    for (i, (k, e)) in entries.iter().enumerate() {
                        if i % 4 == t {
                            assert_eq!(r.get(k).unwrap().as_ref(), Some(e), "key {k:?}");
                        }
                    }
                });
            }
        });
    }
}
