//! Block-based sorted string tables with compressed, checksummed
//! block frames.
//!
//! File layout (v2, the only format written):
//!
//! ```text
//! [block frame]* [dict payload] [filter block] [index block] [footer]
//! block frame := codec_tag u8 | uncompressed_len u32 | crc32(payload) u32 | payload
//! data entry  := flag u8 | varint(klen) | varint(vlen) | key | value
//! index entry := varint(klen) | first_key | off u64 | len u32   (on-disk frame extents)
//! footer      := dict_off u64 | dict_len u32 | codec u8 |
//!                index_off u64 | index_len u32 | filter_off u64 |
//!                filter_len u32 | entry_count u32 | crc u32 | MAGIC2 u32
//! ```
//!
//! Blocks are sized pre-compression (`SstConfig::block_size` bounds the
//! *uncompressed* payload) and framed through the table's
//! [`BlockCodec`]; index entries point at the variable-length on-disk
//! frames. The codec's trained state (tzstd dictionary / PBC model) is
//! sampled from the input values and stored as the table-level dict
//! payload, so a table is self-describing. Every block read verifies
//! the frame CRC before any key search; a bad block is a per-slot
//! [`Error::Corruption`], never a torn batch.
//!
//! Compatibility gate: tables written before the framed format (legacy
//! `MAGIC`, raw blocks, 36-byte footer) still open and read — the
//! footer magic selects the read path.
//!
//! Readers keep the sparse index and bloom filter in memory and read
//! one frame per point lookup.

use crate::bloom::BloomFilter;
use crate::memtable::Entry;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tb_common::{crc32, fault, read_varint, write_varint, Error, Key, Result, Value};
use tb_compress::block::MAX_TRAIN_SAMPLES;
pub use tb_compress::block::{BlockCodec, FRAME_HEADER_LEN, FRAME_TAG_STORED};
use tb_compress::BlockCodecState;

/// Fsyncs `path`'s parent directory so a just-renamed file survives a
/// crash of the directory metadata. `site` names the fault point.
pub(crate) fn sync_parent_dir(path: &Path, site: &'static str) -> Result<()> {
    fault::hit(site)?;
    if let Some(dir) = path.parent() {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Legacy raw-block format (pre-compression).
const MAGIC: u32 = 0x7b5d_57a1;
const FOOTER_LEN: usize = 8 + 4 + 8 + 4 + 4 + 4 + 4;
/// Framed format: compressed, checksummed blocks + dict payload.
const MAGIC2: u32 = 0x7b5d_57a2;
const FOOTER2_LEN: usize = 8 + 4 + 1 + FOOTER_LEN;
const FLAG_PUT: u8 = 0;
const FLAG_TOMBSTONE: u8 = 1;

/// Build-time options.
#[derive(Debug, Clone, Copy)]
pub struct SstConfig {
    /// Target uncompressed data-block size.
    pub block_size: usize,
    /// Bloom filter bits per key.
    pub bloom_bits_per_key: usize,
    /// Per-table block codec; trained state is sampled from the input
    /// values at flush/compaction and stored in the table.
    pub codec: BlockCodec,
}

impl Default for SstConfig {
    fn default() -> Self {
        Self {
            block_size: 4096,
            bloom_bits_per_key: 10,
            codec: BlockCodec::None,
        }
    }
}

/// Metadata of one table, kept in the manifest and in memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstMeta {
    pub id: u64,
    pub path: PathBuf,
    pub min_key: Key,
    pub max_key: Key,
    pub entry_count: u32,
    pub file_size: u64,
}

/// What one table build did on the compression dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct SstBuildStats {
    /// Data blocks written.
    pub blocks: u64,
    /// Blocks whose frame carries a compressed payload (the rest fell
    /// back to stored frames).
    pub blocks_compressed: u64,
    /// Raw block bytes before framing.
    pub uncompressed_bytes: u64,
    /// On-disk data region bytes: frames (headers included) plus the
    /// dict payload.
    pub compressed_bytes: u64,
}

/// Decode-side counters, shared by every reader of one store so the
/// engine can export them (`lsm_block_decode_errors` and friends).
#[derive(Debug, Default)]
pub struct SstDecodeStats {
    /// Frames decoded (CRC-verified) on any read path.
    pub blocks_decoded: AtomicU64,
    /// Frames whose payload was actually decompressed (stored frames
    /// and legacy raw blocks don't count).
    pub blocks_decompressed: AtomicU64,
    /// Frames that failed CRC/decode — surfaced as per-slot
    /// [`Error::Corruption`].
    pub block_decode_errors: AtomicU64,
}

/// Writes a sorted entry stream into an SSTable file.
pub fn write_sstable(
    id: u64,
    path: &Path,
    entries: impl Iterator<Item = (Key, Entry)>,
    config: &SstConfig,
) -> Result<SstMeta> {
    write_sstable_with_stats(id, path, entries, config).map(|(meta, _)| meta)
}

/// [`write_sstable`], also returning the build's compression counters.
pub fn write_sstable_with_stats(
    id: u64,
    path: &Path,
    entries: impl Iterator<Item = (Key, Entry)>,
    config: &SstConfig,
) -> Result<(SstMeta, SstBuildStats)> {
    // Pass 1 (streaming): encode entries into uncompressed blocks cut
    // at `block_size`, collecting the codec's training samples (first
    // MAX_TRAIN_SAMPLES put values — deterministic for a fixed input).
    let mut blocks: Vec<(Key, Vec<u8>)> = Vec::new();
    let mut block = Vec::new();
    let mut block_first_key: Option<Key> = None;
    let mut samples: Vec<Vec<u8>> = Vec::new();
    let mut filter_items: Vec<Key> = Vec::new();
    let mut min_key: Option<Key> = None;
    let mut max_key: Option<Key> = None;
    let mut entry_count = 0u32;
    let mut prev_key: Option<Key> = None;

    for (key, entry) in entries {
        if let Some(prev) = &prev_key {
            if *prev >= key {
                return Err(Error::InvalidArgument(format!(
                    "entries must be strictly sorted: {prev:?} >= {key:?}"
                )));
            }
        }
        prev_key = Some(key.clone());
        if block_first_key.is_none() {
            block_first_key = Some(key.clone());
        }
        match &entry {
            Entry::Put(v) => {
                block.push(FLAG_PUT);
                write_varint(&mut block, key.len() as u64);
                write_varint(&mut block, v.len() as u64);
                block.extend_from_slice(key.as_slice());
                block.extend_from_slice(v.as_slice());
                if samples.len() < MAX_TRAIN_SAMPLES {
                    samples.push(v.as_slice().to_vec());
                }
            }
            Entry::Tombstone => {
                block.push(FLAG_TOMBSTONE);
                write_varint(&mut block, key.len() as u64);
                write_varint(&mut block, 0);
                block.extend_from_slice(key.as_slice());
            }
        }
        filter_items.push(key.clone());
        min_key.get_or_insert_with(|| key.clone());
        max_key = Some(key.clone());
        entry_count += 1;

        if block.len() >= config.block_size {
            let first = block_first_key.take().expect("block has a first key");
            blocks.push((first, std::mem::take(&mut block)));
        }
    }
    if let Some(first) = block_first_key.take() {
        blocks.push((first, std::mem::take(&mut block)));
    }
    if entry_count == 0 {
        return Err(Error::InvalidArgument(
            "refusing to write empty sstable".into(),
        ));
    }

    // Pass 2: train the codec on the sampled values, then frame-encode
    // every block. Index entries point at the on-disk frame extents.
    let codec_state = BlockCodecState::train(config.codec, &samples);
    let mut stats = SstBuildStats::default();
    let mut data = Vec::new();
    let mut index = Vec::new();
    for (first, raw) in &blocks {
        let frame_start = data.len();
        stats.blocks += 1;
        stats.uncompressed_bytes += raw.len() as u64;
        if codec_state.encode_frame(raw, &mut data) {
            stats.blocks_compressed += 1;
        }
        write_varint(&mut index, first.len() as u64);
        index.extend_from_slice(first.as_slice());
        index.extend_from_slice(&(frame_start as u64).to_le_bytes());
        index.extend_from_slice(&((data.len() - frame_start) as u32).to_le_bytes());
    }
    // The dict payload rides in the data region, after the frames, so
    // the existing `sst.write.data` fault site covers it.
    let dict_off = data.len() as u64;
    let dict_payload = codec_state.dict_payload();
    data.extend_from_slice(dict_payload);
    stats.compressed_bytes = data.len() as u64;

    let mut bloom = BloomFilter::new(filter_items.len(), config.bloom_bits_per_key);
    for k in &filter_items {
        bloom.insert(k.as_slice());
    }
    let filter = bloom.to_bytes();

    let filter_off = data.len() as u64;
    let index_off = filter_off + filter.len() as u64;

    let mut footer = Vec::with_capacity(FOOTER2_LEN);
    footer.extend_from_slice(&dict_off.to_le_bytes());
    footer.extend_from_slice(&(dict_payload.len() as u32).to_le_bytes());
    footer.push(config.codec.tag());
    footer.extend_from_slice(&index_off.to_le_bytes());
    footer.extend_from_slice(&(index.len() as u32).to_le_bytes());
    footer.extend_from_slice(&filter_off.to_le_bytes());
    footer.extend_from_slice(&(filter.len() as u32).to_le_bytes());
    footer.extend_from_slice(&entry_count.to_le_bytes());
    let crc = crc32(&footer);
    footer.extend_from_slice(&crc.to_le_bytes());
    footer.extend_from_slice(&MAGIC2.to_le_bytes());

    let tmp = path.with_extension("tmp");
    let written = (|| -> Result<()> {
        let mut f = File::create(&tmp)?;
        fault::write_all("sst.write.data", &mut f, &data)?;
        fault::write_all("sst.write.filter", &mut f, &filter)?;
        fault::write_all("sst.write.index", &mut f, &index)?;
        fault::write_all("sst.write.footer", &mut f, &footer)?;
        fault::hit("sst.sync")?;
        f.sync_all()?;
        fault::hit("sst.rename")?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path, "sst.dir_sync")
    })();
    if let Err(e) = written {
        // Don't leave a half-written .tmp behind a transient error.
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }

    let file_size = (data.len() + filter.len() + index.len() + FOOTER2_LEN) as u64;
    let meta = SstMeta {
        id,
        path: path.to_path_buf(),
        min_key: min_key.expect("non-empty"),
        max_key: max_key.expect("non-empty"),
        entry_count,
        file_size,
    };
    Ok((meta, stats))
}

struct IndexEntry {
    first_key: Key,
    offset: u64,
    len: u32,
}

/// One fetched data block, possibly a window into a larger coalesced
/// span read shared (refcounted, copy-free) with its neighbor blocks.
/// For framed tables the buffer owns the *decompressed* bytes.
#[derive(Debug, Clone)]
pub struct BlockBuf {
    span: std::sync::Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl BlockBuf {
    /// Wraps a single-block buffer (the inline read path).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        let end = buf.len();
        Self {
            span: std::sync::Arc::new(buf),
            start: 0,
            end,
        }
    }

    /// The block's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.span[self.start..self.end]
    }
}

/// An open SSTable: sparse index + bloom filter in memory, data on disk.
///
/// Block reads are positional (`pread`-style), so any number of
/// threads — the tree-lock-free completion pass, the parallel
/// [`crate::read_pool::ReadPool`] workers — can fetch blocks from one
/// reader concurrently without serializing on a seek cursor. Frame
/// decode (CRC verify + decompression) happens on whichever thread
/// claimed the read, so pooled and inline paths stay byte-identical.
pub struct SstReader {
    file: File,
    /// Platforms without a positional read serialize their shared
    /// seek+read here; unix/windows read positionally, lock-free.
    #[cfg(not(any(unix, windows)))]
    seek_lock: parking_lot::Mutex<()>,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    pub meta: SstMeta,
    /// Format gate: `true` for framed (v2) tables, `false` for legacy
    /// raw-block (v1) tables that predate compression.
    framed: bool,
    codec_state: BlockCodecState,
    decode_stats: Arc<SstDecodeStats>,
}

impl SstReader {
    /// Opens and validates a table with private decode counters.
    pub fn open(meta: SstMeta) -> Result<Self> {
        Self::open_shared(meta, Arc::new(SstDecodeStats::default()))
    }

    /// Opens and validates a table written by [`write_sstable`] (either
    /// format), recording decode activity into `decode_stats` (one
    /// engine shares a single stats instance across all its tables).
    pub fn open_shared(meta: SstMeta, decode_stats: Arc<SstDecodeStats>) -> Result<Self> {
        let mut file = File::open(&meta.path)?;
        let file_len = file.metadata()?.len();
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::Corruption("sstable shorter than footer".into()));
        }
        let mut magic_bytes = [0u8; 4];
        file.seek(SeekFrom::End(-4))?;
        file.read_exact(&mut magic_bytes)?;
        let magic = u32::from_le_bytes(magic_bytes);

        let (framed, dict_off, dict_len, index_off, index_len, filter_off, filter_len) = match magic
        {
            MAGIC2 => {
                if file_len < FOOTER2_LEN as u64 {
                    return Err(Error::Corruption("sstable shorter than footer".into()));
                }
                let mut footer = vec![0u8; FOOTER2_LEN];
                file.seek(SeekFrom::End(-(FOOTER2_LEN as i64)))?;
                file.read_exact(&mut footer)?;
                let stored_crc = u32::from_le_bytes(
                    footer[FOOTER2_LEN - 8..FOOTER2_LEN - 4].try_into().unwrap(),
                );
                if crc32(&footer[..FOOTER2_LEN - 8]) != stored_crc {
                    return Err(Error::Corruption("sstable footer crc mismatch".into()));
                }
                let dict_off = u64::from_le_bytes(footer[0..8].try_into().unwrap());
                let dict_len = u32::from_le_bytes(footer[8..12].try_into().unwrap()) as usize;
                let codec_tag = footer[12];
                let index_off = u64::from_le_bytes(footer[13..21].try_into().unwrap());
                let index_len = u32::from_le_bytes(footer[21..25].try_into().unwrap()) as usize;
                let filter_off = u64::from_le_bytes(footer[25..33].try_into().unwrap());
                let filter_len = u32::from_le_bytes(footer[33..37].try_into().unwrap()) as usize;
                if BlockCodec::from_tag(codec_tag).is_none() {
                    return Err(Error::Corruption(format!(
                        "unknown sstable codec tag {codec_tag}"
                    )));
                }
                if index_off + index_len as u64 + FOOTER2_LEN as u64 != file_len
                    || dict_off + dict_len as u64 != filter_off
                    || filter_off + filter_len as u64 != index_off
                {
                    return Err(Error::Corruption(
                        "sstable section offsets inconsistent".into(),
                    ));
                }
                (
                    true, dict_off, dict_len, index_off, index_len, filter_off, filter_len,
                )
            }
            MAGIC => {
                // Legacy pre-compression table: raw blocks, no dict.
                let mut footer = vec![0u8; FOOTER_LEN];
                file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
                file.read_exact(&mut footer)?;
                let stored_crc =
                    u32::from_le_bytes(footer[FOOTER_LEN - 8..FOOTER_LEN - 4].try_into().unwrap());
                if crc32(&footer[..FOOTER_LEN - 8]) != stored_crc {
                    return Err(Error::Corruption("sstable footer crc mismatch".into()));
                }
                let index_off = u64::from_le_bytes(footer[0..8].try_into().unwrap());
                let index_len = u32::from_le_bytes(footer[8..12].try_into().unwrap()) as usize;
                let filter_off = u64::from_le_bytes(footer[12..20].try_into().unwrap());
                let filter_len = u32::from_le_bytes(footer[20..24].try_into().unwrap()) as usize;
                if index_off + index_len as u64 + FOOTER_LEN as u64 != file_len {
                    return Err(Error::Corruption(
                        "sstable section offsets inconsistent".into(),
                    ));
                }
                (false, 0, 0, index_off, index_len, filter_off, filter_len)
            }
            _ => return Err(Error::Corruption("bad sstable magic".into())),
        };

        let codec_state = if framed {
            let codec_tag = {
                // Re-read the codec byte via the validated footer copy.
                let mut footer = vec![0u8; FOOTER2_LEN];
                file.seek(SeekFrom::End(-(FOOTER2_LEN as i64)))?;
                file.read_exact(&mut footer)?;
                footer[12]
            };
            let codec = BlockCodec::from_tag(codec_tag).expect("validated above");
            let mut dict_payload = vec![0u8; dict_len];
            file.seek(SeekFrom::Start(dict_off))?;
            file.read_exact(&mut dict_payload)?;
            BlockCodecState::from_dict_payload(codec, &dict_payload)?
        } else {
            BlockCodecState::default()
        };

        let mut filter_bytes = vec![0u8; filter_len];
        file.seek(SeekFrom::Start(filter_off))?;
        file.read_exact(&mut filter_bytes)?;
        let bloom = BloomFilter::from_bytes(&filter_bytes)
            .ok_or_else(|| Error::Corruption("bad bloom filter block".into()))?;

        let mut index_bytes = vec![0u8; index_len];
        file.seek(SeekFrom::Start(index_off))?;
        file.read_exact(&mut index_bytes)?;
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos < index_bytes.len() {
            let klen = read_varint(&index_bytes, &mut pos)? as usize;
            if pos + klen + 12 > index_bytes.len() {
                return Err(Error::Corruption("index entry truncated".into()));
            }
            let first_key = Key::copy_from(&index_bytes[pos..pos + klen]);
            pos += klen;
            let offset = u64::from_le_bytes(index_bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let len = u32::from_le_bytes(index_bytes[pos..pos + 4].try_into().unwrap());
            pos += 4;
            index.push(IndexEntry {
                first_key,
                offset,
                len,
            });
        }

        Ok(Self {
            file,
            #[cfg(not(any(unix, windows)))]
            seek_lock: parking_lot::Mutex::new(()),
            index,
            bloom,
            meta,
            framed,
            codec_state,
            decode_stats,
        })
    }

    /// The table's block codec (`None` for legacy tables).
    pub fn codec(&self) -> BlockCodec {
        self.codec_state.codec()
    }

    /// Point lookup. `None` means "not in this table"; a tombstone is
    /// reported as `Some(Entry::Tombstone)` so callers stop searching
    /// older tables.
    pub fn get(&self, key: &Key) -> Result<Option<Entry>> {
        match self.locate(key) {
            Some(block_idx) => find_in_block(&self.read_block(block_idx)?, key),
            None => Ok(None),
        }
    }

    /// Index of the one data block that could hold `key`, or `None`
    /// when the key-range or bloom filter rules the table out — the
    /// in-memory half of a point lookup, split from the block IO so a
    /// batched read path can stage the IO and dedup it across keys.
    pub fn locate(&self, key: &Key) -> Option<usize> {
        if key < &self.meta.min_key || key > &self.meta.max_key {
            return None;
        }
        if !self.bloom.may_contain(key.as_slice()) {
            return None;
        }
        // Last block whose first key <= key.
        match self.index.binary_search_by(|e| e.first_key.cmp(key)) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// The run of data blocks that could hold keys in
    /// `start <= key < end` (`end = None` = unbounded above), as
    /// `(first_block, count)` — the in-memory half of a range scan,
    /// split from the block IO exactly like [`Self::locate`] so the
    /// batched read path can stage the run into its deduped,
    /// span-coalesced fetch list. `None` when the table's key range
    /// cannot intersect the scan.
    pub fn locate_range(&self, start: &Key, end: Option<&Key>) -> Option<(usize, usize)> {
        if &self.meta.max_key < start {
            return None;
        }
        if let Some(end) = end {
            if &self.meta.min_key >= end {
                return None;
            }
        }
        // First block that could hold `start`: the last block whose
        // first key <= start, or block 0 when start precedes them all.
        let first = match self.index.binary_search_by(|e| e.first_key.cmp(start)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        // Last block whose first key < end still holds in-range keys.
        let last = match end {
            None => self.index.len() - 1,
            Some(end) => match self.index.binary_search_by(|e| e.first_key.cmp(end)) {
                Ok(0) | Err(0) => 0,
                Ok(i) => i - 1,
                Err(i) => i - 1,
            },
        };
        Some((first, last.max(first) - first + 1))
    }

    /// Streams every entry in key order (compaction input).
    pub fn scan(&self) -> Result<Vec<(Key, Entry)>> {
        let mut out = Vec::with_capacity(self.meta.entry_count as usize);
        for i in 0..self.index.len() {
            let block = self.read_block(i)?;
            let mut pos = 0usize;
            while pos < block.len() {
                let (k, entry, next) = decode_entry(&block, pos)?;
                out.push((k, entry));
                pos = next;
            }
        }
        Ok(out)
    }

    /// Reads and decodes data block `idx` (the IO half of a point
    /// lookup): fetch the on-disk frame, verify its CRC, decompress.
    pub fn read_block(&self, idx: usize) -> Result<Vec<u8>> {
        self.read_block_marked(idx, false)
    }

    /// [`Self::read_block`] with a fault-injection corruption mark: a
    /// marked block's frame is deterministically mangled before decode
    /// (bad CRC / truncated frame / garbage payload, chosen by frame
    /// length), so it surfaces as the same [`Error::Corruption`] a real
    /// torn or rotted block would — on either completion pass.
    pub fn read_block_marked(&self, idx: usize, corrupt: bool) -> Result<Vec<u8>> {
        let raw = self.read_raw_block(idx)?;
        self.decode(raw, corrupt)
    }

    /// The on-disk bytes of block `idx` (frame or legacy raw block).
    fn read_raw_block(&self, idx: usize) -> Result<Vec<u8>> {
        let e = &self.index[idx];
        let mut buf = vec![0u8; e.len as usize];
        self.read_at(&mut buf, e.offset)?;
        Ok(buf)
    }

    /// Decodes one fetched frame, tracking decode/decompression/error
    /// counters and the decompression latency histogram.
    fn decode(&self, raw: Vec<u8>, corrupt: bool) -> Result<Vec<u8>> {
        if !self.framed {
            // Legacy table: no frame to verify. A corruption mark still
            // must fail the slot deterministically.
            if corrupt {
                return Err(Error::Corruption("sstable block marked corrupt".into()));
            }
            return Ok(raw);
        }
        let frame = if corrupt { mangle_frame(&raw) } else { raw };
        self.decode_stats
            .blocks_decoded
            .fetch_add(1, Ordering::Relaxed);
        let compressed = frame.first().is_some_and(|&tag| tag != FRAME_TAG_STORED);
        let t0 = tb_obs::start();
        let out = self.codec_state.decode_frame(&frame);
        match &out {
            Ok(_) if compressed => {
                tb_obs::histo!("lsm_block_decompress_ns").record_since(t0);
                self.decode_stats
                    .blocks_decompressed
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {}
            Err(_) => {
                self.decode_stats
                    .block_decode_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        out
    }

    /// Number of data blocks in this table.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Reads and decodes `count` consecutive data blocks starting at
    /// `first`. The on-disk frames are laid out back-to-back, so the
    /// whole run is fetched with one positional read of the span (the
    /// buffered stand-in for one io_uring SQE chain); each frame is
    /// then decoded by the claiming thread. Returns one [`BlockBuf`]
    /// per block, aligned with `first..first + count`. Legacy tables
    /// share the single span allocation copy-free; framed tables own
    /// their decompressed bytes.
    pub fn read_blocks(&self, first: usize, count: usize) -> Result<Vec<BlockBuf>> {
        self.read_blocks_marked(first, count, &[])
            .into_iter()
            .collect()
    }

    /// [`Self::read_blocks`] with per-block corruption marks (empty =
    /// none marked) and per-block results: one bad frame fails only its
    /// own slot, the rest of the run still answers. An IO error on the
    /// span read fails every block in the run.
    pub fn read_blocks_marked(
        &self,
        first: usize,
        count: usize,
        corrupt: &[bool],
    ) -> Vec<Result<BlockBuf>> {
        debug_assert!(count > 0 && first + count <= self.index.len());
        debug_assert!(corrupt.is_empty() || corrupt.len() == count);
        let marked = |i: usize| corrupt.get(i).copied().unwrap_or(false);
        if count == 1 {
            return vec![self
                .read_block_marked(first, marked(0))
                .map(BlockBuf::from_vec)];
        }
        let run = &self.index[first..first + count];
        let span: u64 = run.iter().map(|e| e.len as u64).sum();
        let contiguous = run
            .windows(2)
            .all(|w| w[0].offset + w[0].len as u64 == w[1].offset);
        if !contiguous {
            // Defensive: a gap in the layout falls back to block reads.
            return (0..count)
                .map(|i| {
                    self.read_block_marked(first + i, marked(i))
                        .map(BlockBuf::from_vec)
                })
                .collect();
        }
        let mut buf = vec![0u8; span as usize];
        if let Err(e) = self.read_at(&mut buf, run[0].offset) {
            return (0..count).map(|_| Err(e.clone())).collect();
        }
        if !self.framed && corrupt.iter().all(|&c| !c) {
            // Legacy fast path: raw blocks window into the shared span.
            let span = std::sync::Arc::new(buf);
            let mut out = Vec::with_capacity(count);
            let mut pos = 0usize;
            for e in run {
                out.push(Ok(BlockBuf {
                    span: span.clone(),
                    start: pos,
                    end: pos + e.len as usize,
                }));
                pos += e.len as usize;
            }
            return out;
        }
        let mut out = Vec::with_capacity(count);
        let mut pos = 0usize;
        for (i, e) in run.iter().enumerate() {
            let frame = buf[pos..pos + e.len as usize].to_vec();
            pos += e.len as usize;
            out.push(self.decode(frame, marked(i)).map(BlockBuf::from_vec));
        }
        out
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    #[cfg(windows)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        // seek_read moves the handle's cursor, but nothing else relies
        // on it — every read path in this reader is positional.
        use std::os::windows::fs::FileExt;
        let mut pos = 0usize;
        while pos < buf.len() {
            let n = self.file.seek_read(&mut buf[pos..], offset + pos as u64)?;
            if n == 0 {
                return Err(Error::Corruption("sstable read past end of file".into()));
            }
            pos += n;
        }
        Ok(())
    }

    #[cfg(not(any(unix, windows)))]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        // No positional read: serialize seek+read on the *retained*
        // handle. Re-opening by path would break the Arc-pinned
        // snapshot guarantee once a compaction unlinks this table.
        let _guard = self.seek_lock.lock();
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        Ok(())
    }
}

/// Deterministically mangles a frame for the `sst.block_decode` fault
/// site, cycling through the three corruption shapes by frame length:
/// a flipped CRC byte, a truncation below the header, and a garbage
/// payload (CRC re-stamped for compressed frames so the *codec* has to
/// catch it; left stale for stored frames so the CRC check does).
fn mangle_frame(frame: &[u8]) -> Vec<u8> {
    let mut bad = frame.to_vec();
    match frame.len() % 3 {
        0 => {
            if bad.len() > 5 {
                bad[5] ^= 0xff;
            } else {
                bad.clear();
            }
        }
        1 => bad.truncate(bad.len().min(FRAME_HEADER_LEN - 5)),
        _ => {
            for b in bad.iter_mut().skip(FRAME_HEADER_LEN) {
                *b = 0x5a;
            }
            if bad.len() > FRAME_HEADER_LEN && bad[0] != FRAME_TAG_STORED {
                let crc = crc32(&bad[FRAME_HEADER_LEN..]);
                bad[5..9].copy_from_slice(&crc.to_le_bytes());
            }
        }
    }
    bad
}

/// Writes the legacy (pre-compression, raw-block) v1 format — kept so
/// the compatibility gate stays exercised: a table written before the
/// framed format must open and read correctly through today's reader.
#[cfg(test)]
pub(crate) fn write_sstable_v1_for_tests(
    id: u64,
    path: &Path,
    entries: impl Iterator<Item = (Key, Entry)>,
    config: &SstConfig,
) -> Result<SstMeta> {
    let mut data = Vec::new();
    let mut index = Vec::new();
    let mut filter_items: Vec<Key> = Vec::new();
    let mut block_start = 0usize;
    let mut block_first_key: Option<Key> = None;
    let mut min_key: Option<Key> = None;
    let mut max_key: Option<Key> = None;
    let mut entry_count = 0u32;

    let finish_block = |index: &mut Vec<u8>, first: &Key, start: usize, end: usize| {
        write_varint(index, first.len() as u64);
        index.extend_from_slice(first.as_slice());
        index.extend_from_slice(&(start as u64).to_le_bytes());
        index.extend_from_slice(&((end - start) as u32).to_le_bytes());
    };

    for (key, entry) in entries {
        if block_first_key.is_none() {
            block_first_key = Some(key.clone());
        }
        match &entry {
            Entry::Put(v) => {
                data.push(FLAG_PUT);
                write_varint(&mut data, key.len() as u64);
                write_varint(&mut data, v.len() as u64);
                data.extend_from_slice(key.as_slice());
                data.extend_from_slice(v.as_slice());
            }
            Entry::Tombstone => {
                data.push(FLAG_TOMBSTONE);
                write_varint(&mut data, key.len() as u64);
                write_varint(&mut data, 0);
                data.extend_from_slice(key.as_slice());
            }
        }
        filter_items.push(key.clone());
        min_key.get_or_insert_with(|| key.clone());
        max_key = Some(key.clone());
        entry_count += 1;
        if data.len() - block_start >= config.block_size {
            let first = block_first_key.take().expect("block has a first key");
            finish_block(&mut index, &first, block_start, data.len());
            block_start = data.len();
        }
    }
    if let Some(first) = block_first_key.take() {
        finish_block(&mut index, &first, block_start, data.len());
    }

    let mut bloom = BloomFilter::new(filter_items.len(), config.bloom_bits_per_key);
    for k in &filter_items {
        bloom.insert(k.as_slice());
    }
    let filter = bloom.to_bytes();
    let filter_off = data.len() as u64;
    let index_off = filter_off + filter.len() as u64;

    let mut footer = Vec::with_capacity(FOOTER_LEN);
    footer.extend_from_slice(&index_off.to_le_bytes());
    footer.extend_from_slice(&(index.len() as u32).to_le_bytes());
    footer.extend_from_slice(&filter_off.to_le_bytes());
    footer.extend_from_slice(&(filter.len() as u32).to_le_bytes());
    footer.extend_from_slice(&entry_count.to_le_bytes());
    let crc = crc32(&footer);
    footer.extend_from_slice(&crc.to_le_bytes());
    footer.extend_from_slice(&MAGIC.to_le_bytes());

    let mut bytes = data;
    bytes.extend_from_slice(&filter);
    bytes.extend_from_slice(&index);
    bytes.extend_from_slice(&footer);
    let file_size = bytes.len() as u64;
    std::fs::write(path, &bytes)?;
    Ok(SstMeta {
        id,
        path: path.to_path_buf(),
        min_key: min_key.expect("non-empty"),
        max_key: max_key.expect("non-empty"),
        entry_count,
        file_size,
    })
}

/// Decodes every entry of a data block in key order (a range scan's
/// per-block input).
pub fn decode_block(block: &[u8]) -> Result<Vec<(Key, Entry)>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < block.len() {
        let (k, entry, next) = decode_entry(block, pos)?;
        out.push((k, entry));
        pos = next;
    }
    Ok(out)
}

/// Searches a decoded data block for `key` (entries are sorted, so the
/// scan stops at the first greater key).
pub fn find_in_block(block: &[u8], key: &Key) -> Result<Option<Entry>> {
    let mut pos = 0usize;
    while pos < block.len() {
        let (k, entry, next) = decode_entry(block, pos)?;
        if &k == key {
            return Ok(Some(entry));
        }
        if k > *key {
            return Ok(None);
        }
        pos = next;
    }
    Ok(None)
}

fn decode_entry(block: &[u8], mut pos: usize) -> Result<(Key, Entry, usize)> {
    let flag = *block
        .get(pos)
        .ok_or_else(|| Error::Corruption("entry flag missing".into()))?;
    pos += 1;
    let klen = read_varint(block, &mut pos)? as usize;
    let vlen = read_varint(block, &mut pos)? as usize;
    if pos + klen + vlen > block.len() {
        return Err(Error::Corruption("entry overflows block".into()));
    }
    let key = Key::copy_from(&block[pos..pos + klen]);
    pos += klen;
    let entry = match flag {
        FLAG_PUT => {
            let v = Value::copy_from(&block[pos..pos + vlen]);
            pos += vlen;
            Entry::Put(v)
        }
        FLAG_TOMBSTONE => Entry::Tombstone,
        other => return Err(Error::Corruption(format!("bad entry flag {other}"))),
    };
    Ok((key, entry, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> tb_common::TestDir {
        tb_common::test_dir("tb-sst")
    }

    fn sample_entries(n: usize) -> Vec<(Key, Entry)> {
        (0..n)
            .map(|i| {
                let key = Key::from(format!("key-{i:06}"));
                if i % 7 == 3 {
                    (key, Entry::Tombstone)
                } else {
                    (
                        key,
                        Entry::Put(Value::from(format!("value-{i}-{}", "x".repeat(i % 50)))),
                    )
                }
            })
            .collect()
    }

    fn build(name: &str, entries: Vec<(Key, Entry)>) -> (tb_common::TestDir, SstReader) {
        let dir = tmpdir();
        let path = dir.create().join(name);
        let meta = write_sstable(1, &path, entries.into_iter(), &SstConfig::default()).unwrap();
        (dir, SstReader::open(meta).unwrap())
    }

    fn cfg(block_size: usize, codec: BlockCodec) -> SstConfig {
        SstConfig {
            block_size,
            bloom_bits_per_key: 10,
            codec,
        }
    }

    #[test]
    fn write_open_get_all() {
        let entries = sample_entries(500);
        let (_dir, r) = build("basic.sst", entries.clone());
        assert_eq!(r.meta.entry_count, 500);
        for (k, e) in &entries {
            let got = r.get(k).unwrap();
            assert_eq!(got.as_ref(), Some(e), "key {k:?}");
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let (_dir, r) = build("absent.sst", sample_entries(100));
        assert_eq!(r.get(&Key::from("nope")).unwrap(), None);
        assert_eq!(r.get(&Key::from("key-000000a")).unwrap(), None);
        assert_eq!(r.get(&Key::from("zzz")).unwrap(), None);
        assert_eq!(r.get(&Key::from("")).unwrap(), None);
    }

    #[test]
    fn scan_returns_sorted_everything() {
        let entries = sample_entries(300);
        let (_dir, r) = build("scan.sst", entries.clone());
        let scanned = r.scan().unwrap();
        assert_eq!(scanned, entries);
    }

    #[test]
    fn unsorted_input_rejected() {
        let dir = tmpdir();
        let path = dir.create().join("unsorted.sst");
        let entries = vec![
            (Key::from("b"), Entry::Put(Value::from("1"))),
            (Key::from("a"), Entry::Put(Value::from("2"))),
        ];
        assert!(write_sstable(1, &path, entries.into_iter(), &SstConfig::default()).is_err());
    }

    #[test]
    fn duplicate_keys_rejected() {
        let dir = tmpdir();
        let path = dir.create().join("dup.sst");
        let entries = vec![
            (Key::from("a"), Entry::Put(Value::from("1"))),
            (Key::from("a"), Entry::Put(Value::from("2"))),
        ];
        assert!(write_sstable(1, &path, entries.into_iter(), &SstConfig::default()).is_err());
    }

    #[test]
    fn empty_table_rejected() {
        let dir = tmpdir();
        let path = dir.create().join("empty.sst");
        assert!(write_sstable(1, &path, std::iter::empty(), &SstConfig::default()).is_err());
    }

    #[test]
    fn corrupted_footer_detected() {
        let dir = tmpdir();
        let path = dir.create().join("corrupt.sst");
        let meta = write_sstable(
            1,
            &path,
            sample_entries(50).into_iter(),
            &SstConfig::default(),
        )
        .unwrap();
        // Flip a footer byte.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(SstReader::open(meta).is_err());
    }

    #[test]
    fn truncated_file_detected() {
        let dir = tmpdir();
        let path = dir.create().join("trunc.sst");
        let meta = write_sstable(
            1,
            &path,
            sample_entries(50).into_iter(),
            &SstConfig::default(),
        )
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(SstReader::open(meta).is_err());
    }

    #[test]
    fn small_blocks_force_multiple_index_entries() {
        let dir = tmpdir();
        let path = dir.create().join("blocks.sst");
        let entries = sample_entries(200);
        let meta = write_sstable(
            1,
            &path,
            entries.clone().into_iter(),
            &cfg(64, BlockCodec::None),
        )
        .unwrap();
        let r = SstReader::open(meta).unwrap();
        assert!(
            r.index.len() > 5,
            "expected many blocks, got {}",
            r.index.len()
        );
        for (k, e) in &entries {
            assert_eq!(r.get(k).unwrap().as_ref(), Some(e));
        }
    }

    #[test]
    fn single_entry_table() {
        let (_dir, r) = build(
            "single.sst",
            vec![(Key::from("only"), Entry::Put(Value::from("one")))],
        );
        assert_eq!(
            r.get(&Key::from("only")).unwrap(),
            Some(Entry::Put(Value::from("one")))
        );
        assert_eq!(r.meta.min_key, r.meta.max_key);
    }

    #[test]
    fn locate_range_covers_exactly_the_overlapping_blocks() {
        let dir = tmpdir();
        let path = dir.create().join("range.sst");
        let entries = sample_entries(200);
        let meta = write_sstable(
            1,
            &path,
            entries.clone().into_iter(),
            &cfg(64, BlockCodec::None),
        )
        .unwrap();
        let r = SstReader::open(meta).unwrap();
        assert!(r.block_count() > 5);

        // Any sub-range: decoding exactly the located blocks yields
        // every in-range entry (reference: filter the full entry list).
        let cases = [
            (Key::from("key-000010"), Some(Key::from("key-000050"))),
            (Key::from("key-000000"), Some(Key::from("key-000001"))),
            (Key::from("a"), Some(Key::from("zzz"))),
            (Key::from("key-000150"), None),
            (Key::from("key-000199"), None),
        ];
        for (start, end) in cases {
            let (first, count) = r.locate_range(&start, end.as_ref()).unwrap();
            let mut got = Vec::new();
            for b in first..first + count {
                for (k, e) in decode_block(&r.read_block(b).unwrap()).unwrap() {
                    if k >= start && end.as_ref().is_none_or(|e| &k < e) {
                        got.push((k, e));
                    }
                }
            }
            let expect: Vec<(Key, Entry)> = entries
                .iter()
                .filter(|(k, _)| *k >= start && end.as_ref().is_none_or(|e| k < e))
                .cloned()
                .collect();
            assert_eq!(got, expect, "range {start:?}..{end:?}");
        }

        // Disjoint ranges rule the table out without IO.
        assert!(r.locate_range(&Key::from("zzz"), None).is_none());
        assert!(r
            .locate_range(&Key::from("a"), Some(&Key::from("b")))
            .is_none());
    }

    #[test]
    fn span_read_matches_per_block_reads() {
        // Both paths must return identical (decompressed) bytes, for
        // every codec — the pooled/inline byte-identity contract.
        for codec in BlockCodec::ALL {
            let dir = tmpdir();
            let path = dir.create().join("span.sst");
            let meta =
                write_sstable(1, &path, sample_entries(300).into_iter(), &cfg(128, codec)).unwrap();
            let r = SstReader::open(meta).unwrap();
            let blocks = r.block_count();
            assert!(blocks > 8, "span test needs many blocks, got {blocks}");
            // Every run shape: full table, interior runs, single block, tail.
            for (first, count) in [(0, blocks), (1, blocks - 2), (3, 1), (blocks - 2, 2)] {
                let spans = r.read_blocks(first, count).unwrap();
                assert_eq!(spans.len(), count);
                for (i, span) in spans.iter().enumerate() {
                    assert_eq!(
                        span.as_slice(),
                        r.read_block(first + i).unwrap().as_slice(),
                        "span read of block {} diverged (codec {})",
                        first + i,
                        codec.name()
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_positional_reads_share_one_reader() {
        let dir = tmpdir();
        let path = dir.create().join("pread.sst");
        let entries = sample_entries(400);
        let meta = write_sstable(
            1,
            &path,
            entries.clone().into_iter(),
            &cfg(256, BlockCodec::Lz),
        )
        .unwrap();
        let r = std::sync::Arc::new(SstReader::open(meta).unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = r.clone();
                let entries = &entries;
                s.spawn(move || {
                    for (i, (k, e)) in entries.iter().enumerate() {
                        if i % 4 == t {
                            assert_eq!(r.get(k).unwrap().as_ref(), Some(e), "key {k:?}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn every_codec_roundtrips_the_full_table() {
        for codec in BlockCodec::ALL {
            let dir = tmpdir();
            let path = dir.create().join("codec.sst");
            let entries = sample_entries(400);
            let (meta, stats) =
                write_sstable_with_stats(1, &path, entries.clone().into_iter(), &cfg(512, codec))
                    .unwrap();
            assert_eq!(stats.blocks as usize, {
                let r = SstReader::open(meta.clone()).unwrap();
                r.block_count()
            });
            let r = SstReader::open(meta).unwrap();
            assert_eq!(r.codec(), codec);
            assert_eq!(r.scan().unwrap(), entries, "codec {}", codec.name());
            for (k, e) in &entries {
                assert_eq!(
                    r.get(k).unwrap().as_ref(),
                    Some(e),
                    "codec {}",
                    codec.name()
                );
            }
            if codec != BlockCodec::None {
                assert!(
                    stats.blocks_compressed > 0,
                    "codec {} never compressed a block",
                    codec.name()
                );
                assert!(stats.compressed_bytes < stats.uncompressed_bytes);
            }
        }
    }

    #[test]
    fn compressed_table_detects_data_corruption() {
        // Flip bytes inside a data frame: reads of that block fail with
        // Corruption (never a panic, never silent garbage), other
        // blocks still read.
        let dir = tmpdir();
        let path = dir.create().join("bitrot.sst");
        let entries = sample_entries(300);
        let meta = write_sstable(
            1,
            &path,
            entries.clone().into_iter(),
            &cfg(256, BlockCodec::Lz),
        )
        .unwrap();
        let r = SstReader::open(meta.clone()).unwrap();
        assert!(r.block_count() > 3);
        let victim = &r.index[1];
        let mut bytes = std::fs::read(&path).unwrap();
        // Hit the middle of block 1's frame payload.
        let off = victim.offset as usize + victim.len as usize / 2;
        bytes[off] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let r = SstReader::open(meta).unwrap();
        match r.read_block(1) {
            Err(Error::Corruption(_)) => {}
            other => panic!("bit rot must be Corruption, got {other:?}"),
        }
        assert_eq!(
            r.decode_stats.block_decode_errors.load(Ordering::Relaxed),
            1
        );
        // Unrelated blocks are unaffected.
        assert!(r.read_block(0).is_ok());
        assert!(r.read_block(2).is_ok());
        // Marked span reads fail only the bad slot.
        let results = r.read_blocks_marked(0, 3, &[]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn marked_corrupt_blocks_fail_deterministically() {
        for codec in BlockCodec::ALL {
            let dir = tmpdir();
            let path = dir.create().join("marked.sst");
            let meta =
                write_sstable(1, &path, sample_entries(300).into_iter(), &cfg(256, codec)).unwrap();
            let r = SstReader::open(meta).unwrap();
            let blocks = r.block_count();
            assert!(blocks >= 3);
            for idx in 0..blocks {
                match r.read_block_marked(idx, true) {
                    Err(Error::Corruption(_)) => {}
                    other => panic!(
                        "marked block {idx} (codec {}) must be Corruption, got {other:?}",
                        codec.name()
                    ),
                }
                // Unmarked read of the same block still answers.
                assert!(r.read_block(idx).is_ok());
            }
            // Span path: only marked slots fail.
            let mut marks = vec![false; blocks];
            marks[1] = true;
            let results = r.read_blocks_marked(0, blocks, &marks);
            for (i, res) in results.iter().enumerate() {
                assert_eq!(res.is_err(), i == 1, "slot {i} (codec {})", codec.name());
            }
        }
    }

    #[test]
    fn legacy_v1_table_opens_and_reads() {
        // The compatibility gate: a pre-refactor (raw-block, MAGIC v1)
        // table opens and serves every read path post-refactor.
        let dir = tmpdir();
        let path = dir.create().join("legacy.sst");
        let entries = sample_entries(300);
        let meta = write_sstable_v1_for_tests(
            7,
            &path,
            entries.clone().into_iter(),
            &cfg(128, BlockCodec::None),
        )
        .unwrap();
        let r = SstReader::open(meta).unwrap();
        assert!(!r.framed, "v1 table must take the legacy read path");
        assert_eq!(r.codec(), BlockCodec::None);
        assert_eq!(r.scan().unwrap(), entries);
        for (k, e) in &entries {
            assert_eq!(r.get(k).unwrap().as_ref(), Some(e), "key {k:?}");
        }
        // Span reads (the pooled path) work and match block reads.
        let blocks = r.block_count();
        assert!(blocks > 5);
        let spans = r.read_blocks(0, blocks).unwrap();
        for (i, span) in spans.iter().enumerate() {
            assert_eq!(span.as_slice(), r.read_block(i).unwrap().as_slice());
        }
        // No frame decode happened — legacy blocks are raw.
        assert_eq!(r.decode_stats.blocks_decoded.load(Ordering::Relaxed), 0);
        // Marked corruption still fails per-slot on legacy tables.
        assert!(r.read_block_marked(0, true).is_err());
    }

    #[test]
    fn dict_payload_survives_reopen() {
        // Dict/PBC state must round-trip through the file alone (no
        // training samples at open time).
        let dir = tmpdir();
        for codec in [BlockCodec::Dict, BlockCodec::Pbc] {
            let path = dir.create().join(format!("{}.sst", codec.name()));
            let entries: Vec<(Key, Entry)> = (0..400)
                .map(|i| {
                    (
                        Key::from(format!("user{i:012}")),
                        Entry::Put(Value::from(format!(
                            "city\t{i}\tMetropolis-{}\tpop={}\tcountry=XX",
                            i % 10,
                            i * 37
                        ))),
                    )
                })
                .collect();
            let (meta, stats) =
                write_sstable_with_stats(1, &path, entries.clone().into_iter(), &cfg(512, codec))
                    .unwrap();
            assert!(
                stats.blocks_compressed > 0,
                "{} should compress templated rows",
                codec.name()
            );
            let r = SstReader::open(meta).unwrap();
            assert_eq!(r.scan().unwrap(), entries, "codec {}", codec.name());
        }
    }

    #[test]
    fn decode_stats_count_each_block_once() {
        let dir = tmpdir();
        let path = dir.create().join("stats.sst");
        let meta = write_sstable(
            1,
            &path,
            sample_entries(300).into_iter(),
            &cfg(256, BlockCodec::Lz),
        )
        .unwrap();
        let stats = Arc::new(SstDecodeStats::default());
        let r = SstReader::open_shared(meta, stats.clone()).unwrap();
        let blocks = r.block_count();
        let _ = r.read_blocks(0, blocks).unwrap();
        assert_eq!(
            stats.blocks_decoded.load(Ordering::Relaxed),
            blocks as u64,
            "span read must decode each frame exactly once"
        );
        assert!(stats.blocks_decompressed.load(Ordering::Relaxed) > 0);
        assert_eq!(stats.block_decode_errors.load(Ordering::Relaxed), 0);
    }
}
