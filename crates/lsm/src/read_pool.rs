//! A shard-local pool of block-fetch workers for the batched read path.
//!
//! [`crate::db::LsmDb::apply_batch`]'s completion pass produces a
//! sort-deduped `(table, block)` fetch list. With a pool configured
//! (`LsmConfig::read_pool_threads > 0`) the pass submits that list here
//! as **one chain** instead of fetching it inline:
//!
//! * adjacent blocks of the same table coalesce into *runs*, each read
//!   with a single positional syscall ([`SstReader::read_blocks`]) —
//!   the buffered stand-in for an io_uring SQE chain, and the reason
//!   the pooled pass wins even on one core;
//! * pool workers **and the submitting thread** claim runs from the
//!   chain's shared cursor, so blocks complete out of order, IO
//!   overlaps across runs, and a busy pool can never stall a batch
//!   (the submitter alone drains the chain if it must);
//! * results land in the chain's slot arena in **submission order** —
//!   `results[i]` answers `jobs[i]` no matter which thread fetched it.
//!
//! One pool serves one engine (= one data-node shard), so every
//! front-end worker draining batches onto that engine — including
//! elastically boosted siblings — shares the same fetch threads
//! instead of spawning its own.
//!
//! Fault injection stays out of this module on purpose: the
//! `batch.block_read` fault pass runs on the submitting thread, in
//! sorted fetch order, *before* the chain is built — so the Nth hit of
//! the site fails the Nth fetch whether the pool is enabled or not
//! (positional determinism, relied on by the torture matrix).

use crate::sstable::{BlockBuf, SstReader};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tb_common::{Error, Result};

/// Cap on blocks per coalesced run: bounds single-read latency and
/// gives the pool enough runs to overlap even for one big table scan.
const MAX_RUN_BLOCKS: usize = 32;

/// One fetch request: block `block` of `table`. `corrupt` is the
/// pre-computed `sst.block_decode` fault decision for this fetch (made
/// on the submitting thread, in sorted fetch order, like every fault
/// gate) — a marked block decodes to a per-slot `Error::Corruption` on
/// whichever thread claims it, keeping pooled and inline paths
/// positionally identical.
pub struct FetchJob {
    pub table: Arc<SstReader>,
    pub block: usize,
    pub corrupt: bool,
}

/// A maximal run of same-table, adjacent blocks — one unit of work.
struct Run {
    table: Arc<SstReader>,
    first_block: usize,
    count: usize,
    /// `slots[slot_base..slot_base + count]` receive this run's blocks.
    slot_base: usize,
    /// Per-block corruption marks, aligned with the run's blocks.
    corrupt: Vec<bool>,
}

/// Shared state of one submitted chain.
struct Chain {
    runs: Vec<Run>,
    /// Next unclaimed run (claimed with `fetch_add`, may overshoot).
    cursor: AtomicUsize,
    state: Mutex<ChainState>,
    done: Condvar,
}

struct ChainState {
    /// `slots[i]` answers job `i`, in submission order.
    slots: Vec<Option<Result<BlockBuf>>>,
    runs_left: usize,
}

impl Chain {
    /// Claims and executes runs until the cursor is exhausted.
    fn drain(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            let Some(run) = self.runs.get(i) else { return };
            // Frame decode (CRC verify + decompression) happens here,
            // on the claiming thread; a bad frame fails only its own
            // slot, a span IO error fails the whole run.
            let blocks = run
                .table
                .read_blocks_marked(run.first_block, run.count, &run.corrupt);
            let mut state = self.state.lock();
            for (j, block) in blocks.into_iter().enumerate() {
                state.slots[run.slot_base + j] = Some(block);
            }
            state.runs_left -= 1;
            if state.runs_left == 0 {
                self.done.notify_all();
            }
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Chain>>>,
    work: Condvar,
    shutdown: AtomicBool,
    /// Block fetches currently submitted and not yet completed.
    in_flight: AtomicU64,
    /// High-water mark of `in_flight` over the pool's life.
    depth_hwm: AtomicU64,
}

/// The pool: `threads` fetch workers over a FIFO of chains.
pub struct ReadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ReadPool {
    /// Spawns `threads` workers (at least one — a zero-thread pool is
    /// spelled "no pool" at the config layer).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            depth_hwm: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("tb-read-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn read-pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// High-water mark of block fetches outstanding at once.
    pub fn queue_depth_high_water(&self) -> u64 {
        self.shared.depth_hwm.load(Ordering::Relaxed)
    }

    /// Block fetches outstanding right now (submitted, not completed).
    /// The hwm alone can't show a drained pool; an advisor needs both.
    pub fn queue_depth(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// A cloneable depth probe that outlives borrows of the pool —
    /// what a metrics snapshot source captures.
    pub fn depth_handle(&self) -> DepthHandle {
        DepthHandle {
            shared: self.shared.clone(),
        }
    }
}

/// Reads a pool's current and high-water fetch depth without borrowing
/// the pool. Keeps the shared state alive but not the worker threads.
#[derive(Clone)]
pub struct DepthHandle {
    shared: Arc<PoolShared>,
}

impl DepthHandle {
    /// Fetches outstanding right now.
    pub fn current(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// High-water mark over the pool's life.
    pub fn high_water(&self) -> u64 {
        self.shared.depth_hwm.load(Ordering::Relaxed)
    }
}

impl ReadPool {
    /// Submits `jobs` as one chain and blocks until every slot is
    /// filled; `results[i]` answers `jobs[i]`. Adjacent same-table
    /// blocks coalesce into single span reads; completion order is
    /// arbitrary, result order is submission order. The calling thread
    /// participates in the fetching, so this makes progress even when
    /// every pool worker is busy with other chains.
    pub fn fetch_chain(&self, jobs: &[FetchJob]) -> Vec<Result<BlockBuf>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let n = jobs.len() as u64;
        let depth = self.shared.in_flight.fetch_add(n, Ordering::Relaxed) + n;
        self.shared.depth_hwm.fetch_max(depth, Ordering::Relaxed);

        let chain = Arc::new(build_chain(jobs));
        // A single-run chain has nothing to overlap: the submitter does
        // the one (coalesced) read itself, skipping queue and wakeups.
        let shared_runs = chain.runs.len().saturating_sub(1).min(self.threads);
        if shared_runs > 0 {
            {
                let mut queue = self.shared.queue.lock();
                queue.push_back(chain.clone());
            }
            // Wake only as many workers as there are runs to steal.
            for _ in 0..shared_runs {
                self.shared.work.notify_one();
            }
        }

        // Help: claim runs alongside the workers, then wait out any run
        // still mid-flight in a worker.
        chain.drain();
        let mut state = chain.state.lock();
        while state.runs_left > 0 {
            chain.done.wait(&mut state);
        }
        self.shared.in_flight.fetch_sub(n, Ordering::Relaxed);
        state
            .slots
            .iter_mut()
            .map(|slot| {
                slot.take()
                    .unwrap_or_else(|| Err(Error::Internal("read-pool slot never filled".into())))
            })
            .collect()
    }
}

impl Drop for ReadPool {
    fn drop(&mut self) {
        // Set the flag *under the queue lock*: a worker that observed
        // `shutdown == false` does so while holding this lock, so by
        // the time we acquire it that worker is parked in `wait` and
        // the notification below reaches it — no lost-wakeup window
        // between its check and its sleep.
        {
            let _queue = self.shared.queue.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Groups the ordered job list into maximal coalescible runs.
fn build_chain(jobs: &[FetchJob]) -> Chain {
    let mut runs: Vec<Run> = Vec::new();
    for (slot, job) in jobs.iter().enumerate() {
        let extends = runs.last().is_some_and(|run| {
            Arc::ptr_eq(&run.table, &job.table)
                && run.first_block + run.count == job.block
                && run.count < MAX_RUN_BLOCKS
        });
        if extends {
            let run = runs.last_mut().expect("just matched");
            run.count += 1;
            run.corrupt.push(job.corrupt);
        } else {
            runs.push(Run {
                table: job.table.clone(),
                first_block: job.block,
                count: 1,
                slot_base: slot,
                corrupt: vec![job.corrupt],
            });
        }
    }
    let runs_left = runs.len();
    Chain {
        runs,
        cursor: AtomicUsize::new(0),
        state: Mutex::new(ChainState {
            slots: (0..jobs.len()).map(|_| None).collect(),
            runs_left,
        }),
        done: Condvar::new(),
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let chain = {
            let mut queue = shared.queue.lock();
            loop {
                // Drop exhausted chains (their submitter finishes them).
                while queue
                    .front()
                    .is_some_and(|c| c.cursor.load(Ordering::Relaxed) >= c.runs.len())
                {
                    queue.pop_front();
                }
                if let Some(front) = queue.front() {
                    break front.clone();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.work.wait(&mut queue);
            }
        };
        chain.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::Entry;
    use crate::sstable::{write_sstable, SstConfig};
    use tb_common::{Key, Value};

    fn table(dir: &tb_common::TestDir, id: u64, n: usize) -> Arc<SstReader> {
        let path = dir.create().join(format!("{id:010}.sst"));
        let entries = (0..n).map(|i| {
            (
                Key::from(format!("k{i:05}")),
                Entry::Put(Value::from(format!("v{i}-{}", "y".repeat(40)))),
            )
        });
        let meta = write_sstable(
            id,
            &path,
            entries,
            &SstConfig {
                block_size: 256,
                ..SstConfig::default()
            },
        )
        .unwrap();
        Arc::new(SstReader::open(meta).unwrap())
    }

    #[test]
    fn chain_results_align_with_submission_order() {
        let dir = tb_common::test_dir("tb-readpool-align");
        let t1 = table(&dir, 1, 400);
        let t2 = table(&dir, 2, 400);
        let pool = ReadPool::new(2);
        // Mixed tables, gaps, and adjacent runs, in sorted fetch order.
        let jobs: Vec<FetchJob> = [
            (0usize, &t1),
            (1, &t1),
            (2, &t1),
            (7, &t1),
            (0, &t2),
            (3, &t2),
        ]
        .iter()
        .map(|(block, t)| FetchJob {
            table: (*t).clone(),
            block: *block,
            corrupt: false,
        })
        .collect();
        let results = pool.fetch_chain(&jobs);
        assert_eq!(results.len(), jobs.len());
        for (job, result) in jobs.iter().zip(&results) {
            let direct = job.table.read_block(job.block).unwrap();
            assert_eq!(
                result.as_ref().expect("fetch succeeded").as_slice(),
                direct.as_slice(),
                "pooled block {} of table {} diverged from a direct read",
                job.block,
                job.table.meta.id
            );
        }
        assert!(pool.queue_depth_high_water() >= jobs.len() as u64);
    }

    #[test]
    fn many_concurrent_chains_stay_isolated() {
        let dir = tb_common::test_dir("tb-readpool-conc");
        let t = table(&dir, 1, 600);
        let pool = Arc::new(ReadPool::new(2));
        let blocks = t.block_count();
        std::thread::scope(|s| {
            for offset in 0..6 {
                let pool = pool.clone();
                let t = t.clone();
                s.spawn(move || {
                    for round in 0..20 {
                        let jobs: Vec<FetchJob> = (0..blocks)
                            .skip((offset + round) % 3)
                            .step_by(2)
                            .map(|block| FetchJob {
                                table: t.clone(),
                                block,
                                corrupt: false,
                            })
                            .collect();
                        let results = pool.fetch_chain(&jobs);
                        for (job, r) in jobs.iter().zip(&results) {
                            let direct = t.read_block(job.block).unwrap();
                            assert_eq!(r.as_ref().unwrap().as_slice(), direct.as_slice());
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn empty_chain_is_a_noop() {
        let pool = ReadPool::new(1);
        assert!(pool.fetch_chain(&[]).is_empty());
        assert_eq!(pool.queue_depth_high_water(), 0);
    }
}
