//! Figure 11: cost of databases with persistence on the cost plane,
//! 50/50 and 95/5 mixes (10 GB / 40 kQPS demand).
//!
//! Paper shape to reproduce: Cassandra/HBase — high performance cost,
//! very low space cost (disk); Redis-AOF and TierBase-WAL — low
//! performance cost but dual-replica in-memory space cost; tiered
//! TierBase (wt-10X / wb-10X) balances both, with write-back winning
//! the write-heavy mix and the advantage fading on the read-heavy one;
//! WAL-PMem trades a little space for near-memory performance.

use tb_baselines::{CassandraLike, HBaseLike, RedisLike};
use tb_bench::{bench_dir, measure_cost, print_cost_plane, scale, CostPoint};
use tb_costmodel::WorkloadDemand;
use tb_workload::{Workload, WorkloadSpec};
use tierbase_core::{PersistenceMode, SyncPolicy, TierBase, TierBaseConfig};

/// "10X" cache ratio: cache capacity = logical data / 10.
fn tiered(name: &str, policy: SyncPolicy, logical_bytes: usize) -> TierBase {
    TierBase::open(
        TierBaseConfig::builder(bench_dir(name))
            .cache_capacity((logical_bytes / 10).max(64 << 10))
            .policy(policy)
            .storage_rtt_us(200)
            .build(),
    )
    .expect("open")
}

fn cache_resident(name: &str, persistence: PersistenceMode) -> TierBase {
    TierBase::open(
        TierBaseConfig::builder(bench_dir(name))
            .cache_capacity(512 << 20)
            .persistence(persistence)
            .pmem_ring_bytes(64 << 20)
            .build(),
    )
    .expect("open")
}

fn main() {
    let records = 10_000u64 * scale() as u64;
    let ops = 20_000u64 * scale() as u64;
    let demand = WorkloadDemand::new(40_000.0, 10.0);
    // Rough logical size for the cache-ratio sizing: ~170 B/record.
    let logical_estimate = records as usize * 170;

    for (title, spec_fn) in [
        (
            "Figure 11(a): 50% read / 50% write",
            WorkloadSpec::ycsb_a as fn(u64, u64) -> WorkloadSpec,
        ),
        ("Figure 11(b): 95% read / 5% write", WorkloadSpec::ycsb_b),
    ] {
        let mut points: Vec<CostPoint> = Vec::new();

        // Disk-based comparators (single copy; replication inside the
        // storage service, as the paper assumes).
        {
            let e = CassandraLike::open(&bench_dir("f11-cas")).unwrap();
            let (load, run) = Workload::new(spec_fn(records, ops)).generate();
            points.push(measure_cost(
                "Cassandra",
                &e,
                &load,
                &run,
                16,
                &demand,
                4.0,
                1.0,
            ));
        }
        {
            let e = HBaseLike::open(&bench_dir("f11-hb")).unwrap();
            let (load, run) = Workload::new(spec_fn(records, ops)).generate();
            points.push(measure_cost(
                "HBase", &e, &load, &run, 16, &demand, 4.0, 1.0,
            ));
        }
        // Memory-resident persistent stores: dual-replica → space ×2.
        {
            let e = RedisLike::with_aof(&bench_dir("f11-raof")).unwrap();
            let (load, run) = Workload::new(spec_fn(records, ops)).generate();
            points.push(measure_cost(
                "Redis-AOF",
                &e,
                &load,
                &run,
                16,
                &demand,
                4.0,
                2.0,
            ));
        }
        {
            let e = cache_resident("f11-wal", PersistenceMode::Wal);
            let (load, run) = Workload::new(spec_fn(records, ops)).generate();
            points.push(measure_cost(
                "TierBase-WAL",
                &e,
                &load,
                &run,
                16,
                &demand,
                4.0,
                2.0,
            ));
        }
        {
            let e = cache_resident("f11-walpmem", PersistenceMode::WalPmem);
            let (load, run) = Workload::new(spec_fn(records, ops)).generate();
            points.push(measure_cost(
                "TierBase-WAL-PMem",
                &e,
                &load,
                &run,
                16,
                &demand,
                4.0,
                2.0,
            ));
        }
        // Tiered configurations at 10X cache ratio. Write-back carries
        // dirty data in replicated cache → space ×2; write-through ×1.
        {
            let e = tiered("f11-wt", SyncPolicy::WriteThrough, logical_estimate);
            let (load, run) = Workload::new(spec_fn(records, ops)).generate();
            points.push(measure_cost(
                "TierBase-wt-10X",
                &e,
                &load,
                &run,
                16,
                &demand,
                4.0,
                1.0,
            ));
        }
        {
            let e = tiered("f11-wb", SyncPolicy::WriteBack, logical_estimate);
            let (load, run) = Workload::new(spec_fn(records, ops)).generate();
            points.push(measure_cost(
                "TierBase-wb-10X",
                &e,
                &load,
                &run,
                16,
                &demand,
                4.0,
                2.0,
            ));
        }

        print_cost_plane(title, &points);
    }
}
