//! Figure 1: normalized SC / PC / total cost of the TierBase
//! cost-saving configurations on the primary production scenario
//! (the Case 1 workload).
//!
//! Paper shape to reproduce: Raw has the highest (space-dominated)
//! cost; PMem and the tiered configurations cut SC at some PC increase;
//! PBC cuts total cost the most (the paper reports 62% vs Raw).

use tb_bench::{bench_dir, measure_cost, print_table, scale};
use tb_costmodel::WorkloadDemand;
use tb_workload::{DatasetKind, Workload, WorkloadSpec};
use tierbase_core::{CompressionChoice, PmemTuning, SyncPolicy, TierBase, TierBaseConfig};

fn main() {
    let records = 15_000u64 * scale() as u64;
    let ops = 30_000u64 * scale() as u64;
    let demand = WorkloadDemand::new(80_000.0, 10.0);
    let logical_estimate = records as usize * 140;
    let dataset = DatasetKind::Kv1.build(7);
    let samples: Vec<Vec<u8>> = (0..512u64).map(|i| dataset.record(i)).collect();

    let mut points = Vec::new();
    let configs: Vec<(&str, TierBase, f64)> = vec![
        (
            "TierBase-Raw",
            TierBase::open(
                TierBaseConfig::builder(bench_dir("f1-raw"))
                    .cache_capacity(512 << 20)
                    .build(),
            )
            .unwrap(),
            2.0,
        ),
        (
            "TierBase-PMem",
            TierBase::open(
                TierBaseConfig::builder(bench_dir("f1-pmem"))
                    .cache_capacity(512 << 20)
                    .pmem(PmemTuning::default())
                    .build(),
            )
            .unwrap(),
            2.0,
        ),
        (
            "TierBase-PBC",
            {
                let tb = TierBase::open(
                    TierBaseConfig::builder(bench_dir("f1-pbc"))
                        .cache_capacity(512 << 20)
                        .compression(CompressionChoice::Pbc)
                        .build(),
                )
                .unwrap();
                tb.train_compression(&samples);
                tb
            },
            2.0,
        ),
        (
            "TierBase-wb-5X",
            TierBase::open(
                TierBaseConfig::builder(bench_dir("f1-wb"))
                    .cache_capacity((logical_estimate / 5).max(64 << 10))
                    .policy(SyncPolicy::WriteBack)
                    .storage_rtt_us(200)
                    .build(),
            )
            .unwrap(),
            2.0,
        ),
        (
            "TierBase-wt-5X",
            TierBase::open(
                TierBaseConfig::builder(bench_dir("f1-wt"))
                    .cache_capacity((logical_estimate / 5).max(64 << 10))
                    .policy(SyncPolicy::WriteThrough)
                    .storage_rtt_us(200)
                    .build(),
            )
            .unwrap(),
            1.0,
        ),
    ];

    for (name, engine, replica_factor) in &configs {
        let (load, run) = Workload::new(WorkloadSpec::case1_user_info(records, ops)).generate();
        points.push(measure_cost(
            *name,
            engine,
            &load,
            &run,
            16,
            &demand,
            4.0,
            *replica_factor,
        ));
    }

    // Normalize to the worst total (the figure's y axis is 0..1).
    let max_total = points
        .iter()
        .map(|p| p.total())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.3}", p.space_cost / max_total),
                format!("{:.3}", p.performance_cost / max_total),
                format!("{:.3}", p.total() / max_total),
            ]
        })
        .collect();
    print_table(
        "Figure 1: normalized cost comparison (SC, PC, Cost=max)",
        &["config", "SC", "PC", "Cost"],
        &rows,
    );
    let raw_total = points[0].total();
    if let Some(best) = points
        .iter()
        .min_by(|a, b| a.total().partial_cmp(&b.total()).expect("finite"))
    {
        println!(
            "--> best: {} saves {:.0}% vs TierBase-Raw",
            best.name,
            100.0 * (1.0 - best.total() / raw_total)
        );
    }
}
