//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. Write coalescing — storage RPCs with and without same-key merge.
//! 2. Write-back flush batch size — RPC amortization.
//! 3. Bloom filters — LSM point-read cost for absent keys.
//! 4. DRAM/PMem split threshold — space cost vs latency.
//! 5. SHARDS sampling rate — MRC build cost vs accuracy vs the CR* it
//!    feeds into Theorem 5.1.
//! 6. Replication protocol — sync / quorum / async write cost.
//! 7. Deferred cache-fetching — per-key gets vs one batched fetch over
//!    a simulated network (§4.1.2).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use tb_bench::{bench_dir, print_table, scale};
use tb_cache::{CacheConfig, ReplicatedCache, ReplicationMode, WriteCoalescer};
use tb_common::{Key, KvEngine, Value};
use tb_costmodel::{
    lru_miss_ratio_curve, shards_miss_ratio_curve, MissRatioCurve, ShardsConfig, TieredCostModel,
    TieredCostParams,
};
use tb_lsm::{sstable::SstConfig, DisaggregatedStore, LsmConfig, LsmDb, NetworkModel};
use tb_workload::{DatasetKind, KeyChooser, Op, ScrambledZipfian, Trace};
use tierbase_core::{PmemTuning, SyncPolicy, TierBase, TierBaseConfig, WriteBackTuning};

fn main() {
    ablation_coalescing();
    ablation_writeback_batch();
    ablation_bloom();
    ablation_pmem_split();
    ablation_shards_sampling();
    ablation_replication_mode();
    ablation_deferred_fetch();
}

/// 1. Write coalescing: a hot-key-heavy update stream flushed to the
///    storage tier with and without coalescing.
fn ablation_coalescing() {
    let n = 20_000 * scale();
    let dataset = DatasetKind::Kv1.build(3);
    // 90% of updates hit 100 hot keys — coalescing's natural prey.
    let updates: Vec<(Key, Value)> = (0..n)
        .map(|i| {
            let key = if i % 10 != 0 {
                Key::from(format!("hot{}", i % 100))
            } else {
                Key::from(format!("cold{i}"))
            };
            (key, Value::from(dataset.record(i as u64)))
        })
        .collect();

    let store = |name: &str| {
        let db = Arc::new(LsmDb::open(LsmConfig::new(bench_dir(name))).unwrap());
        DisaggregatedStore::new(
            db,
            NetworkModel {
                rtt_us: 100,
                per_kib_us: 0,
            },
        )
    };

    // Without coalescing: every update is a storage write.
    let s1 = store("abl-coal-off");
    let t0 = Instant::now();
    for (k, v) in updates.clone() {
        s1.put(k, v).unwrap();
    }
    let without = t0.elapsed();
    let calls_without = s1.stats.calls.load(Ordering::Relaxed);

    // With coalescing: merge within event-loop turns of 1024 updates
    // (the hot-key working set re-hits within a turn at this window).
    let s2 = store("abl-coal-on");
    let coalescer = WriteCoalescer::new();
    let t1 = Instant::now();
    for (i, (k, v)) in updates.into_iter().enumerate() {
        coalescer.offer_put(k, v);
        if (i + 1) % 1024 == 0 {
            for (k, w) in coalescer.drain(usize::MAX) {
                match w {
                    tb_cache::coalesce::PendingWrite::Put(v) => s2.put(k, v).unwrap(),
                    tb_cache::coalesce::PendingWrite::Delete => s2.delete(&k).unwrap(),
                }
            }
        }
    }
    for (k, w) in coalescer.drain(usize::MAX) {
        if let tb_cache::coalesce::PendingWrite::Put(v) = w {
            s2.put(k, v).unwrap();
        }
    }
    let with = t1.elapsed();
    let calls_with = s2.stats.calls.load(Ordering::Relaxed);

    print_table(
        "Ablation 1: write coalescing (write-through group commit)",
        &["variant", "storage RPCs", "wall ms", "coalesce rate"],
        &[
            vec![
                "no-coalescing".into(),
                calls_without.to_string(),
                format!("{:.0}", without.as_millis()),
                "-".into(),
            ],
            vec![
                "coalescing(1024)".into(),
                calls_with.to_string(),
                format!("{:.0}", with.as_millis()),
                format!("{:.2}", coalescer.coalesce_rate()),
            ],
        ],
    );
}

/// 2. Write-back batch size: same dirty set, different flush batches.
fn ablation_writeback_batch() {
    let mut rows = Vec::new();
    for batch in [1usize, 16, 256] {
        let tb = TierBase::open(
            TierBaseConfig::builder(bench_dir(&format!("abl-wb-{batch}")))
                .cache_capacity(256 << 20)
                .policy(SyncPolicy::WriteBack)
                .storage_rtt_us(200)
                .write_back(WriteBackTuning {
                    max_dirty_bytes: u64::MAX,
                    flush_every_ops: u64::MAX,
                    batch_size: batch,
                })
                .build(),
        )
        .unwrap();
        let n = 2_000 * scale();
        for i in 0..n {
            tb.put(Key::from(format!("k{i}")), Value::from(vec![b'x'; 120]))
                .unwrap();
        }
        let t0 = Instant::now();
        let flushed = tb.flush_dirty().unwrap();
        let dt = t0.elapsed();
        rows.push(vec![
            format!("batch={batch}"),
            flushed.to_string(),
            format!("{:.0}", dt.as_millis()),
            format!("{:.0}", flushed as f64 / dt.as_secs_f64().max(1e-9)),
        ]);
    }
    print_table(
        "Ablation 2: write-back flush batch size (200us RTT)",
        &["variant", "entries", "flush ms", "entries/s"],
        &rows,
    );
}

/// 3. Bloom filters: random absent-key reads against a multi-table LSM.
fn ablation_bloom() {
    let mut rows = Vec::new();
    for (label, bits) in [("bloom(10b/key)", 10usize), ("no-bloom", 0)] {
        let mut config = LsmConfig::new(bench_dir(&format!("abl-bloom-{bits}")));
        config.memtable_bytes = 32 << 10; // many small tables
        config.l0_compaction_trigger = 64; // keep tables un-merged
        config.sst = SstConfig {
            block_size: 4096,
            bloom_bits_per_key: bits,
            ..SstConfig::default()
        };
        let db = LsmDb::open(config).unwrap();
        let n = 4_000 * scale();
        for i in 0..n {
            db.put(
                Key::from(format!("present{i:08}")),
                Value::from(vec![b'v'; 64]),
            )
            .unwrap();
        }
        db.flush().unwrap();
        let tables: usize = db.level_table_counts().iter().sum();

        let t0 = Instant::now();
        let lookups = 20_000 * scale();
        for i in 0..lookups {
            // Absent keys *inside* the table key range, so the min/max
            // range check cannot reject them — only the bloom filter
            // (or a block read) can.
            let _ = db.get(&Key::from(format!("present{:08}x", i % n))).unwrap();
        }
        let dt = t0.elapsed();
        rows.push(vec![
            label.into(),
            tables.to_string(),
            format!(
                "{:.0}",
                lookups as f64 / dt.as_secs_f64().max(1e-9) / 1000.0
            ),
        ]);
    }
    print_table(
        "Ablation 3: bloom filters on absent-key reads",
        &["variant", "sstables", "kQPS (absent gets)"],
        &rows,
    );
}

/// 4. DRAM/PMem split threshold: space cost of the same data set.
fn ablation_pmem_split() {
    let mut rows = Vec::new();
    for (label, threshold) in [
        ("all-DRAM", usize::MAX),
        ("split@1KiB", 1024),
        ("split@64B", 64),
    ] {
        let mut builder = TierBaseConfig::builder(bench_dir(&format!("abl-pmem-{threshold}")))
            .cache_capacity(256 << 20);
        if threshold != usize::MAX {
            builder = builder.pmem(PmemTuning {
                value_threshold: threshold,
                cost_factor: 0.4,
            });
        }
        let tb = TierBase::open(builder.build()).unwrap();
        let n = 3_000 * scale();
        let t0 = Instant::now();
        for i in 0..n {
            // Mixed sizes: small counters + large records.
            let len = if i % 4 == 0 { 32 } else { 512 };
            tb.put(Key::from(format!("k{i}")), Value::from(vec![b'x'; len]))
                .unwrap();
        }
        let dt = t0.elapsed();
        rows.push(vec![
            label.into(),
            tb.resident_bytes().to_string(),
            format!("{:.0}", n as f64 / dt.as_secs_f64().max(1e-9) / 1000.0),
        ]);
    }
    print_table(
        "Ablation 4: DRAM/PMem value placement (cost-equivalent bytes)",
        &["variant", "SC bytes (DRAM-equiv)", "kQPS (puts)"],
        &rows,
    );
}

/// 5. SHARDS sampling rate: MRC construction cost vs accuracy, and the
///    CR* each curve feeds into Theorem 5.1.
fn ablation_shards_sampling() {
    // A zipfian read trace large enough that sampling matters.
    let n_keys = 20_000u64;
    let n_refs = 100_000 * scale();
    let mut chooser = ScrambledZipfian::with_theta(n_keys, 0.9);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let ops: Vec<Op> = (0..n_refs)
        .map(|_| Op::Read {
            key: Key::from(format!("k{:08}", chooser.next_index(&mut rng))),
        })
        .collect();
    let trace = Trace::new(ops);

    let params = TieredCostParams {
        pc_cache: 1.0,
        pc_miss: 4.0,
        sc_cache: 20.0,
        pc_storage: 30.0,
        sc_storage: 2.0,
    };

    let t0 = Instant::now();
    let exact = lru_miss_ratio_curve(&trace);
    let exact_ms = t0.elapsed().as_millis();
    let exact_cr = TieredCostModel::new(params, exact).optimal_cache_ratio();

    let mut rows = vec![vec![
        "exact (Mattson)".into(),
        format!("{exact_ms}"),
        "0.0000".into(),
        format!("{:.4}", exact_cr.cache_ratio),
    ]];

    for rate in [0.5, 0.1, 0.02] {
        let t0 = Instant::now();
        let approx = shards_miss_ratio_curve(
            &trace,
            ShardsConfig {
                sampling_rate: rate,
            },
        );
        let build_ms = t0.elapsed().as_millis();
        // Mean absolute error against the exact curve.
        let exact = lru_miss_ratio_curve(&trace);
        let mae: f64 = (1..=50)
            .map(|i| {
                let cr = i as f64 / 50.0;
                (exact.miss_ratio(cr) - approx.miss_ratio(cr)).abs()
            })
            .sum::<f64>()
            / 50.0;
        let cr = TieredCostModel::new(params, approx).optimal_cache_ratio();
        rows.push(vec![
            format!("SHARDS R={rate}"),
            format!("{build_ms}"),
            format!("{mae:.4}"),
            format!("{:.4}", cr.cache_ratio),
        ]);
    }
    print_table(
        "Ablation 5: SHARDS sampling rate (MRC accuracy vs cost)",
        &["variant", "build ms", "MAE vs exact", "CR* (Thm 5.1)"],
        &rows,
    );
}

/// 6. Replication protocol: write cost and failover exposure of sync /
///    quorum / async replication with 2 replicas.
fn ablation_replication_mode() {
    let n = 20_000 * scale();
    let mut rows = Vec::new();
    for (label, mode) in [
        ("sync", ReplicationMode::Sync),
        ("quorum", ReplicationMode::Quorum),
        ("async", ReplicationMode::Async),
    ] {
        let g = ReplicatedCache::with_mode(CacheConfig::with_capacity(256 << 20), 2, mode);
        let t0 = Instant::now();
        for i in 0..n {
            g.insert(
                Key::from(format!("k{i}")),
                Value::from(vec![b'x'; 100]),
                false,
            )
            .unwrap();
        }
        let write_dt = t0.elapsed();
        let lag = g.replication_lag();
        let t1 = Instant::now();
        g.drain_replication(usize::MAX).unwrap();
        let drain_ms = t1.elapsed().as_millis();
        rows.push(vec![
            label.into(),
            format!(
                "{:.0}",
                n as f64 / write_dt.as_secs_f64().max(1e-9) / 1000.0
            ),
            lag.to_string(),
            format!("{drain_ms}"),
        ]);
    }
    print_table(
        "Ablation 6: replication protocol (2 replicas)",
        &["variant", "write kQPS", "lag at ack", "drain ms"],
        &rows,
    );
}

/// 7. Deferred cache-fetching (§4.1.2): reading 1000 cold keys with
///    per-key gets vs one batched multi_get over a 200us-RTT network.
fn ablation_deferred_fetch() {
    let n_cold = 1_000 * scale();
    let setup = |name: &str| {
        let dir = bench_dir(name);
        let tb = TierBase::open(
            TierBaseConfig::builder(&dir)
                .cache_capacity(256 << 20)
                .policy(SyncPolicy::WriteThrough)
                .storage_rtt_us(200)
                .build(),
        )
        .unwrap();
        for i in 0..n_cold {
            tb.put(Key::from(format!("k{i:06}")), Value::from(vec![b'v'; 100]))
                .unwrap();
        }
        drop(tb);
        // Reopen cold.
        TierBase::open(
            TierBaseConfig::builder(&dir)
                .cache_capacity(256 << 20)
                .policy(SyncPolicy::WriteThrough)
                .storage_rtt_us(200)
                .build(),
        )
        .unwrap()
    };
    let keys: Vec<Key> = (0..n_cold).map(|i| Key::from(format!("k{i:06}"))).collect();

    let tb1 = setup("abl-defer-single");
    let t0 = Instant::now();
    for key in &keys {
        let _ = tb1.get(key).unwrap();
    }
    let single = t0.elapsed();

    let tb2 = setup("abl-defer-batch");
    let t1 = Instant::now();
    let got = tb2.multi_get(&keys).unwrap();
    let batched = t1.elapsed();
    assert!(got.iter().all(|v| v.is_some()));

    print_table(
        "Ablation 7: deferred cache-fetching (1000 cold keys, 200us RTT)",
        &["variant", "wall ms", "kQPS"],
        &[
            vec![
                "per-key get".into(),
                format!("{:.0}", single.as_millis()),
                format!("{:.0}", keys.len() as f64 / single.as_secs_f64() / 1000.0),
            ],
            vec![
                "multi_get (one RPC)".into(),
                format!("{:.0}", batched.as_millis()),
                format!("{:.0}", keys.len() as f64 / batched.as_secs_f64() / 1000.0),
            ],
        ],
    );
}
