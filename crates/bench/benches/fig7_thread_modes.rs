//! Figure 7: throughput and p99 latency of caching systems in
//! single-thread and multi-thread modes, YCSB load / A / B.
//!
//! Paper shape to reproduce: single-thread — TierBase ≈ Redis, both
//! ahead of Memcached/Dragonfly (which are built for multi-thread);
//! multi-thread — Memcached/Dragonfly pull ahead of a single TierBase
//! instance, while N single-thread TierBase instances beat one
//! multi-thread competitor on equal cores.

use std::sync::Arc;
use tb_baselines::{DragonflyLike, MemcachedLike, RedisLike};
use tb_bench::{bench_dir, budget, drive, print_table, BenchReport};
use tb_common::KvEngine;
use tb_elastic::ThreadMode;
use tb_workload::{Workload, WorkloadSpec};
use tierbase_core::{TierBase, TierBaseConfig};

fn tierbase(name: &str, mode: ThreadMode) -> TierBase {
    TierBase::open(
        TierBaseConfig::builder(bench_dir(name))
            .cache_capacity(256 << 20)
            .threading(mode)
            .build(),
    )
    .expect("open tierbase")
}

fn run_suite(
    rows: &mut Vec<Vec<String>>,
    report: &mut BenchReport,
    label: &str,
    engine: &dyn KvEngine,
    records: u64,
    ops: u64,
    clients: usize,
) {
    // Load phase measured separately (the paper reports load too).
    let mut w = Workload::new(WorkloadSpec::ycsb_a(records, 0));
    let load_ops = tb_workload::Trace::new(w.load_ops());
    let empty = tb_workload::Trace::default();
    let load = drive(engine, &empty, &load_ops, clients);
    for (wname, spec) in [
        ("A(50/50)", WorkloadSpec::ycsb_a(records, ops)),
        ("B(95/5)", WorkloadSpec::ycsb_b(records, ops)),
    ] {
        let mut w = Workload::new(spec);
        let _ = w.load_ops(); // engine already loaded; keep streams aligned
        let run = w.run_trace();
        let r = drive(engine, &tb_workload::Trace::default(), &run, clients);
        report.add_drive(format!("{label}/{wname}"), &r);
        rows.push(vec![
            label.into(),
            wname.into(),
            format!("{:.0}", r.qps / 1000.0),
            format!("{:.1}", r.p99_us),
        ]);
    }
    report.add_drive(format!("{label}/load"), &load);
    rows.push(vec![
        label.into(),
        "load".into(),
        format!("{:.0}", load.qps / 1000.0),
        format!("{:.1}", load.p99_us),
    ]);
}

fn main() {
    let records = budget(20_000);
    let ops = budget(60_000);
    let mut report = BenchReport::new("fig7_thread_modes");

    // --- single-thread mode (Figures 7a, 7b): 16 client threads -------
    let mut rows = Vec::new();
    {
        let tb = tierbase("fig7-tb-s", ThreadMode::Single);
        run_suite(&mut rows, &mut report, "TierBase-s", &tb, records, ops, 16);
    }
    {
        let redis = RedisLike::new();
        run_suite(&mut rows, &mut report, "Redis-s", &redis, records, ops, 16);
    }
    {
        // Single-thread variants of the multithread-native systems.
        let mc = MemcachedLike::new(256 << 20, 1);
        run_suite(&mut rows, &mut report, "Memcached-s", &mc, records, ops, 16);
    }
    {
        let df = DragonflyLike::new(1);
        run_suite(&mut rows, &mut report, "Dragonfly-s", &df, records, ops, 16);
    }
    print_table(
        "Figure 7(a,b): single-thread mode (kQPS, p99 us)",
        &["system", "workload", "kqps", "p99_us"],
        &rows,
    );

    // --- multi-thread mode (Figures 7c, 7d): 48 client threads --------
    let mut rows = Vec::new();
    {
        let tb = tierbase("fig7-tb-m", ThreadMode::Multi(4));
        run_suite(&mut rows, &mut report, "TierBase-m", &tb, records, ops, 48);
    }
    {
        let redis = RedisLike::new(); // Redis stays single-threaded
        run_suite(
            &mut rows,
            &mut report,
            "Redis-m(io)",
            &redis,
            records,
            ops,
            48,
        );
    }
    {
        let mc = MemcachedLike::new(256 << 20, 8);
        run_suite(&mut rows, &mut report, "Memcached-m", &mc, records, ops, 48);
    }
    {
        let df = DragonflyLike::new(4);
        run_suite(&mut rows, &mut report, "Dragonfly-m", &df, records, ops, 48);
    }
    // The paper's scaling argument: 4 single-thread TierBase instances
    // on the same 4 cores.
    {
        let instances: Vec<Arc<dyn KvEngine>> = (0..4)
            .map(|i| {
                Arc::new(tierbase(&format!("fig7-tb-s{i}"), ThreadMode::Single))
                    as Arc<dyn KvEngine>
            })
            .collect();
        let mut w = Workload::new(WorkloadSpec::ycsb_b(records, ops));
        let load = tb_workload::Trace::new(w.load_ops());
        let run = w.run_trace();
        // Shard the streams across instances by key hash.
        let pick =
            |key: &tb_common::Key| (tb_common::fx_hash(key.as_slice()) as usize) % instances.len();
        let mut per_load: Vec<Vec<tb_workload::Op>> = vec![vec![]; 4];
        for op in load.ops() {
            per_load[pick(op.key())].push(op.clone());
        }
        let mut per_run: Vec<Vec<tb_workload::Op>> = vec![vec![]; 4];
        for op in run.ops() {
            per_run[pick(op.key())].push(op.clone());
        }
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for (i, inst) in instances.iter().enumerate() {
                let lo = tb_workload::Trace::new(per_load[i].clone());
                let ru = tb_workload::Trace::new(per_run[i].clone());
                let inst = inst.clone();
                s.spawn(move || {
                    drive(inst.as_ref(), &lo, &ru, 12);
                });
            }
        });
        let qps = (load.len() + run.len()) as f64 / t0.elapsed().as_secs_f64();
        report.add_values("4xTierBase-s/B+load", &[("kqps", qps / 1000.0)]);
        rows.push(vec![
            "4xTierBase-s".into(),
            "B(95/5)+load".into(),
            format!("{:.0}", qps / 1000.0),
            "-".into(),
        ]);
    }
    print_table(
        "Figure 7(c,d): multi-thread mode (kQPS, p99 us)",
        &["system", "workload", "kqps", "p99_us"],
        &rows,
    );
    report.write().expect("write bench report");
}
