//! Range-scan API: per-key `get` loop vs one `EngineOp::Scan` through
//! `apply_batch` over a disk-resident working set.
//!
//! Shape to reproduce: a YCSB-E-style scan of `SCAN_LEN` consecutive
//! keys pays `SCAN_LEN` tree-lock passes and per-key block IO in the
//! get loop, while a batched scan stages the overlapping block ranges
//! once under a single level-state snapshot — with ~2 KiB values, two
//! rows share every 4 KiB block, so the scan fetches roughly half the
//! blocks the loop does, and dedups them against any point lookups in
//! the same batch.
//!
//! Three tables:
//!
//! * **scan path** — get loop vs batched scans (several `Scan` ops per
//!   `apply_batch`), printing the engine's `scan_blocks_read` share;
//! * **inline vs pooled** — the same scan schedule with
//!   `read_pool_threads ∈ {0, N}`: identical `blocks_read` (staging
//!   and dedup decide *what* is read, the pool only overlaps it), plus
//!   an each-block-once check: a batch that scans a range *and* point-
//!   reads keys inside it must not re-fetch the scanned blocks;
//! * **fan-out** — the same scans against one pipelined front-end
//!   shard vs `ClusterClient::scan` across 3 pipelined pooled nodes
//!   (fan-out to every owner, k-way merge, global re-limit).

use std::sync::Arc;
use tb_bench::{bench_dir, budget, print_table, BenchReport};
use tb_cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore, ServingMode};
use tb_common::{EngineOp, Key, KvEngine, OpOutcome, Value};
use tb_frontend::{Frontend, FrontendConfig};
use tb_lsm::{LsmConfig, LsmDb};

/// Rows per scan (YCSB-E's max_scan_length).
const SCAN_LEN: usize = 100;
/// Scans submitted per `apply_batch` call in the batched modes.
const SCANS_PER_BATCH: usize = 8;

fn key(i: u64) -> Key {
    Key::from(format!("sk{i:08}"))
}

/// ~2 KiB values: two rows per 4 KiB block, so block IO dominates and
/// staged-range dedup is visible in the counters.
fn value(i: u64) -> Value {
    Value::from(format!("value-{i}-{}", "s".repeat(2000)))
}

/// Deterministic xorshift so every mode replays the same scan schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Scan schedule: `[start, end)` ranges of `SCAN_LEN` consecutive keys
/// at uniform starts, grouped into batches of `SCANS_PER_BATCH`.
fn schedule(records: u64, scans: u64) -> Vec<Vec<(Key, Key)>> {
    let mut rng = Rng(0x5eed_5ca8);
    let mut batches = Vec::new();
    let mut remaining = scans;
    while remaining > 0 {
        let n = SCANS_PER_BATCH.min(remaining as usize);
        let batch = (0..n)
            .map(|_| {
                let start = rng.next() % records.saturating_sub(SCAN_LEN as u64).max(1);
                (key(start), key(start + SCAN_LEN as u64))
            })
            .collect();
        batches.push(batch);
        remaining -= n as u64;
    }
    batches
}

fn scan_ops(batch: &[(Key, Key)]) -> Vec<EngineOp> {
    batch
        .iter()
        .map(|(start, end)| EngineOp::Scan {
            start: start.clone(),
            end: Some(end.clone()),
            limit: SCAN_LEN,
        })
        .collect()
}

fn main() {
    let records = budget(20_000);
    let scans = budget(4_000);
    let mut report = BenchReport::new("scan_api");

    // Disk-resident working set: load, then flush everything out of
    // the memtable so each scan must reach SSTable blocks.
    let dir = bench_dir("scan-api");
    let db = Arc::new(LsmDb::open(LsmConfig::new(&dir)).expect("open lsm"));
    for i in 0..records {
        db.put(key(i), value(i)).unwrap();
    }
    db.flush().unwrap();

    let batches = schedule(records, scans);
    let rows_expected = scans * SCAN_LEN as u64;
    let mut rows = Vec::new();
    let mut loop_krps = 0.0;
    for batched in [false, true] {
        let before = KvEngine::batch_read_stats(db.as_ref());
        let t0 = std::time::Instant::now();
        let mut fetched = 0u64;
        for batch in &batches {
            if batched {
                // One submission per batch: every scan's block ranges
                // stage into the shared candidate arena and dedup.
                for outcome in LsmDb::apply_batch(&db, scan_ops(batch)) {
                    match outcome {
                        Ok(OpOutcome::Range(pairs)) => fetched += pairs.len() as u64,
                        other => panic!("unexpected outcome {other:?}"),
                    }
                }
            } else {
                // The old shape: a scan is a client-side get loop over
                // the consecutive keys, each paying its own pass.
                for (start, _) in batch {
                    let base: u64 = std::str::from_utf8(&start.as_slice()[2..])
                        .unwrap()
                        .parse()
                        .unwrap();
                    for j in 0..SCAN_LEN as u64 {
                        if db.get(&key(base + j)).unwrap().is_some() {
                            fetched += 1;
                        }
                    }
                }
            }
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(fetched, rows_expected, "every scheduled row was loaded");
        let after = KvEngine::batch_read_stats(db.as_ref());
        let krps = fetched as f64 / elapsed / 1000.0;
        if !batched {
            loop_krps = krps;
        }
        report.add_values(
            if batched {
                "apply_batch-scan"
            } else {
                "get-loop"
            },
            &[
                ("krows_per_s", krps),
                (
                    "blocks_read",
                    (after.blocks_read - before.blocks_read) as f64,
                ),
                (
                    "scan_blocks",
                    (after.scan_blocks_read - before.scan_blocks_read) as f64,
                ),
                (
                    "dedup_hits",
                    (after.block_dedup_hits - before.block_dedup_hits) as f64,
                ),
            ],
        );
        rows.push(vec![
            if batched {
                "apply_batch scan"
            } else {
                "get-loop"
            }
            .to_string(),
            format!("{krps:.1}"),
            format!("{:.2}x", krps / loop_krps),
            format!("{}", after.blocks_read - before.blocks_read),
            format!("{}", after.scan_blocks_read - before.scan_blocks_read),
            format!("{}", after.block_dedup_hits - before.block_dedup_hits),
            format!("{}", after.scans - before.scans),
        ]);
    }
    print_table(
        "Scan API: get loop vs apply_batch scans (disk-resident LSM working set)",
        &[
            "path",
            "krows/s",
            "vs-loop",
            "blocks_read",
            "scan_blocks",
            "dedup_hits",
            "scans",
        ],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&dir);

    pooled_scan_pass(&mut report);
    fanout_scan(&mut report);
    report.write().expect("write bench report");
}

/// Inline vs pooled completion pass over the same scan schedule. Same
/// staging, same dedup: `blocks_read` must match exactly; only the
/// wall clock moves. Also proves each needed block is fetched at most
/// once per batch: a batch that scans a range and then point-reads
/// every fifth key inside it stages no extra block fetches — the point
/// slots resolve from the blocks the scan already staged.
fn pooled_scan_pass(report: &mut BenchReport) {
    let records = budget(10_000);
    let scans = budget(2_000);
    let dir = bench_dir("scan-api-pool");
    {
        let db = LsmDb::open(LsmConfig::new(&dir)).expect("open lsm");
        for i in 0..records {
            db.put(key(i), value(i)).unwrap();
        }
        db.flush().unwrap();
    }

    let batches = schedule(records, scans);
    let mut rows = Vec::new();
    let mut inline_krps = 0.0;
    let mut inline_blocks = 0;
    for pool_threads in [0usize, 3] {
        let mut config = LsmConfig::new(&dir);
        config.read_pool_threads = pool_threads;
        let db = LsmDb::open(config).expect("reopen lsm");
        let before = KvEngine::batch_read_stats(&db);
        let t0 = std::time::Instant::now();
        let mut fetched = 0u64;
        for batch in &batches {
            for outcome in db.apply_batch(scan_ops(batch)) {
                match outcome {
                    Ok(OpOutcome::Range(pairs)) => fetched += pairs.len() as u64,
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(fetched, scans * SCAN_LEN as u64, "every scheduled row");
        let after = KvEngine::batch_read_stats(&db);
        let blocks = after.blocks_read - before.blocks_read;
        let krps = fetched as f64 / elapsed / 1000.0;
        if pool_threads == 0 {
            inline_krps = krps;
            inline_blocks = blocks;
        } else {
            // Staging decides what is read; the pool only overlaps it.
            assert_eq!(
                blocks, inline_blocks,
                "pooled scan pass read a different block set than inline"
            );
        }

        // Each-block-once check: scan a range, then point-read keys
        // inside it *in the same batch* — the point lookups must ride
        // the blocks the scan staged instead of re-fetching them.
        let mixed_start = 0u64;
        let mut ops = vec![EngineOp::Scan {
            start: key(mixed_start),
            end: Some(key(mixed_start + SCAN_LEN as u64)),
            limit: SCAN_LEN,
        }];
        ops.extend(
            (0..SCAN_LEN as u64)
                .step_by(5)
                .map(|j| EngineOp::Get(key(mixed_start + j))),
        );
        let solo_blocks = {
            let b = KvEngine::batch_read_stats(&db);
            db.apply_batch(scan_ops(&[(
                key(mixed_start),
                key(mixed_start + SCAN_LEN as u64),
            )]))
            .pop()
            .unwrap()
            .unwrap();
            KvEngine::batch_read_stats(&db).blocks_read - b.blocks_read
        };
        let b = KvEngine::batch_read_stats(&db);
        for outcome in db.apply_batch(ops) {
            outcome.unwrap();
        }
        let mixed = KvEngine::batch_read_stats(&db);
        let mixed_blocks = mixed.blocks_read - b.blocks_read;
        assert!(
            mixed_blocks <= solo_blocks,
            "point reads inside a scanned range re-fetched blocks: \
             scan-only {solo_blocks}, scan+points {mixed_blocks}"
        );
        assert!(
            mixed.block_dedup_hits > b.block_dedup_hits,
            "point reads inside a scanned range did not dedup"
        );

        report.add_values(
            format!("completion-pool{pool_threads}"),
            &[
                ("krows_per_s", krps),
                ("blocks_read", blocks as f64),
                (
                    "pool_fetches",
                    (after.parallel_fetches - before.parallel_fetches) as f64,
                ),
            ],
        );
        rows.push(vec![
            if pool_threads == 0 {
                "inline completion".into()
            } else {
                format!("read pool ({pool_threads} threads)")
            },
            format!("{krps:.1}"),
            format!("{:.2}x", krps / inline_krps),
            format!("{blocks}"),
            format!("{}", after.parallel_fetches - before.parallel_fetches),
        ]);
    }
    print_table(
        "Scan completion: inline vs shard read pool (each block once per batch)",
        &[
            "completion",
            "krows/s",
            "vs-inline",
            "blocks_read",
            "pool_fetches",
        ],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same scans against one pipelined front-end shard vs
/// `ClusterClient::scan` across 3 pipelined pooled nodes: hash
/// placement scatters every range over all owners, so the client fans
/// out, k-way-merges the per-node rows, and re-applies the limit.
fn fanout_scan(report: &mut BenchReport) {
    let records = budget(10_000);
    let scans = budget(1_000);
    let dir = bench_dir("scan-api-cluster");

    // Per-shard baseline: one node's worth of data behind one
    // pipelined front-end.
    let solo = {
        let mut config = LsmConfig::new(dir.join("solo"));
        config.read_pool_threads = 2;
        Arc::new(LsmDb::open(config).expect("open solo lsm"))
    };
    for i in 0..records {
        solo.put(key(i), value(i)).unwrap();
    }
    solo.flush().unwrap();
    let fe = Frontend::start(
        solo.clone() as Arc<dyn KvEngine>,
        FrontendConfig::with_shards(2),
    );

    let dbs: Vec<Arc<LsmDb>> = (0..3)
        .map(|i| {
            let mut config = LsmConfig::new(dir.join(format!("n{i}")));
            config.read_pool_threads = 2;
            Arc::new(LsmDb::open(config).expect("open node lsm"))
        })
        .collect();
    let nodes = dbs
        .iter()
        .enumerate()
        .map(|(i, db)| {
            NodeStore::with_serving_mode(
                NodeId(i as u32),
                db.clone() as Arc<dyn KvEngine>,
                ServingMode::Pipelined(FrontendConfig::with_shards(2)),
            )
        })
        .collect();
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(1, nodes).expect("bootstrap"));
    let client = ClusterClient::connect(coordinators);
    for i in 0..records {
        client.put(key(i), value(i)).unwrap();
    }
    for db in &dbs {
        db.flush().unwrap();
    }

    let batches = schedule(records, scans);
    let mut rows = Vec::new();
    let mut fe_krps = 0.0;
    for cluster in [false, true] {
        let t0 = std::time::Instant::now();
        let mut fetched = 0u64;
        for batch in &batches {
            for (start, end) in batch {
                let pairs = if cluster {
                    client.scan(start, Some(end), SCAN_LEN).unwrap()
                } else {
                    fe.scan(start, Some(end), SCAN_LEN).unwrap()
                };
                fetched += pairs.len() as u64;
            }
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(fetched, scans * SCAN_LEN as u64, "every scheduled row");
        let krps = fetched as f64 / elapsed / 1000.0;
        if !cluster {
            fe_krps = krps;
        }
        report.add_values(
            if cluster {
                "cluster-scan"
            } else {
                "frontend-scan"
            },
            &[("krows_per_s", krps)],
        );
        rows.push(vec![
            if cluster {
                "cluster scan (3 nodes, fan-out merge)".into()
            } else {
                "frontend scan (1 node)".into()
            },
            format!("{krps:.1}"),
            format!("{:.2}x", krps / fe_krps),
        ]);
    }
    fe.shutdown();
    print_table(
        "Scan fan-out: per-shard front-end vs cluster k-way merge",
        &["path", "krows/s", "vs-frontend"],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
