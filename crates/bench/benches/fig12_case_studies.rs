//! Figure 12: the two production case studies.
//!
//! Case 1 — User Info Service: ~32:1 read:write, highly skewed,
//! availability-critical. Paper shape: in-memory stores pay high space
//! cost; TierBase-PBC halves the footprint and wins overall (62% cost
//! cut vs TierBase-Raw).
//!
//! Case 2 — Capital Reconciliation: ~1:1 read:write with temporal skew
//! (recent data hot). Paper shape: tiered write-through/write-back
//! configurations dominate; write-back leads on this write-heavy mix;
//! overall TierBase cuts cost ≥37% vs Cassandra/HBase and ~70% vs its
//! own default (untiered) configuration.

use tb_baselines::{CassandraLike, DragonflyLike, HBaseLike, MemcachedLike, RedisLike};
use tb_bench::{bench_dir, measure_cost, print_cost_plane, scale, CostPoint};
use tb_common::KvEngine;
use tb_costmodel::WorkloadDemand;
use tb_elastic::ThreadMode;
use tb_workload::{DatasetKind, Workload, WorkloadSpec};
use tierbase_core::{CompressionChoice, PmemTuning, SyncPolicy, TierBase, TierBaseConfig};

fn tb(
    name: &str,
    dataset: DatasetKind,
    f: impl FnOnce(tierbase_core::TierBaseConfigBuilder) -> tierbase_core::TierBaseConfigBuilder,
) -> TierBase {
    let builder = TierBaseConfig::builder(bench_dir(name))
        .cache_capacity(512 << 20)
        .storage_rtt_us(200);
    let store = TierBase::open(f(builder).build()).expect("open");
    let d = dataset.build(7);
    let samples: Vec<Vec<u8>> = (0..512u64).map(|i| d.record(i)).collect();
    store.train_compression(&samples);
    store
}

fn run_case(
    title: &str,
    spec: WorkloadSpec,
    demand: WorkloadDemand,
    dataset: DatasetKind,
    logical_estimate: usize,
) {
    let mut points: Vec<CostPoint> = Vec::new();
    let cache_4x = (logical_estimate / 4).max(64 << 10);
    let systems: Vec<(&str, Box<dyn KvEngine>, f64)> = vec![
        (
            "Cassandra",
            Box::new(CassandraLike::open(&bench_dir("f12-cas")).unwrap()),
            1.0,
        ),
        (
            "HBase",
            Box::new(HBaseLike::open(&bench_dir("f12-hb")).unwrap()),
            1.0,
        ),
        ("Redis", Box::new(RedisLike::new()), 2.0),
        ("Memcached", Box::new(MemcachedLike::new(512 << 20, 8)), 2.0),
        ("Dragonfly", Box::new(DragonflyLike::new(4)), 2.0),
        ("TierBase-Raw", Box::new(tb("f12-raw", dataset, |b| b)), 2.0),
        (
            "TierBase-e",
            Box::new(tb("f12-e", dataset, |b| {
                b.threading(ThreadMode::Elastic(4))
            })),
            2.0,
        ),
        (
            "TierBase-PMem",
            Box::new(tb("f12-pm", dataset, |b| b.pmem(PmemTuning::default()))),
            2.0,
        ),
        (
            "TierBase-wt-4X",
            Box::new(tb("f12-wt", dataset, |b| {
                b.policy(SyncPolicy::WriteThrough).cache_capacity(cache_4x)
            })),
            1.0,
        ),
        (
            "TierBase-wb-4X",
            Box::new(tb("f12-wb", dataset, |b| {
                b.policy(SyncPolicy::WriteBack).cache_capacity(cache_4x)
            })),
            2.0,
        ),
        (
            "TierBase-PBC",
            Box::new(tb("f12-pbc", dataset, |b| {
                b.compression(CompressionChoice::Pbc)
            })),
            2.0,
        ),
    ];
    for (name, engine, replica_factor) in systems {
        let (load, run) = Workload::new(spec.clone()).generate();
        points.push(measure_cost(
            name,
            engine.as_ref(),
            &load,
            &run,
            16,
            &demand,
            4.0,
            replica_factor,
        ));
    }
    print_cost_plane(title, &points);
}

fn main() {
    let records = 15_000u64 * scale() as u64;
    let ops = 30_000u64 * scale() as u64;

    // Case 1: User Info Service — read-heavy, skewed, KV1 records.
    run_case(
        "Figure 12(a): User Info Service (97% read, zipfian)",
        WorkloadSpec::case1_user_info(records, ops),
        WorkloadDemand::new(80_000.0, 10.0),
        DatasetKind::Kv1,
        records as usize * 140,
    );

    // Case 2: Capital Reconciliation — 1:1 mix, temporal skew, KV2.
    run_case(
        "Figure 12(b): Capital Reconciliation (1:1 read/write, latest)",
        WorkloadSpec::case2_reconciliation(records, ops),
        WorkloadDemand::new(40_000.0, 10.0),
        DatasetKind::Kv2,
        records as usize * 120,
    );
}
