//! Table 3: break-even access intervals between TierBase
//! configurations (adapted Five-Minute Rule, Eq. 5).
//!
//! Paper shape to reproduce: a ladder of intervals —
//! Raw→PMem < Raw→PBC < PMem→PBC — partitioning access-interval space
//! into "use Raw", "use PMem", "use compression" regions. The paper's
//! absolute values (98 s / 184 s / 264 s) come from Ant's prices; ours
//! come from the simulator's measured CPQPS/CPGB, so only the ordering
//! and the recommendation logic are expected to match.

use tb_bench::{bench_dir, drive, print_table, scale};
use tb_common::KvEngine;
use tb_costmodel::{break_even_interval, BreakEvenTable, CostMetrics};
use tb_workload::{DatasetKind, Workload, WorkloadSpec};
use tierbase_core::{CompressionChoice, PmemTuning, TierBase, TierBaseConfig};

fn measure(name: &str, engine: &TierBase, records: u64, ops: u64) -> (String, CostMetrics) {
    let (load, run) = Workload::new(WorkloadSpec::case1_user_info(records, ops)).generate();
    let result = drive(engine, &load, &run, 16);
    let logical = tb_bench::logical_bytes(&load);
    let expansion = engine.resident_bytes() as f64 / logical.max(1) as f64;
    let max_space_gb = 4.0 / expansion.max(1e-9);
    (
        name.to_string(),
        CostMetrics::new(result.qps, max_space_gb, 1.0),
    )
}

fn main() {
    let records = 15_000u64 * scale() as u64;
    let ops = 30_000u64 * scale() as u64;
    let dataset = DatasetKind::Kv1.build(7);
    let samples: Vec<Vec<u8>> = (0..512u64).map(|i| dataset.record(i)).collect();
    let avg_record = samples.iter().map(|s| s.len()).sum::<usize>() as f64 / samples.len() as f64;

    let raw = TierBase::open(
        TierBaseConfig::builder(bench_dir("t3-raw"))
            .cache_capacity(512 << 20)
            .build(),
    )
    .unwrap();
    let pmem = TierBase::open(
        TierBaseConfig::builder(bench_dir("t3-pmem"))
            .cache_capacity(512 << 20)
            .pmem(PmemTuning {
                value_threshold: 64,
                cost_factor: 0.5,
            })
            .build(),
    )
    .unwrap();
    let pbc = TierBase::open(
        TierBaseConfig::builder(bench_dir("t3-pbc"))
            .cache_capacity(512 << 20)
            .compression(CompressionChoice::Pbc)
            .build(),
    )
    .unwrap();
    pbc.train_compression(&samples);

    let configs = vec![
        measure("Raw", &raw, records, ops),
        measure("PMem", &pmem, records, ops),
        measure("Compression(PBC)", &pbc, records, ops),
    ];

    // Pairwise break-even table.
    let table = BreakEvenTable::build(&configs, avg_record);
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            vec![
                r.fast.clone(),
                r.slow.clone(),
                format!("{:.0}", r.interval_seconds),
            ]
        })
        .collect();
    print_table(
        "Table 3: break-even intervals between configurations",
        &["fast storage", "slow storage", "interval (s)"],
        &rows,
    );

    // The Case-1 recommendation: mean access interval > every
    // break-even ⇒ compression (the paper measured >1018 s and chose
    // PBC).
    let max_interval = table
        .rows
        .iter()
        .map(|r| r.interval_seconds)
        .fold(0.0f64, f64::max);
    let observed = max_interval * 4.0; // cold, like the paper's 1018 s
    println!(
        "\nworkload mean access interval {observed:.0}s -> recommend: {}",
        table.recommend(observed).unwrap_or("n/a")
    );
    let hot = table
        .rows
        .iter()
        .map(|r| r.interval_seconds)
        .fold(f64::INFINITY, f64::min)
        * 0.5;
    println!(
        "hot workload ({hot:.0}s) -> recommend: {}",
        table.recommend(hot).unwrap_or("n/a")
    );

    // Show the raw Eq. 5 arithmetic for one pair for the record.
    let (_, raw_m) = &configs[0];
    let (_, pbc_m) = &configs[2];
    println!(
        "\nEq.5 check Raw->PBC: CPQPS_slow={:.3e} / (CPGB_fast={:.3e} x {avg_record:.0}B) = {:.0}s",
        pbc_m.cpqps(),
        raw_m.cpgb(),
        break_even_interval(pbc_m.cpqps(), raw_m.cpgb(), avg_record),
    );
}
