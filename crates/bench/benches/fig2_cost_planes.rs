//! Figure 2: the Space-Performance Cost Model planes (analytic).
//!
//! (a) Single-tier: a non-increasing trade-off frontier
//! `CPQPS = f(CPGB)`; the cost-optimal configuration sits where
//! PC = SC (Theorem 2.1).
//!
//! (b) Tiered: cache-tier cost as a function of the cache ratio under a
//! zipfian miss-ratio curve; the optimum is where the performance curve
//! (with miss penalty) crosses the space line (Theorem 5.1), and the
//! tiered optimum undercuts both single-tier corners.

use tb_bench::print_table;
use tb_costmodel::optimal::sweep_frontier;
use tb_costmodel::{
    optimal_config, zipfian_miss_ratio_curve, ConfigCost, TieredCostModel, TieredCostParams,
    WorkloadDemand,
};

fn main() {
    // ---- (a) single-tier frontier ------------------------------------
    let demand = WorkloadDemand::new(100_000.0, 100.0);
    let cpgb_points: Vec<f64> = (1..=40).map(|i| i as f64 * 0.01).collect();
    // Hyperbolic trade-off: compressing harder trades CPGB for CPQPS.
    let frontier = sweep_frontier(&cpgb_points, |cpgb| 2.5e-7 / cpgb, &demand);
    let rows: Vec<Vec<String>> = frontier
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.2}", c.performance_cost),
                format!("{:.2}", c.space_cost),
                format!("{:.2}", c.total()),
                if c.performance_cost > c.space_cost {
                    "perf-critical".into()
                } else {
                    "space-critical".into()
                },
            ]
        })
        .collect();
    print_table(
        "Figure 2(a): single-tier frontier (PC, SC, C=max, regime)",
        &["config", "PC", "SC", "C", "regime"],
        &rows,
    );
    let opt = optimal_config(&frontier).expect("non-empty frontier");
    println!(
        "--> optimal at {} with C={:.2}, |PC-SC|={:.3} (Theorem 2.1: balance point)",
        opt.name,
        opt.total(),
        opt.imbalance()
    );

    // ---- (b) tiered cache-ratio curve ---------------------------------
    let params = TieredCostParams {
        pc_cache: 1.0,
        pc_miss: 4.0,
        sc_cache: 20.0,
        pc_storage: 30.0,
        sc_storage: 2.0,
    };
    let model = TieredCostModel::new(params, zipfian_miss_ratio_curve(0.99));
    let mut rows = Vec::new();
    for i in 1..=20 {
        let cr = i as f64 * 0.05;
        let cache = model.cache_tier_cost(cr);
        rows.push(vec![
            format!("CR={cr:.2}"),
            format!("{:.3}", cache.miss_ratio),
            format!("{:.3}", cache.performance_cost),
            format!("{:.3}", cache.space_cost),
            format!("{:.3}", model.total_cost(cr)),
        ]);
    }
    print_table(
        "Figure 2(b): tiered cost vs cache ratio (zipf 0.99)",
        &["point", "miss-ratio", "cache-PC", "cache-SC", "tiered-C"],
        &rows,
    );
    let opt = model.optimal_cache_ratio();
    println!(
        "--> Theorem 5.1 optimum: CR*={:.3} (MR={:.3}), cache cost {:.3}",
        opt.cache_ratio,
        opt.miss_ratio,
        opt.total()
    );
    let cache_only = ConfigCost::new("cache-only", params.pc_cache, params.sc_cache);
    let storage_only = ConfigCost::new("storage-only", params.pc_storage, params.sc_storage);
    println!(
        "tiered C={:.3} vs cache-only C={:.3} vs storage-only C={:.3} -> tiered wins: {}",
        model.total_cost(opt.cache_ratio),
        cache_only.total(),
        storage_only.total(),
        model.tiered_wins()
    );
}
