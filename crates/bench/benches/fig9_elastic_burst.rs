//! Figure 9: throughput timeline under a workload burst for
//! TierBase-s / TierBase-e / TierBase-m and Redis-s / Redis-m.
//!
//! Time-compressed replay of the paper's scenario: a calm period at a
//! throttled request rate, a burst of unthrottled load, then calm
//! again. Paper shape to reproduce: all systems serve the calm phases;
//! during the burst the single-thread systems cap near their one-core
//! limit while TierBase-e boosts to multi-thread throughput and drops
//! back afterwards.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tb_baselines::RedisLike;
use tb_bench::{bench_dir, print_table, BenchReport};
use tb_cluster::{NodeId, NodeStore};
use tb_common::{Key, KvEngine, Result, Value};
use tb_elastic::ThreadMode;
use tb_frontend::{Frontend, FrontendConfig};
use tb_lsm::{LsmConfig, LsmDb};
use tierbase_core::{TierBase, TierBaseConfig};

/// Phase durations, resolved once up front (the client hot loop must
/// not re-read the environment); `TB_BENCH_SMOKE` compresses the
/// timeline 5× so CI can execute the bench.
#[derive(Clone, Copy)]
struct Phases {
    calm_ms: u64,
    burst_ms: u64,
    tail_ms: u64,
    bucket_ms: u64,
}

impl Phases {
    fn resolve() -> Self {
        let scale = if tb_bench::smoke() { 5 } else { 1 };
        Self {
            calm_ms: 1500 / scale,
            burst_ms: 3000 / scale,
            tail_ms: 1500 / scale,
            bucket_ms: 500 / scale,
        }
    }

    fn total_ms(&self) -> u64 {
        self.calm_ms + self.burst_ms + self.tail_ms
    }
}

/// Throttled request rate during calm phases (ops/s across clients).
const CALM_RATE: u64 = 20_000;

/// In-memory replica sink: the ship-overhead rows charge the channel
/// (framing, ack, eager apply), not a second disk.
struct SinkEngine(parking_lot::Mutex<std::collections::BTreeMap<Key, Value>>);

fn sink_engine() -> Arc<dyn KvEngine> {
    Arc::new(SinkEngine(parking_lot::Mutex::new(Default::default())))
}

impl KvEngine for SinkEngine {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        Ok(self.0.lock().get(key).cloned())
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.0.lock().insert(key, value);
        Ok(())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        self.0.lock().remove(key);
        Ok(())
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        "sink".into()
    }
}

/// A data node viewed as a plain engine, so the burst timeline can run
/// over the replicated write path (every put shipped to the replica).
struct ReplicatedNode(NodeStore);

impl KvEngine for ReplicatedNode {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.0.get(key)
    }
    fn put(&self, key: Key, value: Value) -> Result<()> {
        self.0.put(key, value).map(|_| ())
    }
    fn delete(&self, key: &Key) -> Result<()> {
        self.0.delete(key).map(|_| ())
    }
    fn resident_bytes(&self) -> u64 {
        0
    }
    fn label(&self) -> String {
        format!("repl<{}>", self.0.engine_label())
    }
}

/// Single-writer put rate in kops/s (one writer isolates the per-write
/// ship cost from `NodeStore`'s write-order serialization, which the
/// multi-client timeline rows surface separately).
fn put_rate(engine: &dyn KvEngine, ops: u64) -> f64 {
    let started = Instant::now();
    for i in 0..ops {
        engine
            .put(
                Key::from(format!("sh{}", i % 4096)),
                Value::from(vec![b'v'; 100]),
            )
            .unwrap();
    }
    ops as f64 / started.elapsed().as_secs_f64() / 1000.0
}

fn timeline(engine: Arc<dyn KvEngine>, clients: usize, phases: Phases) -> Vec<f64> {
    // Preload a small hot set.
    for i in 0..1000 {
        engine
            .put(Key::from(format!("hot{i}")), Value::from(vec![b'v'; 100]))
            .unwrap();
    }
    let total_ms = phases.total_ms();
    let done = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let mut handles = Vec::new();
    for t in 0..clients {
        let engine = engine.clone();
        let done = done.clone();
        let completed = completed.clone();
        handles.push(std::thread::spawn(move || {
            let mut i = t as u64;
            while !done.load(Ordering::Relaxed) {
                let elapsed = started.elapsed().as_millis() as u64;
                let in_burst =
                    (phases.calm_ms..phases.calm_ms + phases.burst_ms).contains(&elapsed);
                let key = Key::from(format!("hot{}", i % 1000));
                if i.is_multiple_of(10) {
                    let _ = engine.put(key, Value::from(vec![b'v'; 100]));
                } else {
                    let _ = engine.get(&key);
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i += 1;
                if !in_burst {
                    // Throttle: clients collectively target CALM_RATE.
                    std::thread::sleep(Duration::from_micros(
                        1_000_000 * clients as u64 / CALM_RATE,
                    ));
                }
            }
        }));
    }

    // Sample per-bucket throughput.
    let mut series = Vec::new();
    let mut last = 0u64;
    for _ in 0..(total_ms / phases.bucket_ms) {
        std::thread::sleep(Duration::from_millis(phases.bucket_ms));
        let now = completed.load(Ordering::Relaxed);
        series.push((now - last) as f64 / (phases.bucket_ms as f64 / 1000.0));
        last = now;
    }
    done.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    series
}

fn main() {
    let systems: Vec<(&str, Arc<dyn KvEngine>)> = vec![
        (
            "TierBase-s",
            Arc::new(
                TierBase::open(
                    TierBaseConfig::builder(bench_dir("fig9-tb-s"))
                        .threading(ThreadMode::Multi(1))
                        .build(),
                )
                .unwrap(),
            ),
        ),
        (
            "TierBase-e",
            Arc::new(
                TierBase::open(
                    TierBaseConfig::builder(bench_dir("fig9-tb-e"))
                        .threading(ThreadMode::Elastic(4))
                        .build(),
                )
                .unwrap(),
            ),
        ),
        (
            "TierBase-m",
            Arc::new(
                TierBase::open(
                    TierBaseConfig::builder(bench_dir("fig9-tb-m"))
                        .threading(ThreadMode::Multi(4))
                        .build(),
                )
                .unwrap(),
            ),
        ),
        ("Redis-s", Arc::new(RedisLike::new())),
        (
            // TierBase-e behind a replicated data node: every put is
            // shipped (LSN-framed) to an in-memory replica before ack.
            "TierBase-e+repl",
            Arc::new(ReplicatedNode(
                NodeStore::new(
                    NodeId(0),
                    Arc::new(
                        TierBase::open(
                            TierBaseConfig::builder(bench_dir("fig9-tb-e-repl"))
                                .threading(ThreadMode::Elastic(4))
                                .build(),
                        )
                        .unwrap(),
                    ),
                )
                .with_replica(sink_engine()),
            )),
        ),
    ];

    let phases = Phases::resolve();
    let mut report = BenchReport::new("fig9_elastic_burst");
    let mut rows = Vec::new();
    for (name, engine) in systems {
        let series = timeline(engine, 16, phases);
        // Per-phase mean throughput: the burst buckets sit between the
        // calm lead-in and the tail.
        let per_phase = |lo_ms: u64, hi_ms: u64| {
            let lo = (lo_ms / phases.bucket_ms) as usize;
            let hi = ((hi_ms / phases.bucket_ms) as usize).min(series.len());
            let slice = &series[lo..hi];
            slice.iter().sum::<f64>() / slice.len().max(1) as f64 / 1000.0
        };
        report.add_values(
            name,
            &[
                ("calm_kqps", per_phase(0, phases.calm_ms)),
                (
                    "burst_kqps",
                    per_phase(phases.calm_ms, phases.calm_ms + phases.burst_ms),
                ),
                (
                    "tail_kqps",
                    per_phase(phases.calm_ms + phases.burst_ms, phases.total_ms()),
                ),
            ],
        );
        let mut row = vec![name.to_string()];
        row.extend(series.iter().map(|q| format!("{:.0}", q / 1000.0)));
        rows.push(row);
    }

    let buckets = phases.total_ms() / phases.bucket_ms;
    let mut header: Vec<String> = vec!["system".into()];
    for b in 0..buckets {
        header.push(format!(
            "t{:.1}s",
            (b + 1) as f64 * phases.bucket_ms as f64 / 1000.0
        ));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let title = format!(
        "Figure 9: throughput timeline under burst (kQPS per {:.1}s bucket; burst at {:.1}s-{:.1}s)",
        phases.bucket_ms as f64 / 1000.0,
        phases.calm_ms as f64 / 1000.0,
        (phases.calm_ms + phases.burst_ms) as f64 / 1000.0
    );
    print_table(&title, &header_refs, &rows);

    // --- replication ship overhead on the group-commit write path ----
    // Same pipelined front-end (group commit over an LSM engine) bare
    // vs. behind a replicated node, one writer each: the delta is the
    // per-write cost of framing + shipping + replica ack. Budget from
    // the PR-8 failover work: < 10%.
    let ops = if tb_bench::smoke() { 20_000 } else { 100_000 };
    let base_db: Arc<dyn KvEngine> =
        Arc::new(LsmDb::open(LsmConfig::new(bench_dir("fig9-gc-base"))).unwrap());
    let base_fe = Frontend::start(base_db, FrontendConfig::with_shards(2));
    put_rate(&base_fe, ops / 10); // warm-up
    let base_kops = put_rate(&base_fe, ops);

    let repl_db: Arc<dyn KvEngine> =
        Arc::new(LsmDb::open(LsmConfig::new(bench_dir("fig9-gc-repl"))).unwrap());
    let repl_fe: Arc<dyn KvEngine> =
        Arc::new(Frontend::start(repl_db, FrontendConfig::with_shards(2)));
    let repl_node =
        ReplicatedNode(NodeStore::new(NodeId(0), repl_fe.clone()).with_replica(sink_engine()));
    put_rate(&repl_node, ops / 10); // warm-up
    let repl_kops = put_rate(&repl_node, ops);

    let overhead_pct = (1.0 - repl_kops / base_kops) * 100.0;
    report.add_values(
        "repl_ship_overhead",
        &[
            ("group_commit_kqps", base_kops),
            ("replicated_kqps", repl_kops),
            ("ship_overhead_pct", overhead_pct),
        ],
    );
    print_table(
        "Replication ship overhead (single-writer puts over the group-commit path)",
        &["path", "kops/s"],
        &[
            vec!["group-commit".into(), format!("{base_kops:.1}")],
            vec!["group-commit + ship".into(), format!("{repl_kops:.1}")],
            vec!["overhead %".into(), format!("{overhead_pct:.1}")],
        ],
    );

    report.write().expect("write bench report");
}
