//! Table 2: compression techniques on Cities / KV1 / KV2 —
//! value compression ratio, overall (key+value) ratio, and SET/GET
//! throughput for PBC, Zstd-d (tzstd+dict), Zstd-b (tzstd no dict)
//! against Raw.
//!
//! Paper shape to reproduce: PBC best ratio on every dataset (biggest
//! margin on machine-generated KV data); pre-trained beats untrained;
//! Raw fastest SET; PBC GET approaches Raw and beats Zstd-d.

use std::time::Instant;
use tb_bench::{print_table, scale};
use tb_compress::{
    measure_ratio, train_dictionary, Compressor, Pbc, PbcConfig, RawCompressor, Tzstd, TzstdLevel,
};
use tb_workload::DatasetKind;

fn throughput_ops(c: &dyn Compressor, records: &[Vec<u8>]) -> (f64, f64) {
    // SET: compress each record. GET: decompress each compressed record.
    let compressed: Vec<Vec<u8>> = records.iter().map(|r| c.compress(r)).collect();
    let t0 = Instant::now();
    for r in records {
        std::hint::black_box(c.compress(r));
    }
    let set_ops = records.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let t1 = Instant::now();
    for z in &compressed {
        std::hint::black_box(c.decompress(z).expect("roundtrip"));
    }
    let get_ops = records.len() as f64 / t1.elapsed().as_secs_f64().max(1e-9);
    (set_ops, get_ops)
}

fn main() {
    let n = 4000 * scale();
    let mut rows = Vec::new();

    for kind in [DatasetKind::Cities, DatasetKind::Kv1, DatasetKind::Kv2] {
        let dataset = kind.build(42);
        let train: Vec<Vec<u8>> = (0..512u64).map(|i| dataset.record(i)).collect();
        let test: Vec<Vec<u8>> = (1000..1000 + n as u64).map(|i| dataset.record(i)).collect();
        let avg_key_len = 16usize; // "userNNNNNNNNNNNN"-style keys

        let raw = RawCompressor;
        let zstd_b = Tzstd::new(TzstdLevel(1));
        let zstd_d = Tzstd::with_dict(TzstdLevel(1), train_dictionary(&train, 8192));
        let pbc = Pbc::train(&train, &PbcConfig::default());

        let candidates: Vec<(&str, &dyn Compressor)> = vec![
            ("PBC", &pbc),
            ("Zstd-d", &zstd_d),
            ("Zstd-b", &zstd_b),
            ("Raw", &raw),
        ];
        for (name, c) in candidates {
            let ratio = measure_ratio(c, &test);
            // Overall ratio includes the (incompressible) key bytes.
            let avg_val: f64 =
                test.iter().map(|t| t.len()).sum::<usize>() as f64 / test.len() as f64;
            let overall = (avg_key_len as f64 + ratio * avg_val) / (avg_key_len as f64 + avg_val);
            let (set_ops, get_ops) = throughput_ops(c, &test);
            rows.push(vec![
                dataset.name().into(),
                name.into(),
                format!("{ratio:.4}"),
                format!("{overall:.4}"),
                format!("{set_ops:.0}"),
                format!("{get_ops:.0}"),
            ]);
        }
    }

    print_table(
        "Table 2: compression techniques",
        &[
            "dataset",
            "method",
            "comp_ratio",
            "overall_ratio",
            "SET ops/s",
            "GET ops/s",
        ],
        &rows,
    );
}
