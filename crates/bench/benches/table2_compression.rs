//! Table 2, wired through the storage tier: block-compression codecs
//! (`none`, `lz`, `pbc`, `dict`) running end-to-end through the LSM
//! engine's SSTable pipeline — YCSB-A and YCSB-B throughput, on-disk
//! footprint, and the data-region compression ratio per codec.
//!
//! Unlike the earlier compressor-level microbench, every number here
//! crosses the real block path: flushes frame-encode blocks (sampling
//! a dictionary per table where the codec trains one), compactions
//! re-sample and re-encode, and every read decodes + CRC-verifies a
//! frame before the key search.
//!
//! Shape to reproduce: the trained codecs (`dict`, `pbc`) shrink the
//! on-disk data region hardest on the machine-templated values, `lz`
//! sits between them and `none`, and read-heavy YCSB-B pays a modest
//! decompression toll against raw.

use tb_bench::{bench_dir, budget, drive, print_table, BenchReport};
use tb_common::KvEngine;
use tb_compress::BlockCodec;
use tb_lsm::{LsmConfig, LsmDb};
use tb_workload::{Trace, Workload, WorkloadSpec};

/// Total bytes of SSTables currently on disk for one store.
fn sst_bytes(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "sst"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

struct CodecRun {
    qps_a: f64,
    qps_b: f64,
    data_bytes_a: u64,
    disk_bytes: u64,
}

fn main() {
    let mut report = BenchReport::new("table2_compression");
    let records = budget(20_000);
    let ops = budget(40_000);

    let mut rows = Vec::new();
    let mut baseline: Option<CodecRun> = None;
    let mut dict_run: Option<CodecRun> = None;
    for codec in BlockCodec::ALL {
        let dir = bench_dir(&format!("table2-{}", codec.name()));
        let mut config = LsmConfig::new(&dir);
        config.sst.codec = codec;
        // Small memtable: the workload must actually live in (and be
        // served from) compressed tables, with compactions re-encoding
        // along the way — not sit in memory.
        config.memtable_bytes = 64 << 10;
        let db = LsmDb::open(config).expect("open lsm");

        // --- YCSB-A: load + 50/50 read/update ------------------------
        let mut wa = Workload::new(WorkloadSpec::ycsb_a(records, ops));
        let load = Trace::new(wa.load_ops());
        let run_a = wa.run_trace();
        let a = drive(&db, &load, &run_a, 8);
        // Push the residual memtable out so the on-disk snapshot after
        // phase A covers the whole dataset for every codec.
        db.flush().expect("flush after ycsb-a");
        let after_a = KvEngine::batch_read_stats(&db);
        let disk_a = sst_bytes(&dir);

        // --- YCSB-B: 95/5 over the same resident store ---------------
        let mut wb = Workload::new(WorkloadSpec::ycsb_b(records, ops));
        let _ = wb.load_ops(); // dataset already resident from phase A
        let run_b = wb.run_trace();
        let b = drive(&db, &Trace::default(), &run_b, 8);

        let stats = KvEngine::batch_read_stats(&db);
        // Cumulative data-region ratio across every flush + compaction:
        // the same deterministic trace feeds every codec, so the raw
        // side is identical and the ratios are directly comparable.
        let ratio = stats.compressed_bytes_written as f64 / stats.uncompressed_bytes_written as f64;
        let run = CodecRun {
            qps_a: a.qps,
            qps_b: b.qps,
            data_bytes_a: after_a.compressed_bytes_written,
            disk_bytes: disk_a,
        };
        let base = baseline.as_ref().unwrap_or(&run);
        report.add_drive(format!("ycsb_a/{}", codec.name()), &a);
        report.add_drive(format!("ycsb_b/{}", codec.name()), &b);
        report.add_values(
            format!("disk/{}", codec.name()),
            &[
                ("sst_bytes", run.disk_bytes as f64),
                ("data_bytes_ycsb_a", run.data_bytes_a as f64),
                ("raw_bytes_written", stats.uncompressed_bytes_written as f64),
                ("data_bytes_written", stats.compressed_bytes_written as f64),
                ("blocks_compressed", stats.blocks_compressed as f64),
                ("blocks_decompressed", stats.blocks_decompressed as f64),
                ("ratio", ratio),
                (
                    "data_bytes_a_vs_none",
                    run.data_bytes_a as f64 / base.data_bytes_a as f64,
                ),
                ("qps_a_vs_none", run.qps_a / base.qps_a),
                ("qps_b_vs_none", run.qps_b / base.qps_b),
            ],
        );
        rows.push(vec![
            codec.name().into(),
            format!("{:.1}", a.qps / 1000.0),
            format!("{:.1}", b.qps / 1000.0),
            format!("{:.2}", run.disk_bytes as f64 / (1 << 20) as f64),
            format!("{ratio:.3}"),
            format!("{:.2}x", run.data_bytes_a as f64 / base.data_bytes_a as f64),
            format!("{}", stats.block_decode_errors),
        ]);
        assert_eq!(stats.block_decode_errors, 0, "clean bench decoded dirty");

        if codec == BlockCodec::None {
            baseline = Some(run);
        } else if codec == BlockCodec::Dict {
            dict_run = Some(run);
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The acceptance bar for the refactor: the trained dictionary codec
    // must cut the YCSB-A data-region footprint by ≥ 25% against raw.
    let (none, dict) = (baseline.expect("none ran"), dict_run.expect("dict ran"));
    let reduction = 1.0 - dict.data_bytes_a as f64 / none.data_bytes_a as f64;
    assert!(
        reduction >= 0.25,
        "dict data-region reduction {:.1}% < 25% (none {} B, dict {} B)",
        reduction * 100.0,
        none.data_bytes_a,
        dict.data_bytes_a
    );

    print_table(
        "Table 2: block codecs through the LSM pipeline (YCSB-A/B)",
        &[
            "codec",
            "A kqps",
            "B kqps",
            "disk MiB",
            "data ratio",
            "A bytes vs none",
            "decode errs",
        ],
        &rows,
    );
    report.write().expect("write bench report");
}
