//! Criterion micro-benchmarks for the hot data-path primitives:
//! cache shard ops, LSM point ops, compressors, hashing, histograms.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tb_cache::{CacheConfig, ShardedCache};
use tb_common::{fx_hash, Histogram, Key, Value};
use tb_compress::{train_dictionary, Compressor, Pbc, PbcConfig, Tzstd, TzstdLevel};
use tb_lsm::{LsmConfig, LsmDb};
use tb_workload::DatasetKind;

fn bench_cache(c: &mut Criterion) {
    let cache = ShardedCache::new(CacheConfig::with_capacity(256 << 20));
    let keys: Vec<Key> = (0..10_000)
        .map(|i| Key::from(format!("key-{i:08}")))
        .collect();
    for k in &keys {
        cache
            .insert(k.clone(), Value::from(vec![b'v'; 128]), false)
            .unwrap();
    }
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(cache.get(&keys[i]))
        })
    });
    group.bench_function("insert", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            cache
                .insert(keys[i].clone(), Value::from(vec![b'v'; 128]), false)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_lsm(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("tb-micro-lsm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = LsmDb::open(LsmConfig::new(dir)).unwrap();
    let keys: Vec<Key> = (0..10_000)
        .map(|i| Key::from(format!("key-{i:08}")))
        .collect();
    for k in &keys {
        db.put(k.clone(), Value::from(vec![b'v'; 128])).unwrap();
    }
    db.flush().unwrap();
    let mut group = c.benchmark_group("lsm");
    group.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    group.bench_function("get", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(db.get(&keys[i]).unwrap())
        })
    });
    group.bench_function("put", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            db.put(keys[i].clone(), Value::from(vec![b'w'; 128]))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_compressors(c: &mut Criterion) {
    let dataset = DatasetKind::Kv1.build(5);
    let train: Vec<Vec<u8>> = (0..256u64).map(|i| dataset.record(i)).collect();
    let record = dataset.record(9999);
    let tz = Tzstd::new(TzstdLevel(1));
    let tzd = Tzstd::with_dict(TzstdLevel(1), train_dictionary(&train, 4096));
    let pbc = Pbc::train(&train, &PbcConfig::default());

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(record.len() as u64));
    for (name, comp) in [
        ("tzstd", &tz as &dyn Compressor),
        ("tzstd_dict", &tzd),
        ("pbc", &pbc),
    ] {
        group.bench_function(format!("{name}/compress"), |b| {
            b.iter(|| std::hint::black_box(comp.compress(&record)))
        });
        let compressed = comp.compress(&record);
        group.bench_function(format!("{name}/decompress"), |b| {
            b.iter_batched(
                || compressed.clone(),
                |z| std::hint::black_box(comp.decompress(&z).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    let key = b"user:123456789:profile";
    group.bench_function("fx_hash", |b| b.iter(|| std::hint::black_box(fx_hash(key))));
    let hist = Histogram::new();
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(v % 1_000_000)
        })
    });
    group.finish();
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    let counter = tb_obs::global().counter("micro_obs_probe");
    let histo = tb_obs::global().histogram("micro_obs_probe_ns");

    // The cost-discipline contract: with telemetry off, a timed site is
    // one relaxed load — `start()` returns `None` without reading the
    // clock, and `record_since(None)` is a no-op branch.
    tb_obs::set_enabled(false);
    group.bench_function("disabled_start", |b| {
        b.iter(|| std::hint::black_box(tb_obs::start()))
    });
    group.bench_function("disabled_timed_site", |b| {
        b.iter(|| {
            let t = tb_obs::start();
            histo.record_since(std::hint::black_box(t));
        })
    });
    group.bench_function("disabled_counter_add", |b| b.iter(|| counter.add(1)));

    tb_obs::set_enabled(true);
    group.bench_function("enabled_timed_site", |b| {
        b.iter(|| {
            let t = tb_obs::start();
            histo.record_since(std::hint::black_box(t));
        })
    });
    group.bench_function("enabled_counter_add", |b| b.iter(|| counter.add(1)));
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_lsm,
    bench_compressors,
    bench_primitives,
    bench_obs
);
criterion_main!(benches);
