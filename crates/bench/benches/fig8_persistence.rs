//! Figure 8: TierBase persistence mechanisms — WAL, WAL-PMem,
//! write-back, write-through — throughput and p99 latency on YCSB
//! load / A / B.
//!
//! Paper shape to reproduce: write-back ≫ write-through on write-heavy
//! work (deferred batching vs. a synchronous remote RPC per write);
//! WAL-PMem between them (per-transaction PMem persist beats the remote
//! RPC, loses to pure deferral); WAL above WAL-PMem (OS-buffered disk
//! appends, fsync deferred); write-through tail latency ~3× write-back.

use tb_bench::{bench_dir, drive, print_table, scale};
use tb_workload::{Trace, Workload, WorkloadSpec};
use tierbase_core::{PersistenceMode, SyncPolicy, TierBase, TierBaseConfig};

fn open(name: &str, policy: SyncPolicy, persistence: PersistenceMode) -> TierBase {
    TierBase::open(
        TierBaseConfig::builder(bench_dir(name))
            .cache_capacity(256 << 20)
            .policy(policy)
            .persistence(persistence)
            .pmem_ring_bytes(32 << 20)
            .storage_rtt_us(200) // same-DC RPC to the storage tier
            .build(),
    )
    .expect("open tierbase")
}

fn main() {
    let records = 10_000u64 * scale() as u64;
    let ops = 20_000u64 * scale() as u64;
    let mut rows = Vec::new();

    let configs: Vec<(&str, SyncPolicy, PersistenceMode)> = vec![
        ("WAL", SyncPolicy::InMemory, PersistenceMode::Wal),
        ("WAL-PMem", SyncPolicy::InMemory, PersistenceMode::WalPmem),
        ("write-back", SyncPolicy::WriteBack, PersistenceMode::None),
        (
            "write-through",
            SyncPolicy::WriteThrough,
            PersistenceMode::None,
        ),
    ];

    for (label, policy, persistence) in configs {
        let engine = open(&format!("fig8-{label}"), policy, persistence);

        // Load phase.
        let mut w = Workload::new(WorkloadSpec::ycsb_a(records, 0));
        let load_trace = Trace::new(w.load_ops());
        let load = drive(&engine, &Trace::default(), &load_trace, 16);
        rows.push(vec![
            label.into(),
            "load".into(),
            format!("{:.0}", load.qps / 1000.0),
            format!("{:.1}", load.p99_us),
        ]);

        for (wname, spec) in [
            ("A(50/50)", WorkloadSpec::ycsb_a(records, ops)),
            ("B(95/5)", WorkloadSpec::ycsb_b(records, ops)),
        ] {
            let mut w = Workload::new(spec);
            let _ = w.load_ops();
            let run = w.run_trace();
            let r = drive(&engine, &Trace::default(), &run, 16);
            rows.push(vec![
                label.into(),
                wname.into(),
                format!("{:.0}", r.qps / 1000.0),
                format!("{:.1}", r.p99_us),
            ]);
        }
    }

    print_table(
        "Figure 8: persistence mechanisms (kQPS, p99 us)",
        &["mechanism", "workload", "kqps", "p99_us"],
        &rows,
    );
}
