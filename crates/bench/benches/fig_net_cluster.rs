//! Network serving: socket pipelining vs per-op round trips, socket vs
//! in-process overhead, and a real multi-process cluster under YCSB.
//!
//! Shape to reproduce: a per-op socket client pays one round trip per
//! request, capping throughput near 1/RTT; the pipelined wire protocol
//! ships a burst per write and the server lowers it onto ONE
//! `apply_batch`, so the round trip and the group commit amortize
//! across the burst (TierBase §4.1.2's batched remote-tier round
//! trips, now across a process boundary). The cluster rows replay YCSB
//! through slot routing over three `tb-server` node processes,
//! including a mid-run node kill with replica promotion.

use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tb_bench::{bench_dir, budget, drive, print_table, BenchReport};
use tb_cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore};
use tb_common::{EngineOp, KvEngine};
use tb_frontend::{Frontend, FrontendConfig};
use tb_lsm::{LsmConfig, LsmDb};
use tb_server::{Server, ServerClient};
use tb_workload::{Op, Trace, Workload, WorkloadSpec};

/// Node-process mode: serve a pipelined front-end over an LSM engine
/// on the given Unix socket until stdin closes.
fn serve_node(sock: &str) {
    let dir = bench_dir(&format!("net-node-{}", std::process::id()));
    let db: Arc<dyn KvEngine> = Arc::new(LsmDb::open(LsmConfig::new(&dir)).expect("open lsm"));
    let fe = Arc::new(Frontend::start(db, FrontendConfig::with_shards(2)));
    let server = Server::bind_unix(sock, fe.clone()).expect("bind node socket");
    let mut sink = String::new();
    let _ = std::io::stdin().read_line(&mut sink);
    server.stop();
    fe.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn spawn_node(sock: &std::path::Path) -> Child {
    Command::new(std::env::current_exe().expect("current_exe"))
        .env("TB_NET_NODE", sock)
        .stdin(Stdio::piped())
        .spawn()
        .expect("spawn node process")
}

fn await_ready(sock: &std::path::Path) -> ServerClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(client) = ServerClient::connect_unix(sock) {
            if client.ping().is_ok() {
                return client;
            }
        }
        assert!(Instant::now() < deadline, "node never bound {sock:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn lower(op: &Op) -> EngineOp {
    match op {
        Op::Read { key } => EngineOp::Get(key.clone()),
        Op::Insert { key, value }
        | Op::Update { key, value }
        | Op::ReadModifyWrite { key, value } => EngineOp::Put(key.clone(), value.clone()),
        Op::Delete { key } => EngineOp::Delete(key.clone()),
        Op::Scan { start, end, limit } => EngineOp::Scan {
            start: start.clone(),
            end: Some(end.clone()),
            limit: *limit as usize,
        },
    }
}

/// Replays the run trace in bursts of `burst` ops per `apply_batch`
/// call — over a socket client that is one wire round trip per burst.
fn drive_bursts(engine: &dyn KvEngine, run: &Trace, burst: usize) -> (f64, usize) {
    let ops = run.ops();
    let mut errors = 0;
    let started = Instant::now();
    for chunk in ops.chunks(burst) {
        let batch: Vec<EngineOp> = chunk.iter().map(lower).collect();
        errors += engine
            .apply_batch(batch)
            .iter()
            .filter(|r| r.is_err())
            .count();
    }
    (
        ops.len() as f64 / started.elapsed().as_secs_f64().max(1e-9),
        errors,
    )
}

/// Replays a trace through the cluster client per-op, `threads` wide.
fn drive_cluster(client: &ClusterClient, trace: &Trace, threads: usize) -> (f64, usize) {
    let ops = trace.ops();
    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ops.len() {
                    return;
                }
                let ok = match &ops[i] {
                    Op::Read { key } => client.get(key).is_ok(),
                    Op::Insert { key, value } | Op::Update { key, value } => {
                        client.put(key.clone(), value.clone()).is_ok()
                    }
                    Op::Delete { key } => client.delete(key).is_ok(),
                    Op::ReadModifyWrite { key, value } => {
                        client.get(key).is_ok() && client.put(key.clone(), value.clone()).is_ok()
                    }
                    Op::Scan { start, end, limit } => {
                        client.scan(start, Some(end), *limit as usize).is_ok()
                    }
                };
                if !ok {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    (
        ops.len() as f64 / started.elapsed().as_secs_f64().max(1e-9),
        errors.load(Ordering::Relaxed),
    )
}

fn main() {
    if let Ok(sock) = std::env::var("TB_NET_NODE") {
        serve_node(&sock);
        return;
    }

    let records = budget(2_000);
    let ops = budget(10_000);
    let mut report = BenchReport::new("fig_net_cluster");
    let mut rows = Vec::new();

    // ---- one server: per-op vs pipelined vs in-process ---------------
    let dir = bench_dir("net-single");
    std::fs::create_dir_all(&dir).expect("bench dir");
    let sock = dir.join("tb.sock");
    let mut child = spawn_node(&sock);
    let client = await_ready(&sock);

    let (load, run) = Workload::new(WorkloadSpec::ycsb_b(records, ops)).generate();
    for op in load.ops() {
        tb_bench::apply_op(&client, op);
    }

    let per_op = drive(&client, &Trace::new(Vec::new()), &run, 1);
    rows.push(vec![
        "socket-per-op".into(),
        format!("{:.1}", per_op.qps / 1000.0),
        format!("{}", per_op.errors),
    ]);
    report.add_values(
        "socket_per_op",
        &[("qps", per_op.qps), ("errors", per_op.errors as f64)],
    );

    let (pipe_qps, pipe_errs) = drive_bursts(&client, &run, 64);
    rows.push(vec![
        "socket-pipelined(64)".into(),
        format!("{:.1}", pipe_qps / 1000.0),
        format!("{pipe_errs}"),
    ]);
    report.add_values(
        "socket_pipelined",
        &[("qps", pipe_qps), ("errors", pipe_errs as f64)],
    );

    let _ = child.kill();
    let _ = child.wait();

    // The same serving stack without the socket: quantifies the wire
    // overhead the pipeline has to amortize.
    let db: Arc<dyn KvEngine> =
        Arc::new(LsmDb::open(LsmConfig::new(dir.join("inproc"))).expect("open lsm"));
    let fe = Frontend::start(db, FrontendConfig::with_shards(2));
    for op in load.ops() {
        tb_bench::apply_op(&fe, op);
    }
    let (local_qps, local_errs) = drive_bursts(&fe, &run, 64);
    rows.push(vec![
        "in-process(64)".into(),
        format!("{:.1}", local_qps / 1000.0),
        format!("{local_errs}"),
    ]);
    report.add_values(
        "in_process",
        &[("qps", local_qps), ("errors", local_errs as f64)],
    );
    fe.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        pipe_qps > per_op.qps,
        "pipelining must beat per-op round trips ({pipe_qps:.0} vs {:.0})",
        per_op.qps
    );

    // ---- multi-process socket cluster under YCSB ---------------------
    let cdir = bench_dir("net-cluster");
    std::fs::create_dir_all(&cdir).expect("bench dir");
    let socks: Vec<_> = (0..3).map(|i| cdir.join(format!("n{i}.sock"))).collect();
    let mut children: Vec<Child> = socks.iter().map(|s| spawn_node(s)).collect();
    for sock in &socks {
        await_ready(sock);
    }
    let nodes: Vec<NodeStore> = socks
        .iter()
        .enumerate()
        .map(|(i, sock)| {
            let primary: Arc<dyn KvEngine> =
                Arc::new(ServerClient::connect_unix(sock).expect("connect"));
            let replica: Arc<dyn KvEngine> =
                Arc::new(LsmDb::open(LsmConfig::new(cdir.join(format!("r{i}")))).expect("replica"));
            NodeStore::new(NodeId(i as u32), primary).with_replica(replica)
        })
        .collect();
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(3, nodes).expect("bootstrap"));
    let cluster = ClusterClient::connect(coordinators.clone());

    let mut cluster_load: Option<Trace> = None;
    for (label, spec) in [
        ("ycsb-a", WorkloadSpec::ycsb_a(records, ops / 2)),
        ("ycsb-b", WorkloadSpec::ycsb_b(records, ops / 2)),
        ("ycsb-e", WorkloadSpec::ycsb_e(records, ops / 4)),
    ] {
        let (load, run) = Workload::new(spec).generate();
        if cluster_load.is_none() {
            drive_cluster(&cluster, &load, 4);
            cluster_load = Some(load);
        }
        let (qps, errors) = drive_cluster(&cluster, &run, 4);
        rows.push(vec![
            format!("cluster-{label}"),
            format!("{:.1}", qps / 1000.0),
            format!("{errors}"),
        ]);
        report.add_values(
            format!("cluster_{}", label.replace('-', "_")),
            &[("qps", qps), ("errors", errors as f64)],
        );
    }

    // ---- failover under load: kill a node process mid-replay ---------
    let (_, run) = Workload::new(WorkloadSpec::ycsb_a(records, ops / 2)).generate();
    let started = Instant::now();
    let half = run.ops().len() / 2;
    let (first, second) = (
        Trace::new(run.ops()[..half].to_vec()),
        Trace::new(run.ops()[half..].to_vec()),
    );
    let (_, errs_before) = drive_cluster(&cluster, &first, 4);
    let _ = children[1].kill();
    let _ = children[1].wait();
    let (_, errs_after) = drive_cluster(&cluster, &second, 4);
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let failover_qps = run.ops().len() as f64 / elapsed;
    let errors = errs_before + errs_after;
    rows.push(vec![
        "cluster-failover".into(),
        format!("{:.1}", failover_qps / 1000.0),
        format!("{errors}"),
    ]);
    report.add_values(
        "cluster_failover",
        &[("qps", failover_qps), ("errors", errors as f64)],
    );
    assert_eq!(errors, 0, "failover must be transparent to the replay");

    // Every loaded key survives the promotion.
    for op in cluster_load.expect("load ran").ops() {
        if let Op::Insert { key, .. } = op {
            assert!(
                cluster.get(key).expect("cluster get").is_some(),
                "key {key:?} lost across failover"
            );
        }
    }

    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&cdir);

    print_table(
        "Network serving: pipelined wire protocol vs per-op, 3-process socket cluster (YCSB)",
        &["configuration", "kqps", "errors"],
        &rows,
    );
    report.write().expect("write bench report");
}
