//! Figure 13: space-performance trade-offs under the Case 1 workload.
//!
//! (a) Compression levels: tzstd at levels {-50, -10, 1, 15, 22} with
//! and without a trained dictionary, plus PBC and Raw. Paper shape:
//! higher levels buy diminishing space at growing performance cost;
//! pre-trained variants dominate untrained; the curve bends so an
//! intermediate level (≈1) is the practical pick.
//!
//! (b) Write-back cache ratios: In-mem, wb-2X … wb-5X. Paper shape:
//! higher cache ratio (smaller cache) lowers space cost and raises
//! performance cost, with ≈5X balancing the two (the Theorem 5.1
//! crossing point).

use std::time::Instant;
use tb_bench::{bench_dir, measure_cost, print_cost_plane, scale, CostPoint};
use tb_compress::{
    measure_ratio, train_dictionary, Compressor, Pbc, PbcConfig, RawCompressor, Tzstd, TzstdLevel,
};
use tb_costmodel::WorkloadDemand;
use tb_workload::{DatasetKind, Workload, WorkloadSpec};
use tierbase_core::{SyncPolicy, TierBase, TierBaseConfig};

/// Compressor-level cost point: performance cost from measured
/// records/s through compress+decompress at the workload mix,
/// space cost from the ratio.
fn compressor_point(
    name: &str,
    c: &dyn Compressor,
    test: &[Vec<u8>],
    demand: &WorkloadDemand,
) -> CostPoint {
    let ratio = measure_ratio(c, test);
    let compressed: Vec<Vec<u8>> = test.iter().map(|r| c.compress(r)).collect();
    // Case-1 mix: ~97% reads (decompress) / 3% writes (compress).
    let t0 = Instant::now();
    for _ in 0..3 {
        for z in &compressed {
            std::hint::black_box(c.decompress(z).expect("roundtrip"));
        }
    }
    let read_ops = 3.0 * test.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let t1 = Instant::now();
    for r in test {
        std::hint::black_box(c.compress(r));
    }
    let write_ops = test.len() as f64 / t1.elapsed().as_secs_f64().max(1e-9);
    let mixed_ops = 1.0 / (0.97 / read_ops + 0.03 / write_ops);

    let max_space_gb = 4.0 / ratio.max(1e-6);
    let metrics = tb_costmodel::CostMetrics::new(mixed_ops, max_space_gb, 1.0);
    CostPoint {
        name: name.into(),
        cpqps: metrics.cpqps(),
        cpgb: metrics.cpgb(),
        performance_cost: metrics.performance_cost(demand),
        space_cost: metrics.space_cost(demand),
    }
}

fn main() {
    let demand = WorkloadDemand::new(80_000.0, 10.0);
    let n = 3000 * scale();

    // ---- (a) compression level sweep ---------------------------------
    let dataset = DatasetKind::Kv1.build(11);
    let train: Vec<Vec<u8>> = (0..512u64).map(|i| dataset.record(i)).collect();
    let test: Vec<Vec<u8>> = (1000..1000 + n as u64).map(|i| dataset.record(i)).collect();
    let dict = train_dictionary(&train, 8192);

    let mut points = Vec::new();
    points.push(compressor_point("Raw", &RawCompressor, &test, &demand));
    for level in [-50, -10, 1, 15, 22] {
        let plain = Tzstd::new(TzstdLevel(level));
        points.push(compressor_point(
            &format!("Zstd(l={level})"),
            &plain,
            &test,
            &demand,
        ));
        let with_dict = Tzstd::with_dict(TzstdLevel(level), dict.clone());
        points.push(compressor_point(
            &format!("Zstd-dict(l={level})"),
            &with_dict,
            &test,
            &demand,
        ));
    }
    let pbc = Pbc::train(&train, &PbcConfig::default());
    points.push(compressor_point("PBC", &pbc, &test, &demand));
    print_cost_plane(
        "Figure 13(a): compression-level trade-offs (Case 1)",
        &points,
    );

    // ---- (b) cache-ratio sweep ---------------------------------------
    let records = 15_000u64 * scale() as u64;
    let ops = 30_000u64 * scale() as u64;
    let logical_estimate = records as usize * 140;

    let mut points = Vec::new();
    {
        // In-memory: everything cached (cache ratio 1X).
        let e = TierBase::open(
            TierBaseConfig::builder(bench_dir("f13-mem"))
                .cache_capacity(512 << 20)
                .build(),
        )
        .unwrap();
        let (load, run) = Workload::new(WorkloadSpec::case1_user_info(records, ops)).generate();
        points.push(measure_cost(
            "In-mem", &e, &load, &run, 16, &demand, 4.0, 2.0,
        ));
    }
    for ratio in [2usize, 3, 4, 5] {
        let e = TierBase::open(
            TierBaseConfig::builder(bench_dir(&format!("f13-wb{ratio}")))
                .cache_capacity((logical_estimate / ratio).max(64 << 10))
                .policy(SyncPolicy::WriteBack)
                .storage_rtt_us(100)
                .build(),
        )
        .unwrap();
        let (load, run) = Workload::new(WorkloadSpec::case1_user_info(records, ops)).generate();
        points.push(measure_cost(
            format!("wb-{ratio}X"),
            &e,
            &load,
            &run,
            32,
            &demand,
            4.0,
            2.0,
        ));
    }
    print_cost_plane("Figure 13(b): cache-ratio trade-off (Case 1)", &points);
}
