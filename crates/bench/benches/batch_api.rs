//! Batched submission/completion API: per-op `get` loop vs one
//! `apply_batch` pass over a disk-resident working set.
//!
//! Shape to reproduce: once the working set lives in SSTables, a
//! multi-key read pays one tree-lock pass + per-key block IO in the
//! get loop, while `apply_batch` stages every lookup under a single
//! level-state snapshot and dedups the staged block reads — each
//! needed block is fetched once per batch and shared across keys. The
//! win grows with key locality (clustered feed-style fetches share
//! almost every block) and survives the pipelined front-end, whose
//! workers lower each drained batch onto the same call.
//!
//! Two further tables extend the story past a single completion pass:
//!
//! * **inline vs pooled** — the same clustered `apply_batch` schedule
//!   with `read_pool_threads ∈ {0, N}`: identical `blocks_read` (same
//!   dedup), but the pooled pass submits the fetch list to the shard
//!   read pool as one chain, coalescing adjacent blocks into span
//!   reads and overlapping the block IO;
//! * **multi-node** — the same clustered batches through
//!   `ClusterClient::multi_get` against pipelined cluster nodes over
//!   pooled engines (group-by-owner, one batched engine call per
//!   node), so the Fig-7/9-style scaling story crosses node
//!   boundaries.

use std::sync::Arc;
use tb_bench::{bench_dir, budget, print_table, BenchReport};
use tb_cluster::{ClusterClient, CoordinatorGroup, NodeId, NodeStore, ServingMode};
use tb_common::{EngineOp, Key, KvEngine, OpOutcome, Value};
use tb_frontend::{Frontend, FrontendConfig};
use tb_lsm::{LsmConfig, LsmDb};

const BATCH: usize = 128;

fn key(i: u64) -> Key {
    Key::from(format!("bk{i:08}"))
}

/// Deterministic xorshift so every mode replays the same key schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Key schedule: batches of `BATCH` keys. `clustered` batches read a
/// consecutive run (feed/feature fetch); uniform batches scatter.
fn schedule(records: u64, lookups: u64, clustered: bool) -> Vec<Vec<Key>> {
    let mut rng = Rng(0x5eed_cafe);
    let mut batches = Vec::new();
    let mut remaining = lookups;
    while remaining > 0 {
        let n = BATCH.min(remaining as usize);
        let mut batch = Vec::with_capacity(n);
        if clustered {
            let start = rng.next() % records.saturating_sub(n as u64).max(1);
            for j in 0..n {
                batch.push(key(start + j as u64));
            }
        } else {
            for _ in 0..n {
                batch.push(key(rng.next() % records));
            }
        }
        batches.push(batch);
        remaining -= n as u64;
    }
    batches
}

fn main() {
    let mut report = BenchReport::new("batch_api");
    let records = budget(40_000);
    let lookups = budget(120_000);

    // Disk-resident working set: load, then flush everything out of the
    // memtable so each lookup must reach SSTable blocks.
    let dir = bench_dir("batch-api");
    let db = Arc::new(LsmDb::open(LsmConfig::new(&dir)).expect("open lsm"));
    for i in 0..records {
        db.put(key(i), Value::from(format!("value-{i}-{}", "x".repeat(64))))
            .unwrap();
    }
    db.flush().unwrap();

    let mut rows = Vec::new();
    let mut loop_kqps = std::collections::HashMap::new();
    for clustered in [false, true] {
        let pattern = if clustered { "clustered" } else { "uniform" };
        let batches = schedule(records, lookups, clustered);

        for batched in [false, true] {
            let before = KvEngine::batch_read_stats(db.as_ref());
            let t0 = std::time::Instant::now();
            let mut hits = 0u64;
            for batch in &batches {
                if batched {
                    // One submission, one completion pass, deduped IO.
                    match LsmDb::apply_batch(&db, vec![EngineOp::MultiGet(batch.clone())])
                        .pop()
                        .expect("one op submitted")
                    {
                        Ok(OpOutcome::Values(values)) => {
                            hits += values.iter().flatten().count() as u64
                        }
                        other => panic!("unexpected outcome {other:?}"),
                    }
                } else {
                    // The old shape: every key pays its own pass.
                    for k in batch {
                        if db.get(k).unwrap().is_some() {
                            hits += 1;
                        }
                    }
                }
            }
            let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(hits, lookups, "every scheduled key was loaded");
            let after = KvEngine::batch_read_stats(db.as_ref());
            let kqps = lookups as f64 / elapsed / 1000.0;
            let path = if batched { "apply_batch" } else { "get-loop" };
            if !batched {
                loop_kqps.insert(pattern, kqps);
            }
            report.add_values(
                format!("{path}/{pattern}"),
                &[
                    ("kqps", kqps),
                    (
                        "blocks_read",
                        (after.blocks_read - before.blocks_read) as f64,
                    ),
                    (
                        "dedup_hits",
                        (after.block_dedup_hits - before.block_dedup_hits) as f64,
                    ),
                ],
            );
            rows.push(vec![
                path.to_string(),
                pattern.to_string(),
                format!("{kqps:.1}"),
                format!("{:.2}x", kqps / loop_kqps[pattern]),
                format!("{}", after.blocks_read - before.blocks_read),
                format!("{}", after.block_dedup_hits - before.block_dedup_hits),
                format!("{}", after.memtable_hits - before.memtable_hits),
            ]);
        }
    }

    // The same batches through the pipelined front-end: shard workers
    // lower each drained batch onto one apply_batch call; the engine
    // counters surface through the front-end's stats snapshot.
    let fe = Frontend::start(
        db.clone() as Arc<dyn KvEngine>,
        FrontendConfig::with_shards(4),
    );
    let fe_before = fe.stats_snapshot().engine_batch;
    let batches = schedule(records, lookups, true);
    let t0 = std::time::Instant::now();
    for batch in &batches {
        let got = fe.multi_get(batch).unwrap();
        assert_eq!(got.len(), batch.len());
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let fe_after = fe.stats_snapshot().engine_batch;
    let kqps = lookups as f64 / elapsed / 1000.0;
    report.add_values(
        "frontend-multi_get/clustered",
        &[
            ("kqps", kqps),
            (
                "blocks_read",
                (fe_after.blocks_read - fe_before.blocks_read) as f64,
            ),
        ],
    );
    rows.push(vec![
        "frontend multi_get".to_string(),
        "clustered".to_string(),
        format!("{kqps:.1}"),
        format!("{:.2}x", kqps / loop_kqps["clustered"]),
        format!("{}", fe_after.blocks_read - fe_before.blocks_read),
        format!("{}", fe_after.block_dedup_hits - fe_before.block_dedup_hits),
        format!("{}", fe_after.memtable_hits - fe_before.memtable_hits),
    ]);
    fe.shutdown();

    print_table(
        "Batch API: get loop vs apply_batch (disk-resident LSM working set)",
        &[
            "path",
            "pattern",
            "kqps",
            "vs-loop",
            "blocks_read",
            "dedup_hits",
            "memtable_hits",
        ],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&dir);

    pooled_completion_pass(&mut report);
    cluster_multi_get(&mut report);
    report.write().expect("write bench report");
}

/// Inline vs pooled completion pass over one disk image. Large values
/// (~2 KiB: two entries per 4 KiB block) make the clustered fetch list
/// block-IO-heavy — the part the pool coalesces into span reads and
/// overlaps across its workers. Same staging, same dedup: `blocks_read`
/// must match exactly; only the wall clock moves.
fn pooled_completion_pass(report: &mut BenchReport) {
    let records = budget(12_000);
    let lookups = budget(48_000);
    let dir = bench_dir("batch-api-pool");
    {
        let db = LsmDb::open(LsmConfig::new(&dir)).expect("open lsm");
        for i in 0..records {
            db.put(key(i), big_value(i)).unwrap();
        }
        db.flush().unwrap();
    }

    let batches = schedule(records, lookups, true);
    let mut rows = Vec::new();
    let mut inline_kqps = 0.0;
    let mut inline_blocks = 0;
    for pool_threads in [0usize, 3] {
        let mut config = LsmConfig::new(&dir);
        config.read_pool_threads = pool_threads;
        let db = LsmDb::open(config).expect("reopen lsm");
        let before = KvEngine::batch_read_stats(&db);
        let t0 = std::time::Instant::now();
        let mut hits = 0u64;
        for batch in &batches {
            match db
                .apply_batch(vec![EngineOp::MultiGet(batch.clone())])
                .pop()
                .expect("one op submitted")
            {
                Ok(OpOutcome::Values(values)) => hits += values.iter().flatten().count() as u64,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(hits, lookups, "every scheduled key was loaded");
        let after = KvEngine::batch_read_stats(&db);
        let blocks = after.blocks_read - before.blocks_read;
        let kqps = lookups as f64 / elapsed / 1000.0;
        if pool_threads == 0 {
            inline_kqps = kqps;
            inline_blocks = blocks;
        } else {
            // Same dedup either way: the pool overlaps IO, it must not
            // change what is read.
            assert_eq!(
                blocks, inline_blocks,
                "pooled pass read a different block set than inline"
            );
        }
        report.add_values(
            format!("completion-pool{pool_threads}"),
            &[
                ("kqps", kqps),
                ("blocks_read", blocks as f64),
                (
                    "pool_fetches",
                    (after.parallel_fetches - before.parallel_fetches) as f64,
                ),
            ],
        );
        rows.push(vec![
            if pool_threads == 0 {
                "inline completion".into()
            } else {
                format!("read pool ({pool_threads} threads)")
            },
            format!("{kqps:.1}"),
            format!("{:.2}x", kqps / inline_kqps),
            format!("{blocks}"),
            format!("{}", after.parallel_fetches - before.parallel_fetches),
            format!("{}", after.read_pool_queue_depth),
        ]);
    }
    print_table(
        "Completion pass: inline vs shard read pool (clustered apply_batch)",
        &[
            "completion",
            "kqps",
            "vs-inline",
            "blocks_read",
            "pool_fetches",
            "pool_depth_hwm",
        ],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same clustered batches through a 3-node in-process cluster:
/// `ClusterClient::multi_get` groups keys per owner, each pipelined
/// node lowers its group onto one pooled `apply_batch` — the batch
/// story across node boundaries, vs a per-key client get loop.
fn cluster_multi_get(report: &mut BenchReport) {
    let records = budget(12_000);
    let lookups = budget(24_000);
    let dir = bench_dir("batch-api-cluster");
    let dbs: Vec<Arc<LsmDb>> = (0..3)
        .map(|i| {
            let mut config = LsmConfig::new(dir.join(format!("n{i}")));
            config.read_pool_threads = 2;
            Arc::new(LsmDb::open(config).expect("open node lsm"))
        })
        .collect();
    let nodes = dbs
        .iter()
        .enumerate()
        .map(|(i, db)| {
            NodeStore::with_serving_mode(
                NodeId(i as u32),
                db.clone() as Arc<dyn KvEngine>,
                ServingMode::Pipelined(FrontendConfig::with_shards(2)),
            )
        })
        .collect();
    let coordinators = Arc::new(CoordinatorGroup::bootstrap(1, nodes).expect("bootstrap"));
    let client = ClusterClient::connect(coordinators);
    for i in 0..records {
        client.put(key(i), big_value(i)).unwrap();
    }
    for db in &dbs {
        db.flush().unwrap();
    }

    let batches = schedule(records, lookups, true);
    let mut rows = Vec::new();
    let mut loop_kqps = 0.0;
    let pooled_fetches = |dbs: &[Arc<LsmDb>]| -> u64 {
        dbs.iter()
            .map(|db| KvEngine::batch_read_stats(db.as_ref()).parallel_fetches)
            .sum()
    };
    for batched in [false, true] {
        let before = pooled_fetches(&dbs);
        let t0 = std::time::Instant::now();
        let mut hits = 0u64;
        for batch in &batches {
            if batched {
                let values = client.multi_get(batch).unwrap();
                hits += values.iter().flatten().count() as u64;
            } else {
                for k in batch {
                    if client.get(k).unwrap().is_some() {
                        hits += 1;
                    }
                }
            }
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(hits, lookups, "every clustered key was loaded");
        let kqps = lookups as f64 / elapsed / 1000.0;
        if !batched {
            loop_kqps = kqps;
        }
        let pooled = pooled_fetches(&dbs) - before;
        report.add_values(
            if batched {
                "cluster-multi_get"
            } else {
                "cluster-get-loop"
            },
            &[("kqps", kqps), ("pool_fetches", pooled as f64)],
        );
        rows.push(vec![
            if batched {
                "client multi_get".into()
            } else {
                "client get loop".into()
            },
            "3 nodes".into(),
            format!("{kqps:.1}"),
            format!("{:.2}x", kqps / loop_kqps),
            format!("{pooled}"),
        ]);
    }
    print_table(
        "Cluster: per-key gets vs grouped multi_get (pipelined pooled nodes)",
        &["path", "topology", "kqps", "vs-loop", "pool_fetches"],
        &rows,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// ~2 KiB values for the pooled/cluster tables: block IO dominates.
fn big_value(i: u64) -> Value {
    Value::from(format!("value-{i}-{}", "z".repeat(2000)))
}
