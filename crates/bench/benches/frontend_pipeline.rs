//! Frontend pipeline: group-commit vs per-op `sync()` over the LSM
//! engine under open-loop concurrent replay.
//!
//! Shape to reproduce: with durability paid per operation every write
//! eats an fsync, capping throughput near the storage sync rate; the
//! front-end's group commit amortizes one fsync across a drained batch
//! (TierBase §4.1.2's batched remote-tier round-trips), multiplying
//! write throughput and cutting p99. The boosted row adds the §4.4
//! elastic drain workers on top.

use std::sync::Arc;
use tb_bench::{bench_dir, budget, drive_pipelined, print_table, BenchReport};
use tb_common::KvEngine;
use tb_frontend::{ElasticConfig, Frontend, FrontendConfig};
use tb_lsm::{LsmConfig, LsmDb};
use tb_workload::{Trace, Workload, WorkloadSpec};

fn main() {
    let records = budget(5_000);
    let ops = budget(20_000);

    let mut report = BenchReport::new("frontend_pipeline");
    let mut rows = Vec::new();
    for (label, group_commit, boost) in [
        ("per-op-sync", false, 1usize),
        ("group-commit", true, 1),
        ("group-commit+boost", true, 4),
    ] {
        let dir = bench_dir(&format!("fe-pipe-{label}"));
        let db: Arc<dyn KvEngine> = Arc::new(LsmDb::open(LsmConfig::new(&dir)).expect("open lsm"));
        let fe = Frontend::start(
            db,
            FrontendConfig {
                shards: 4,
                queue_capacity: 4096,
                max_batch: 128,
                group_commit,
                max_workers_per_shard: boost,
                elastic: ElasticConfig::default(),
            },
        );

        let mut w = Workload::new(WorkloadSpec::ycsb_a(records, ops));
        let load = Trace::new(w.load_ops());
        let run = w.run_trace();
        // Load phase through the pipeline too, untimed.
        let _ = drive_pipelined(&fe, &load, 4);

        let r = drive_pipelined(&fe, &run, 8);
        report.add_pipeline(label, &r);
        let snap = fe.stats().snapshot();
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", r.qps / 1000.0),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p99_us),
            format!("{}", snap.group_syncs + snap.per_op_syncs),
            format!("{:.1}", snap.mean_batch()),
            format!("{}", snap.boosts),
            format!("{}", r.errors),
        ]);
        fe.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    print_table(
        "Frontend pipeline: per-op sync vs group commit (LSM engine, YCSB-A, open-loop)",
        &[
            "mode",
            "kqps",
            "p50_us",
            "p99_us",
            "syncs",
            "ops/batch",
            "boosts",
            "errors",
        ],
        &rows,
    );
    report.write().expect("write bench report");
}
