//! Figure 10: cost of caching systems on the space/performance plane,
//! for 50/50 and 95/5 read-write mixes (10 GB / 80 kQPS demand).
//!
//! Paper shape to reproduce: Memcached lowest storage cost among the
//! baselines, Redis/TierBase-Raw higher; single-thread systems share
//! low performance cost while Dragonfly's per-op messaging costs more;
//! TierBase-e halves performance cost by using idle cores;
//! TierBase-PMem cuts storage cost ~60%; compression cuts it further.

use tb_baselines::{DragonflyLike, MemcachedLike, RedisLike};
use tb_bench::{bench_dir, measure_cost, print_cost_plane, scale, CostPoint};
use tb_common::KvEngine;
use tb_costmodel::WorkloadDemand;
use tb_elastic::ThreadMode;
use tb_workload::{DatasetKind, Workload, WorkloadSpec};
use tierbase_core::{CompressionChoice, PmemTuning, TierBase, TierBaseConfig};

fn tb(
    name: &str,
    f: impl FnOnce(tierbase_core::TierBaseConfigBuilder) -> tierbase_core::TierBaseConfigBuilder,
) -> TierBase {
    let builder = TierBaseConfig::builder(bench_dir(name)).cache_capacity(512 << 20);
    let store = TierBase::open(f(builder).build()).expect("open");
    // Pre-train compression offline, as §4.2 prescribes.
    let dataset = DatasetKind::Cities.build(0x5eed);
    let samples: Vec<Vec<u8>> = (0..512u64).map(|i| dataset.record(i)).collect();
    store.train_compression(&samples);
    store
}

fn main() {
    let records = 20_000u64 * scale() as u64;
    let ops = 40_000u64 * scale() as u64;
    // The paper's synthetic demand for caching systems.
    let demand = WorkloadDemand::new(80_000.0, 10.0);

    for (title, spec_fn) in [
        (
            "Figure 10(a): 50% write / 50% read",
            WorkloadSpec::ycsb_a as fn(u64, u64) -> WorkloadSpec,
        ),
        ("Figure 10(b): 95% read / 5% write", WorkloadSpec::ycsb_b),
    ] {
        let mut points: Vec<CostPoint> = Vec::new();
        let systems: Vec<(&str, Box<dyn KvEngine>)> = vec![
            ("Memcached-m", Box::new(MemcachedLike::new(512 << 20, 8))),
            ("Redis-s", Box::new(RedisLike::new())),
            ("Dragonfly-m", Box::new(DragonflyLike::new(4))),
            (
                "TierBase-s",
                Box::new(tb("f10-s", |b| b.threading(ThreadMode::Single))),
            ),
            (
                "TierBase-e",
                Box::new(tb("f10-e", |b| b.threading(ThreadMode::Elastic(4)))),
            ),
            (
                "TierBase-Zstd",
                Box::new(tb("f10-z", |b| b.compression(CompressionChoice::TzstdDict))),
            ),
            (
                "TierBase-PBC",
                Box::new(tb("f10-p", |b| b.compression(CompressionChoice::Pbc))),
            ),
            (
                "TierBase-PMem",
                Box::new(tb("f10-pm", |b| b.pmem(PmemTuning::default()))),
            ),
        ];
        for (name, engine) in systems {
            let (load, run) = Workload::new(spec_fn(records, ops)).generate();
            let p = measure_cost(name, engine.as_ref(), &load, &run, 16, &demand, 4.0, 1.0);
            points.push(p);
        }
        print_cost_plane(title, &points);
    }
}
