//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every `benches/figN_*.rs` / `benches/tableN_*.rs` target regenerates
//! one table or figure from the paper's evaluation (§6). The harness
//! supplies the common pieces: a multi-threaded replay driver, cost
//! computation against the standard-container cost model, and aligned
//! table printing.
//!
//! Scale: the paper's 10 GB / 80 kQPS workloads are scaled down so each
//! bench finishes in seconds; the cost model normalizes per-instance,
//! so *relative* positions (who wins, crossover order) are preserved.
//! Set `TB_BENCH_SCALE` (default 1) to multiply record/op counts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tb_common::{Histogram, KvEngine};
use tb_costmodel::{CostMetrics, WorkloadDemand};
use tb_workload::{Op, Trace};

pub mod report;
pub use report::BenchReport;

/// Benchmark scale factor from `TB_BENCH_SCALE`.
pub fn scale() -> usize {
    std::env::var("TB_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// True when `TB_BENCH_SMOKE` asks for a tiny CI smoke budget.
pub fn smoke() -> bool {
    std::env::var("TB_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Record/op budget: `base` × `TB_BENCH_SCALE`, shrunk ~50× (floor
/// 200) under `TB_BENCH_SMOKE` so CI *executes* benches instead of
/// only compile-checking them.
pub fn budget(base: u64) -> u64 {
    let scaled = base * scale() as u64;
    if smoke() {
        (scaled / 50).max(200)
    } else {
        scaled
    }
}

/// Result of driving a run-phase trace against an engine.
#[derive(Debug, Clone)]
pub struct DriveResult {
    pub qps: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub mean_us: f64,
    pub ops: usize,
    pub errors: usize,
}

/// Applies one op, ignoring NotFound-style outcomes.
pub fn apply_op(engine: &dyn KvEngine, op: &Op) -> bool {
    let r = match op {
        Op::Read { key } => engine.get(key).map(|_| ()),
        Op::Insert { key, value } | Op::Update { key, value } => {
            engine.put(key.clone(), value.clone())
        }
        Op::Delete { key } => engine.delete(key),
        Op::ReadModifyWrite { key, value } => engine
            .get(key)
            .and_then(|_| engine.put(key.clone(), value.clone())),
        Op::Scan { start, end, limit } => {
            engine.scan(start, Some(end), *limit as usize).map(|_| ())
        }
    };
    r.is_ok()
}

/// Loads a trace (untimed), then drives the run trace with
/// `client_threads` workers sharing the op stream, measuring throughput
/// and latency (the YCSB run phase).
pub fn drive(
    engine: &dyn KvEngine,
    load: &Trace,
    run: &Trace,
    client_threads: usize,
) -> DriveResult {
    for op in load.ops() {
        apply_op(engine, op);
    }
    let _ = engine.sync();

    let hist = Histogram::new();
    let errors = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let ops = run.ops();
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..client_threads.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ops.len() {
                    return;
                }
                let t0 = Instant::now();
                if !apply_op(engine, &ops[i]) {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                hist.record(t0.elapsed().as_nanos() as u64);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let _ = engine.sync();

    DriveResult {
        qps: ops.len() as f64 / elapsed,
        p50_us: hist.percentile(0.50) as f64 / 1000.0,
        p95_us: hist.percentile(0.95) as f64 / 1000.0,
        p99_us: hist.p99() as f64 / 1000.0,
        p999_us: hist.percentile(0.999) as f64 / 1000.0,
        mean_us: hist.mean() / 1000.0,
        ops: ops.len(),
        errors: errors.load(Ordering::Relaxed),
    }
}

/// Result of an open-loop pipelined replay through a front-end.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    pub qps: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub mean_us: f64,
    pub ops: usize,
    pub errors: usize,
}

/// How many requests one submit thread keeps in flight before it
/// settles the older half — bounds ticket memory without closing the
/// loop per-op.
const OPEN_LOOP_WINDOW: usize = 1024;

/// Drives a run trace through a [`tb_frontend::Frontend`] *open-loop*:
/// submit threads pipeline requests without waiting for each
/// completion, so shard workers see deep batches and group commit can
/// amortize. Latency is measured submit→completion (queueing
/// included), which is what a remote client would observe.
pub fn drive_pipelined(
    frontend: &tb_frontend::Frontend,
    run: &Trace,
    submit_threads: usize,
) -> PipelineResult {
    use tb_frontend::{Request, Ticket};

    let hist = Histogram::new();
    let errors = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let ops = run.ops();
    let started = Instant::now();

    let settle = |window: &mut Vec<(Instant, Ticket)>, keep: usize| {
        let drain = window.len().saturating_sub(keep);
        for (t0, ticket) in window.drain(..drain) {
            if ticket.wait().is_err() {
                errors.fetch_add(1, Ordering::Relaxed);
            }
            let done = ticket.completed_at().unwrap_or_else(Instant::now);
            hist.record(done.saturating_duration_since(t0).as_nanos() as u64);
        }
    };

    std::thread::scope(|s| {
        for _ in 0..submit_threads.max(1) {
            s.spawn(|| {
                let mut window: Vec<(Instant, Ticket)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ops.len() {
                        break;
                    }
                    let t0 = Instant::now();
                    let ticket = match &ops[i] {
                        Op::Read { key } => frontend.submit(Request::Get(key.clone())),
                        Op::Insert { key, value } | Op::Update { key, value } => {
                            frontend.submit(Request::Put(key.clone(), value.clone()))
                        }
                        Op::Delete { key } => frontend.submit(Request::Delete(key.clone())),
                        Op::ReadModifyWrite { key, value } => {
                            // Both halves pipelined and awaited: the
                            // read's latency and errors count too, the
                            // trace op itself counts once toward qps.
                            window.push((t0, frontend.submit(Request::Get(key.clone()))));
                            frontend.submit(Request::Put(key.clone(), value.clone()))
                        }
                        Op::Scan { start, end, limit } => frontend.submit(Request::Scan {
                            start: start.clone(),
                            end: Some(end.clone()),
                            limit: *limit as usize,
                        }),
                    };
                    window.push((t0, ticket));
                    if window.len() >= OPEN_LOOP_WINDOW {
                        settle(&mut window, OPEN_LOOP_WINDOW / 2);
                    }
                }
                settle(&mut window, 0);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    PipelineResult {
        qps: ops.len() as f64 / elapsed,
        p50_us: hist.percentile(0.50) as f64 / 1000.0,
        p95_us: hist.percentile(0.95) as f64 / 1000.0,
        p99_us: hist.p99() as f64 / 1000.0,
        p999_us: hist.percentile(0.999) as f64 / 1000.0,
        mean_us: hist.mean() / 1000.0,
        ops: ops.len(),
        errors: errors.load(Ordering::Relaxed),
    }
}

/// A measured configuration's position on the cost plane.
#[derive(Debug, Clone)]
pub struct CostPoint {
    pub name: String,
    pub cpqps: f64,
    pub cpgb: f64,
    pub performance_cost: f64,
    pub space_cost: f64,
}

impl CostPoint {
    pub fn total(&self) -> f64 {
        self.performance_cost.max(self.space_cost)
    }
}

/// Computes a configuration's cost-plane point from a drive result and
/// the engine's resident footprint.
///
/// `logical_bytes` is the workload's true data size; the expansion
/// factor (resident/logical) shrinks or grows the instance's effective
/// `MaxSpace` exactly as in §5.3. `replica_factor` multiplies space for
/// replicated configurations (the paper charges ×2 for dual-replica).
pub fn cost_point(
    name: impl Into<String>,
    result: &DriveResult,
    resident_bytes: u64,
    logical_bytes: u64,
    demand: &WorkloadDemand,
    instance_capacity_gb: f64,
    replica_factor: f64,
) -> CostPoint {
    let expansion = if logical_bytes == 0 {
        1.0
    } else {
        resident_bytes as f64 / logical_bytes as f64
    } * replica_factor;
    let max_space_gb = (instance_capacity_gb / expansion.max(1e-9)).max(1e-9);
    let metrics = CostMetrics::new(result.qps.max(1.0), max_space_gb, 1.0);
    CostPoint {
        name: name.into(),
        cpqps: metrics.cpqps(),
        cpgb: metrics.cpgb(),
        performance_cost: metrics.performance_cost(demand),
        space_cost: metrics.space_cost(demand),
    }
}

/// Sum of key+value bytes of the final state of a load trace.
pub fn logical_bytes(load: &Trace) -> u64 {
    use std::collections::HashMap;
    let mut last: HashMap<&tb_common::Key, usize> = HashMap::new();
    for op in load.ops() {
        match op {
            Op::Insert { key, value }
            | Op::Update { key, value }
            | Op::ReadModifyWrite { key, value } => {
                last.insert(key, key.len() + value.len());
            }
            Op::Delete { key } => {
                last.remove(key);
            }
            Op::Read { .. } | Op::Scan { .. } => {}
        }
    }
    last.values().map(|&v| v as u64).sum()
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints cost-plane points like the paper's scatter figures.
pub fn print_cost_plane(title: &str, points: &[CostPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.3}", p.space_cost),
                format!("{:.3}", p.performance_cost),
                format!("{:.3}", p.total()),
            ]
        })
        .collect();
    print_table(
        title,
        &["config", "space-cost", "perf-cost", "total=max"],
        &rows,
    );
    if let Some(best) = points
        .iter()
        .min_by(|a, b| a.total().partial_cmp(&b.total()).expect("finite"))
    {
        println!(
            "--> cost-optimal: {} (total {:.3})",
            best.name,
            best.total()
        );
    }
}

/// Drives an engine with a workload and returns its cost-plane point in
/// one call (the §5.3 sample→load→replay→calculate pipeline).
#[allow(clippy::too_many_arguments)]
pub fn measure_cost(
    name: impl Into<String>,
    engine: &dyn KvEngine,
    load: &Trace,
    run: &Trace,
    clients: usize,
    demand: &WorkloadDemand,
    instance_capacity_gb: f64,
    replica_factor: f64,
) -> CostPoint {
    let result = drive(engine, load, run, clients);
    let logical = logical_bytes(load);
    cost_point(
        name,
        &result,
        engine.resident_bytes(),
        logical,
        demand,
        instance_capacity_gb,
        replica_factor,
    )
}

/// Temp directory helper for bench engines.
pub fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tb-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// Shared handle so `drive` can be used with engines behind `Arc`.
pub fn drive_arc(
    engine: &Arc<dyn KvEngine>,
    load: &Trace,
    run: &Trace,
    client_threads: usize,
) -> DriveResult {
    drive(engine.as_ref(), load, run, client_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use tb_common::{Key, Result, Value};
    use tb_workload::{Workload, WorkloadSpec};

    struct MapEngine(Mutex<BTreeMap<Key, Value>>);

    impl KvEngine for MapEngine {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: Key, value: Value) -> Result<()> {
            self.0.lock().insert(key, value);
            Ok(())
        }
        fn delete(&self, key: &Key) -> Result<()> {
            self.0.lock().remove(key);
            Ok(())
        }
        // Native scan: the trait's default lowers onto `apply_batch`,
        // whose default lowers back — an engine must break the cycle.
        fn scan(&self, start: &Key, end: Option<&Key>, limit: usize) -> Result<Vec<(Key, Value)>> {
            Ok(self
                .0
                .lock()
                .range::<Key, _>((
                    std::ops::Bound::Included(start),
                    end.map_or(std::ops::Bound::Unbounded, std::ops::Bound::Excluded),
                ))
                .take(limit)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }
        fn resident_bytes(&self) -> u64 {
            self.0
                .lock()
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum()
        }
        fn label(&self) -> String {
            "map".into()
        }
    }

    #[test]
    fn drive_handles_scan_workloads() {
        let (load, run) = Workload::new(WorkloadSpec::ycsb_e(200, 500)).generate();
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        let r = drive(&e, &load, &run, 2);
        assert_eq!(r.ops, 500);
        assert_eq!(r.errors, 0, "scans must apply cleanly");
    }

    #[test]
    fn drive_measures_throughput() {
        let (load, run) = Workload::new(WorkloadSpec::ycsb_a(100, 2000)).generate();
        let e = MapEngine(Mutex::new(BTreeMap::new()));
        let r = drive(&e, &load, &run, 2);
        assert_eq!(r.ops, 2000);
        assert_eq!(r.errors, 0);
        assert!(r.qps > 0.0);
        assert!(r.p99_us >= 0.0);
    }

    #[test]
    fn cost_point_reflects_expansion() {
        let demand = WorkloadDemand::new(1000.0, 10.0);
        let r = DriveResult {
            qps: 10_000.0,
            p50_us: 1.0,
            p95_us: 1.0,
            p99_us: 1.0,
            p999_us: 1.0,
            mean_us: 1.0,
            ops: 1,
            errors: 0,
        };
        let light = cost_point("light", &r, 100, 100, &demand, 4.0, 1.0);
        let heavy = cost_point("heavy", &r, 300, 100, &demand, 4.0, 1.0);
        assert!(heavy.space_cost > light.space_cost * 2.9);
        let replicated = cost_point("rep", &r, 100, 100, &demand, 4.0, 2.0);
        assert!((replicated.space_cost / light.space_cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn logical_bytes_counts_final_state() {
        let load = Trace::new(vec![
            Op::Insert {
                key: Key::from("a"),
                value: Value::from("12345"),
            },
            Op::Update {
                key: Key::from("a"),
                value: Value::from("1"),
            },
            Op::Insert {
                key: Key::from("b"),
                value: Value::from("22"),
            },
            Op::Delete {
                key: Key::from("b"),
            },
        ]);
        assert_eq!(logical_bytes(&load), 2); // "a" + "1"
    }
}
