//! Persisted per-run bench results: `BENCH_<name>.json`.
//!
//! A figure/table bench builds one [`BenchReport`] at startup, adds a
//! row per measured configuration, and writes the report when done.
//! Besides the workload rows, the report captures the run's *telemetry
//! delta*: every `tb-obs` counter that moved between construction and
//! `write`, and every latency histogram the instrumented layers
//! recorded. CI smoke-runs the benches (`TB_BENCH_SMOKE=1`) and
//! validates the JSON; committed artifacts under `bench_results/` keep
//! quantitative history reviewable across PRs.

use crate::{DriveResult, PipelineResult};
use std::collections::BTreeMap;
use std::path::PathBuf;
use tb_obs::json::Value;
use tb_obs::{HistogramSnapshot, MetricsSnapshot};

/// Accumulates one bench run's rows against a baseline metrics
/// snapshot taken at construction.
pub struct BenchReport {
    name: String,
    baseline: MetricsSnapshot,
    rows: Vec<Value>,
}

impl BenchReport {
    /// Starts a report; snapshots [`tb_obs::global`] as the baseline
    /// the final counter deltas are computed against.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            baseline: tb_obs::global().snapshot(),
            rows: Vec::new(),
        }
    }

    /// Adds a closed-loop [`DriveResult`] row.
    pub fn add_drive(&mut self, label: impl Into<String>, r: &DriveResult) {
        self.rows.push(Value::obj([
            ("label".into(), Value::Str(label.into())),
            ("kind".into(), Value::Str("drive".into())),
            ("qps".into(), Value::Num(r.qps)),
            ("mean_us".into(), Value::Num(r.mean_us)),
            ("p50_us".into(), Value::Num(r.p50_us)),
            ("p95_us".into(), Value::Num(r.p95_us)),
            ("p99_us".into(), Value::Num(r.p99_us)),
            ("p999_us".into(), Value::Num(r.p999_us)),
            ("ops".into(), Value::Num(r.ops as f64)),
            ("errors".into(), Value::Num(r.errors as f64)),
        ]));
    }

    /// Adds an open-loop [`PipelineResult`] row.
    pub fn add_pipeline(&mut self, label: impl Into<String>, r: &PipelineResult) {
        self.rows.push(Value::obj([
            ("label".into(), Value::Str(label.into())),
            ("kind".into(), Value::Str("pipeline".into())),
            ("qps".into(), Value::Num(r.qps)),
            ("mean_us".into(), Value::Num(r.mean_us)),
            ("p50_us".into(), Value::Num(r.p50_us)),
            ("p95_us".into(), Value::Num(r.p95_us)),
            ("p99_us".into(), Value::Num(r.p99_us)),
            ("p999_us".into(), Value::Num(r.p999_us)),
            ("ops".into(), Value::Num(r.ops as f64)),
            ("errors".into(), Value::Num(r.errors as f64)),
        ]));
    }

    /// Adds a free-form numeric row (cost points, ratios, ...).
    pub fn add_values(&mut self, label: impl Into<String>, fields: &[(&str, f64)]) {
        let mut pairs = vec![
            ("label".to_string(), Value::Str(label.into())),
            ("kind".to_string(), Value::Str("values".into())),
        ];
        pairs.extend(
            fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), Value::Num(*v))),
        );
        self.rows.push(Value::Obj(pairs));
    }

    /// Output directory: `TB_BENCH_OUT`, or the working directory.
    pub fn out_dir() -> PathBuf {
        std::env::var_os("TB_BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    }

    /// Writes `BENCH_<name>.json` into [`BenchReport::out_dir`] and
    /// returns the path. Prints the path so a bench's stdout records
    /// where its artifact went.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = Self::out_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render().to_pretty())?;
        println!("bench report: {}", path.display());
        Ok(path)
    }

    /// The report document: rows, counter deltas vs. the baseline
    /// snapshot, and the end-state latency histograms.
    pub fn render(&self) -> Value {
        let end = tb_obs::global().snapshot();
        let mut deltas: BTreeMap<&str, u64> = BTreeMap::new();
        for (name, &value) in &end.counters {
            let moved = value.saturating_sub(self.baseline.counter(name));
            if moved > 0 {
                deltas.insert(name, moved);
            }
        }
        Value::obj([
            ("name".into(), Value::Str(self.name.clone())),
            ("schema".into(), Value::Num(1.0)),
            ("smoke".into(), Value::Bool(crate::smoke())),
            ("scale".into(), Value::Num(crate::scale() as f64)),
            ("rows".into(), Value::Arr(self.rows.clone())),
            (
                "counter_deltas".into(),
                Value::Obj(
                    deltas
                        .iter()
                        .map(|(k, &v)| ((*k).to_string(), Value::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Value::Obj(
                    end.histograms
                        .iter()
                        .filter(|(_, h)| h.count > 0)
                        .map(|(k, h)| (k.clone(), histo_value(h)))
                        .collect(),
                ),
            ),
        ])
    }
}

fn histo_value(h: &HistogramSnapshot) -> Value {
    Value::obj([
        ("count".into(), Value::Num(h.count as f64)),
        ("mean".into(), Value::Num(h.mean)),
        ("p50".into(), Value::Num(h.p50 as f64)),
        ("p95".into(), Value::Num(h.p95 as f64)),
        ("p99".into(), Value::Num(h.p99 as f64)),
        ("p999".into(), Value::Num(h.p999 as f64)),
        ("max".into(), Value::Num(h.max as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tb_obs::json;

    fn sample_drive() -> DriveResult {
        DriveResult {
            qps: 12_500.0,
            p50_us: 10.0,
            p95_us: 40.0,
            p99_us: 80.0,
            p999_us: 200.0,
            mean_us: 15.0,
            ops: 1000,
            errors: 0,
        }
    }

    #[test]
    fn report_renders_rows_and_deltas() {
        let report = {
            let mut r = BenchReport::new("unit");
            // Counter movement *after* the baseline shows up as delta.
            tb_obs::global().counter("bench_unit_probe").add(7);
            tb_obs::global().histogram("bench_unit_ns").record(1234);
            r.add_drive("cfg-a", &sample_drive());
            r.add_values("cost", &[("total", 1.25)]);
            r
        };
        let doc = report.render();
        assert_eq!(doc.get("name").and_then(Value::as_str), Some("unit"));
        assert_eq!(doc.get("schema").and_then(Value::as_f64), Some(1.0));
        let rows = doc.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("qps").and_then(Value::as_f64), Some(12_500.0));
        assert_eq!(rows[1].get("total").and_then(Value::as_f64), Some(1.25));
        assert_eq!(
            doc.get("counter_deltas")
                .and_then(|d| d.get("bench_unit_probe"))
                .and_then(Value::as_f64),
            Some(7.0)
        );
        assert!(doc
            .get("histograms")
            .and_then(|h| h.get("bench_unit_ns"))
            .is_some());
        // The committed-artifact form round-trips through the parser.
        let text = doc.to_pretty();
        assert_eq!(json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn written_file_lands_in_out_dir_and_parses() {
        let dir = std::env::temp_dir().join(format!("tb-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("TB_BENCH_OUT", &dir);
        let mut report = BenchReport::new("unit_write");
        report.add_drive("only", &sample_drive());
        let path = report.write().expect("write report");
        std::env::remove_var("TB_BENCH_OUT");
        assert_eq!(path, dir.join("BENCH_unit_write.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = json::parse(&text).expect("valid json");
        assert_eq!(doc.get("name").and_then(Value::as_str), Some("unit_write"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
