//! Per-key write queues with write coalescing (§4.1.1).
//!
//! Write-through pushes every update to the storage tier. Within one
//! event-loop turn multiple writes can target the same key; TierBase
//! coalesces them so storage sees only the final value — the group-commit
//! analog — while preserving first-arrival ordering *between* keys so
//! per-key sequential ordering is never violated.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use tb_common::hash::FxBuildHasher;
use tb_common::{Key, Value};

/// A pending storage write: the latest value (or a delete).
#[derive(Debug, Clone, PartialEq)]
pub enum PendingWrite {
    Put(Value),
    Delete,
}

struct Inner {
    /// Latest pending write per key.
    pending: HashMap<Key, PendingWrite, FxBuildHasher>,
    /// Keys in first-arrival order.
    order: Vec<Key>,
}

/// Collects writes between storage flushes, merging same-key updates.
pub struct WriteCoalescer {
    inner: Mutex<Inner>,
    /// Writes absorbed by coalescing (observability: each one is a
    /// storage RPC that never had to happen).
    pub coalesced: AtomicU64,
    /// Total writes offered.
    pub offered: AtomicU64,
}

impl Default for WriteCoalescer {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteCoalescer {
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                pending: HashMap::default(),
                order: Vec::new(),
            }),
            coalesced: AtomicU64::new(0),
            offered: AtomicU64::new(0),
        }
    }

    /// Queues a put, replacing any pending write to the same key.
    pub fn offer_put(&self, key: Key, value: Value) {
        self.offer(key, PendingWrite::Put(value));
    }

    /// Queues a delete, replacing any pending write to the same key.
    pub fn offer_delete(&self, key: Key) {
        self.offer(key, PendingWrite::Delete);
    }

    fn offer(&self, key: Key, write: PendingWrite) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if inner.pending.insert(key.clone(), write).is_some() {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.order.push(key);
        }
    }

    /// Drains up to `max` pending writes in first-arrival key order.
    pub fn drain(&self, max: usize) -> Vec<(Key, PendingWrite)> {
        let mut inner = self.inner.lock();
        let take = max.min(inner.order.len());
        let keys: Vec<Key> = inner.order.drain(..take).collect();
        keys.into_iter()
            .filter_map(|k| {
                let w = inner.pending.remove(&k)?;
                Some((k, w))
            })
            .collect()
    }

    /// Pending write count.
    pub fn len(&self) -> usize {
        self.inner.lock().order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of offered writes absorbed by coalescing.
    pub fn coalesce_rate(&self) -> f64 {
        let offered = self.offered.load(Ordering::Relaxed);
        if offered == 0 {
            0.0
        } else {
            self.coalesced.load(Ordering::Relaxed) as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn same_key_writes_coalesce_to_latest() {
        let c = WriteCoalescer::new();
        c.offer_put(k("a"), v("1"));
        c.offer_put(k("a"), v("2"));
        c.offer_put(k("a"), v("3"));
        let drained = c.drain(100);
        assert_eq!(drained, vec![(k("a"), PendingWrite::Put(v("3")))]);
        assert_eq!(c.coalesced.load(Ordering::Relaxed), 2);
        assert!((c.coalesce_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_keys_keep_arrival_order() {
        let c = WriteCoalescer::new();
        c.offer_put(k("z"), v("1"));
        c.offer_put(k("a"), v("2"));
        c.offer_put(k("m"), v("3"));
        let keys: Vec<Key> = c.drain(100).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![k("z"), k("a"), k("m")]);
    }

    #[test]
    fn delete_supersedes_put() {
        let c = WriteCoalescer::new();
        c.offer_put(k("a"), v("1"));
        c.offer_delete(k("a"));
        assert_eq!(c.drain(10), vec![(k("a"), PendingWrite::Delete)]);
    }

    #[test]
    fn put_supersedes_delete() {
        let c = WriteCoalescer::new();
        c.offer_delete(k("a"));
        c.offer_put(k("a"), v("back"));
        assert_eq!(c.drain(10), vec![(k("a"), PendingWrite::Put(v("back")))]);
    }

    #[test]
    fn drain_respects_max() {
        let c = WriteCoalescer::new();
        for i in 0..10 {
            c.offer_put(k(&format!("k{i}")), v("x"));
        }
        assert_eq!(c.drain(3).len(), 3);
        assert_eq!(c.len(), 7);
        assert_eq!(c.drain(100).len(), 7);
        assert!(c.is_empty());
    }

    #[test]
    fn coalescing_after_partial_drain() {
        let c = WriteCoalescer::new();
        c.offer_put(k("a"), v("1"));
        c.drain(10);
        // "a" drained; a new offer re-enqueues it.
        c.offer_put(k("a"), v("2"));
        assert_eq!(c.drain(10), vec![(k("a"), PendingWrite::Put(v("2")))]);
    }
}
