//! Master→replica replication of cache contents (§4.1.2).
//!
//! Write-back keeps the *only* copy of dirty data in the cache tier
//! until the batched storage flush, so the cache must be replicated to
//! survive node loss. Writes apply to the primary and replicate
//! synchronously to every live replica; a replica can be promoted when
//! the primary fails. The space cost of replication (the `×2` the paper
//! charges replicated configurations) falls out of `resident_bytes`.

use crate::cache::{CacheConfig, ShardedCache};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tb_common::{Error, Key, Result, Value};

/// How writes propagate from the primary to its replicas — the paper's
/// "various replication protocols to accommodate different reliability
/// requirements".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Every live replica acknowledges before the write returns.
    /// Strongest: failover never loses an acknowledged write.
    Sync,
    /// The write returns once the primary plus enough replicas for a
    /// group majority have it (`(replicas + 1) / 2 + 1` copies total).
    /// Survives minority replica loss.
    Quorum,
    /// The write returns after the primary alone; replication is queued
    /// and applied by [`ReplicatedCache::drain_replication`]. Cheapest,
    /// but failover can lose queued writes (see
    /// [`ReplicatedCache::replication_lag`]).
    Async,
}

/// One replica node.
struct Replica {
    cache: Arc<ShardedCache>,
    alive: AtomicBool,
}

/// A queued asynchronous replication record.
#[derive(Clone)]
enum RepOp {
    Insert {
        key: Key,
        value: Value,
        dirty: bool,
        expires_at: Option<u64>,
    },
    Remove(Key),
    MarkClean(Key),
}

/// A replication group: one primary cache plus N replicas.
pub struct ReplicatedCache {
    primary: Arc<ShardedCache>,
    replicas: Vec<Replica>,
    mode: ReplicationMode,
    pending: Mutex<VecDeque<RepOp>>,
    pub replicated_writes: AtomicU64,
}

impl ReplicatedCache {
    /// Builds a group with `replica_count` replicas, each configured
    /// like the primary, replicating synchronously.
    pub fn new(config: CacheConfig, replica_count: usize) -> Self {
        Self::with_mode(config, replica_count, ReplicationMode::Sync)
    }

    /// [`new`](Self::new) with an explicit replication protocol.
    pub fn with_mode(config: CacheConfig, replica_count: usize, mode: ReplicationMode) -> Self {
        let primary = Arc::new(ShardedCache::new(config.clone()));
        let replicas = (0..replica_count)
            .map(|_| Replica {
                cache: Arc::new(ShardedCache::new(config.clone())),
                alive: AtomicBool::new(true),
            })
            .collect();
        Self {
            primary,
            replicas,
            mode,
            pending: Mutex::new(VecDeque::new()),
            replicated_writes: AtomicU64::new(0),
        }
    }

    /// The group's replication protocol.
    pub fn mode(&self) -> ReplicationMode {
        self.mode
    }

    /// Copies a majority needs, counting the primary (`Quorum` mode).
    fn quorum_size(&self) -> usize {
        self.replicas.len().div_ceil(2) + 1
    }

    /// Writes queued but not yet applied to replicas (`Async` mode).
    pub fn replication_lag(&self) -> usize {
        self.pending.lock().len()
    }

    /// Applies up to `max_ops` queued async replication records to all
    /// live replicas, in order. Returns how many were applied.
    pub fn drain_replication(&self, max_ops: usize) -> Result<usize> {
        let mut applied = 0;
        while applied < max_ops {
            let Some(op) = self.pending.lock().pop_front() else {
                break;
            };
            for r in &self.replicas {
                if !r.alive.load(Ordering::Relaxed) {
                    continue;
                }
                match &op {
                    RepOp::Insert {
                        key,
                        value,
                        dirty,
                        expires_at,
                    } => {
                        r.cache
                            .insert_full(key.clone(), value.clone(), *dirty, *expires_at)?;
                        self.replicated_writes.fetch_add(1, Ordering::Relaxed);
                    }
                    RepOp::Remove(key) => {
                        r.cache.remove(key);
                    }
                    RepOp::MarkClean(key) => {
                        r.cache.mark_clean(key);
                    }
                }
            }
            applied += 1;
        }
        Ok(applied)
    }

    /// The primary cache (normal read/write path).
    pub fn primary(&self) -> &Arc<ShardedCache> {
        &self.primary
    }

    /// Number of replicas still marked alive.
    pub fn live_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Writes to the primary and synchronously replicates.
    pub fn insert(&self, key: Key, value: Value, dirty: bool) -> Result<()> {
        self.insert_full(key, value, dirty, None)
    }

    /// [`insert`](Self::insert) with an absolute expiry deadline, which
    /// replicates with the value so TTLs survive failover. Propagation
    /// follows the group's [`ReplicationMode`].
    pub fn insert_full(
        &self,
        key: Key,
        value: Value,
        dirty: bool,
        expires_at: Option<u64>,
    ) -> Result<()> {
        self.primary
            .insert_full(key.clone(), value.clone(), dirty, expires_at)?;
        match self.mode {
            ReplicationMode::Sync => {
                for r in &self.replicas {
                    if r.alive.load(Ordering::Relaxed) {
                        r.cache
                            .insert_full(key.clone(), value.clone(), dirty, expires_at)?;
                        self.replicated_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(())
            }
            ReplicationMode::Quorum => {
                let mut copies = 1; // the primary
                for r in &self.replicas {
                    if r.alive.load(Ordering::Relaxed)
                        && r.cache
                            .insert_full(key.clone(), value.clone(), dirty, expires_at)
                            .is_ok()
                    {
                        copies += 1;
                        self.replicated_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if copies < self.quorum_size() {
                    return Err(Error::Unavailable(format!(
                        "quorum lost: {copies}/{} copies (need {})",
                        self.replicas.len() + 1,
                        self.quorum_size()
                    )));
                }
                Ok(())
            }
            ReplicationMode::Async => {
                self.pending.lock().push_back(RepOp::Insert {
                    key,
                    value,
                    dirty,
                    expires_at,
                });
                Ok(())
            }
        }
    }

    /// Sets a TTL on the primary and all live replicas. Returns the
    /// primary's answer (`false` = key absent).
    pub fn expire(&self, key: &Key, ttl: std::time::Duration) -> bool {
        let hit = self.primary.expire(key, ttl);
        for r in &self.replicas {
            if r.alive.load(Ordering::Relaxed) {
                r.cache.expire(key, ttl);
            }
        }
        hit
    }

    /// Clears a TTL on the primary and all live replicas.
    pub fn persist(&self, key: &Key) -> bool {
        let hit = self.primary.persist(key);
        for r in &self.replicas {
            if r.alive.load(Ordering::Relaxed) {
                r.cache.persist(key);
            }
        }
        hit
    }

    /// Active expiration on the primary (replicas sweep the same keys).
    /// Returns the expired keys for storage-tier propagation.
    pub fn sweep_expired(&self) -> Vec<Key> {
        let keys = self.primary.sweep_expired();
        for r in &self.replicas {
            if r.alive.load(Ordering::Relaxed) {
                r.cache.sweep_expired();
            }
        }
        keys
    }

    /// Removes from the primary and all live replicas. Under `Async`
    /// the replica-side remove is queued so it stays ordered with
    /// queued inserts of the same key.
    pub fn remove(&self, key: &Key) {
        self.primary.remove(key);
        if self.mode == ReplicationMode::Async {
            self.pending.lock().push_back(RepOp::Remove(key.clone()));
            return;
        }
        for r in &self.replicas {
            if r.alive.load(Ordering::Relaxed) {
                r.cache.remove(key);
            }
        }
    }

    /// Marks an entry clean everywhere after a storage flush (queued
    /// under `Async` to preserve write ordering).
    pub fn mark_clean(&self, key: &Key) {
        self.primary.mark_clean(key);
        if self.mode == ReplicationMode::Async {
            self.pending.lock().push_back(RepOp::MarkClean(key.clone()));
            return;
        }
        for r in &self.replicas {
            if r.alive.load(Ordering::Relaxed) {
                r.cache.mark_clean(key);
            }
        }
    }

    /// Reads from the primary.
    pub fn get(&self, key: &Key) -> Option<Value> {
        self.primary.get(key)
    }

    /// Simulates a replica crash.
    pub fn kill_replica(&self, idx: usize) -> Result<()> {
        let r = self
            .replicas
            .get(idx)
            .ok_or_else(|| Error::InvalidArgument(format!("no replica {idx}")))?;
        r.alive.store(false, Ordering::Relaxed);
        Ok(())
    }

    /// Promotes replica `idx` to primary (primary failover). The dirty
    /// data it replicated — including unsynchronized write-back state —
    /// survives the promotion.
    pub fn promote_replica(&mut self, idx: usize) -> Result<()> {
        let r = self
            .replicas
            .get(idx)
            .ok_or_else(|| Error::InvalidArgument(format!("no replica {idx}")))?;
        if !r.alive.load(Ordering::Relaxed) {
            return Err(Error::Unavailable(format!("replica {idx} is dead")));
        }
        let new_primary = r.cache.clone();
        let old_primary = std::mem::replace(&mut self.primary, new_primary);
        // Old primary becomes a (dead) replica slot; callers re-add
        // capacity out of band.
        self.replicas[idx] = Replica {
            cache: old_primary,
            alive: AtomicBool::new(false),
        };
        Ok(())
    }

    /// Total bytes across primary and live replicas — the replicated
    /// space cost the paper's model charges.
    pub fn total_resident_bytes(&self) -> u64 {
        let mut total = self.primary.used_bytes();
        for r in &self.replicas {
            if r.alive.load(Ordering::Relaxed) {
                total += r.cache.used_bytes();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(replicas: usize) -> ReplicatedCache {
        ReplicatedCache::new(CacheConfig::with_capacity(1 << 20), replicas)
    }

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn writes_reach_all_replicas() {
        let g = group(2);
        g.insert(k("a"), v("1"), true).unwrap();
        assert_eq!(g.replicated_writes.load(Ordering::Relaxed), 2);
        assert_eq!(g.get(&k("a")), Some(v("1")));
        // Replication doubles (here triples) resident bytes.
        let total = g.total_resident_bytes();
        assert_eq!(total % 3, 0);
        assert!(total > 0);
    }

    #[test]
    fn dead_replica_skipped() {
        let g = group(2);
        g.kill_replica(0).unwrap();
        g.insert(k("a"), v("1"), false).unwrap();
        assert_eq!(g.replicated_writes.load(Ordering::Relaxed), 1);
        assert_eq!(g.live_replicas(), 1);
    }

    #[test]
    fn promotion_preserves_dirty_data() {
        let mut g = group(1);
        g.insert(k("dirty-key"), v("unsynced"), true).unwrap();
        // Primary dies; promote replica 0.
        g.promote_replica(0).unwrap();
        assert_eq!(g.get(&k("dirty-key")), Some(v("unsynced")));
        let entry = g.primary().peek_entry(&k("dirty-key")).unwrap();
        assert!(entry.dirty, "dirty flag must survive failover");
    }

    #[test]
    fn promote_dead_replica_fails() {
        let mut g = group(1);
        g.kill_replica(0).unwrap();
        assert!(matches!(g.promote_replica(0), Err(Error::Unavailable(_))));
        assert!(matches!(
            g.promote_replica(5),
            Err(Error::InvalidArgument(_))
        ));
    }

    #[test]
    fn mark_clean_propagates() {
        let g = group(1);
        g.insert(k("a"), v("1"), true).unwrap();
        g.mark_clean(&k("a"));
        assert_eq!(g.primary().dirty_bytes(), 0);
        // Promote and confirm the replica also saw the clean.
        let mut g = g;
        g.promote_replica(0).unwrap();
        assert_eq!(g.primary().dirty_bytes(), 0);
    }

    #[test]
    fn remove_propagates() {
        let mut g = group(1);
        g.insert(k("a"), v("1"), false).unwrap();
        g.remove(&k("a"));
        g.promote_replica(0).unwrap();
        assert_eq!(g.get(&k("a")), None);
    }

    #[test]
    fn ttl_survives_failover() {
        let clock = tb_common::ManualClock::new();
        let mk = || CacheConfig {
            clock: clock.clone(),
            ..CacheConfig::with_capacity(1 << 20)
        };
        let mut g = ReplicatedCache::new(mk(), 1);
        let deadline = Some(5_000_000_000); // t = 5 s
        g.insert_full(k("session"), v("tok"), false, deadline)
            .unwrap();
        g.promote_replica(0).unwrap();
        assert_eq!(g.get(&k("session")), Some(v("tok")));
        clock.advance(std::time::Duration::from_secs(5));
        assert_eq!(
            g.get(&k("session")),
            None,
            "TTL must be honored on the promoted replica"
        );
    }

    #[test]
    fn expire_persist_propagate() {
        let clock = tb_common::ManualClock::new();
        let mk = || CacheConfig {
            clock: clock.clone(),
            ..CacheConfig::with_capacity(1 << 20)
        };
        let mut g = ReplicatedCache::new(mk(), 1);
        g.insert(k("a"), v("1"), false).unwrap();
        assert!(g.expire(&k("a"), std::time::Duration::from_secs(3)));
        assert!(g.persist(&k("a")));
        g.promote_replica(0).unwrap();
        clock.advance(std::time::Duration::from_secs(10));
        assert_eq!(g.get(&k("a")), Some(v("1")), "persist replicated");
    }

    #[test]
    fn async_mode_lags_then_drains() {
        let g = ReplicatedCache::with_mode(
            CacheConfig::with_capacity(1 << 20),
            2,
            ReplicationMode::Async,
        );
        for i in 0..10 {
            g.insert(k(&format!("k{i}")), v("x"), false).unwrap();
        }
        assert_eq!(g.replication_lag(), 10);
        assert_eq!(g.replicated_writes.load(Ordering::Relaxed), 0);
        // Partial drain.
        assert_eq!(g.drain_replication(4).unwrap(), 4);
        assert_eq!(g.replication_lag(), 6);
        // Full drain: 10 ops × 2 replicas.
        assert_eq!(g.drain_replication(usize::MAX).unwrap(), 6);
        assert_eq!(g.replicated_writes.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn async_failover_loses_undrained_writes() {
        let mut g = ReplicatedCache::with_mode(
            CacheConfig::with_capacity(1 << 20),
            1,
            ReplicationMode::Async,
        );
        g.insert(k("durable"), v("1"), false).unwrap();
        g.drain_replication(usize::MAX).unwrap();
        g.insert(k("racy"), v("2"), false).unwrap();
        // Primary dies before the queue drains.
        g.promote_replica(0).unwrap();
        assert_eq!(g.get(&k("durable")), Some(v("1")));
        assert_eq!(g.get(&k("racy")), None, "async loses queued writes");
    }

    #[test]
    fn async_remove_stays_ordered() {
        let g = ReplicatedCache::with_mode(
            CacheConfig::with_capacity(1 << 20),
            1,
            ReplicationMode::Async,
        );
        g.insert(k("a"), v("1"), false).unwrap();
        g.remove(&k("a"));
        g.insert(k("a"), v("2"), false).unwrap();
        g.drain_replication(usize::MAX).unwrap();
        let mut g = g;
        g.promote_replica(0).unwrap();
        assert_eq!(g.get(&k("a")), Some(v("2")), "insert-remove-insert order");
    }

    #[test]
    fn quorum_tolerates_minority_loss() {
        // 1 primary + 2 replicas: quorum is 2 copies.
        let g = ReplicatedCache::with_mode(
            CacheConfig::with_capacity(1 << 20),
            2,
            ReplicationMode::Quorum,
        );
        g.kill_replica(0).unwrap();
        g.insert(k("a"), v("1"), false).unwrap(); // 2 copies ≥ quorum 2
        assert_eq!(g.get(&k("a")), Some(v("1")));
    }

    #[test]
    fn quorum_fails_on_majority_loss() {
        let g = ReplicatedCache::with_mode(
            CacheConfig::with_capacity(1 << 20),
            2,
            ReplicationMode::Quorum,
        );
        g.kill_replica(0).unwrap();
        g.kill_replica(1).unwrap();
        let err = g.insert(k("a"), v("1"), false).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "{err:?}");
    }

    #[test]
    fn quorum_failover_preserves_acknowledged_writes() {
        let mut g = ReplicatedCache::with_mode(
            CacheConfig::with_capacity(1 << 20),
            2,
            ReplicationMode::Quorum,
        );
        g.insert(k("paid"), v("ack"), true).unwrap();
        g.promote_replica(1).unwrap();
        assert_eq!(g.get(&k("paid")), Some(v("ack")));
        assert!(g.primary().peek_entry(&k("paid")).unwrap().dirty);
    }

    #[test]
    fn zero_replicas_is_single_copy() {
        let g = group(0);
        g.insert(k("a"), v("1"), false).unwrap();
        assert_eq!(g.replicated_writes.load(Ordering::Relaxed), 0);
        assert_eq!(g.live_replicas(), 0);
    }
}
